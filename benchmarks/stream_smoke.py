"""Streaming-runtime smoke check for CI.

Runs one traffic scenario (default ``enzyme``, the Fig 13 GCN stream —
pick another with ``--scenario``, see ``repro scenarios list``) at
10^5 inputs through both streaming engines and all three strategies
(iced / drips / static), then scales the fast engine to a 10^6-input
stream under a memory budget:

1. **reference** — the scalar engine over a materialized input list,
   timed once per strategy (it is the slow side by construction);
2. **fast** — the window-batched vectorized engine over lazy feature
   blocks, best of two runs per strategy;
3. **identity** — every fast result must equal its reference result
   *exactly* (full ``StreamResult`` including the per-window stats, via
   ``dataclasses.asdict`` equality) and the ICED controllers must have
   produced identical decision logs;
4. **million** — a 10^6-input fast ICED run streamed from lazy blocks
   with ``keep_windows=False`` / ``record_decisions=False``, re-run
   under ``tracemalloc`` to assert the peak allocation stays under
   ``MAX_MILLION_PEAK_MB`` (constant memory: no materialized input
   list, O(window + block) state).

Asserted invariants:

* fast-vs-reference speedup on the ICED strategy >=
  ``MIN_FAST_SPEEDUP`` (a same-process, same-machine ratio — immune to
  runner speed);
* ``identical=True`` for iced, drips and static;
* the 10^6-input run's traced peak < ``MAX_MILLION_PEAK_MB``;
* with ``--baseline FILE``, the ICED speedup has not regressed more
  than ``--max-regression`` against the committed
  ``BENCH_stream.json`` (the CI perf gate; a ratio-vs-ratio check, so
  it too is machine-independent).

Results are written to ``BENCH_stream.json`` so throughput regressions
show up as artifact diffs.

Usage::

    PYTHONPATH=src python benchmarks/stream_smoke.py [--inputs N]
        [--scenario NAME] [--window W] [--min-speedup X]
        [--baseline BENCH_stream.json --max-regression 0.25]
        [--envelope-out FILE] [--trace FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from dataclasses import asdict

from repro.streaming import (
    DVFSController,
    fast_simulate_drips,
    fast_simulate_static,
    fast_simulate_stream,
    inputs_of,
    make_scenario,
    partition_app,
    scenario_envelope,
    simulate_drips,
    simulate_static,
    simulate_stream,
    skip_blocks,
    streaming_cgra,
    take_inputs,
    write_envelope,
)

MIN_FAST_SPEEDUP = 10.0
MAX_MILLION_PEAK_MB = 64.0
PROFILE_INPUTS = 50  # the paper profiles the initial mapping on 50


def _controller(partition, window: int,
                record_decisions: bool = True) -> DVFSController:
    return DVFSController(
        dvfs=partition.cgra.dvfs,
        kernel_names=[p.kernel.name for p in partition.placements],
        window=window,
        record_decisions=record_decisions,
    )


def run_pair(name: str, partition, run_inputs, stream, window: int) -> dict:
    """Reference once, fast best-of-two; assert exact identity."""
    reference_fns = {
        "iced": simulate_stream,
        "drips": simulate_drips,
        "static": simulate_static,
    }
    fast_fns = {
        "iced": fast_simulate_stream,
        "drips": fast_simulate_drips,
        "static": fast_simulate_static,
    }
    kwargs_ref: dict = {}
    kwargs_fast: dict = {}
    ref_controller = fast_controller = None
    if name == "iced":
        ref_controller = _controller(partition, window)
        kwargs_ref["controller"] = ref_controller

    start = time.perf_counter()
    reference = reference_fns[name](partition, run_inputs, window=window,
                                    **kwargs_ref)
    reference_s = time.perf_counter() - start

    fast = None
    fast_s = None
    for _ in range(2):
        if name == "iced":
            fast_controller = _controller(partition, window)
            kwargs_fast["controller"] = fast_controller
        blocks = skip_blocks(stream.feature_blocks(), PROFILE_INPUTS)
        start = time.perf_counter()
        fast = fast_fns[name](partition, blocks, window=window,
                              **kwargs_fast)
        elapsed = time.perf_counter() - start
        fast_s = elapsed if fast_s is None or elapsed < fast_s else fast_s

    identical = asdict(reference) == asdict(fast)
    if name == "iced":
        identical = identical and (
            ref_controller.decisions == fast_controller.decisions
        )
    speedup = reference_s / max(fast_s, 1e-9)
    print(f"{name:6s} reference {reference.inputs / reference_s:9,.0f}/s  "
          f"fast {fast.inputs / fast_s:9,.0f}/s  "
          f"speedup {speedup:5.1f}x  identical={identical}")
    return {
        "reference_s": round(reference_s, 3),
        "fast_s": round(fast_s, 4),
        "reference_inputs_per_sec": round(reference.inputs / reference_s),
        "fast_inputs_per_sec": round(fast.inputs / fast_s),
        "speedup": round(speedup, 2),
        "identical": identical,
        "windows": len(reference.windows),
        "makespan_cycles": reference.makespan_cycles,
        "total_energy_uj": round(reference.total_energy_uj, 3),
    }


def run_million(partition, window: int, million_inputs: int,
                scenario_name: str) -> dict:
    """Fast ICED over a lazy 10^6-input stream: timed run, then a
    tracemalloc run for the constant-memory evidence."""
    stream = make_scenario(scenario_name, n=million_inputs).stream

    def one_run():
        controller = _controller(partition, window, record_decisions=False)
        return fast_simulate_stream(
            partition, stream.feature_blocks(), window=window,
            controller=controller, keep_windows=False,
        )

    start = time.perf_counter()
    result = one_run()
    wall_s = time.perf_counter() - start

    tracemalloc.start()
    one_run()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_mb = peak / (1024 * 1024)

    print(f"million: {result.inputs:,} inputs in {wall_s:.2f}s "
          f"({result.inputs / wall_s:,.0f}/s), traced peak "
          f"{peak_mb:.1f} MB (limit {MAX_MILLION_PEAK_MB:.0f} MB)")
    return {
        "inputs": result.inputs,
        "wall_s": round(wall_s, 3),
        "inputs_per_sec": round(result.inputs / wall_s),
        "peak_mem_mb": round(peak_mb, 2),
        "max_peak_mem_mb": MAX_MILLION_PEAK_MB,
        "makespan_cycles": result.makespan_cycles,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_stream.json")
    parser.add_argument("--scenario", default="enzyme",
                        help="traffic scenario to stream (see "
                             "`repro scenarios list`)")
    parser.add_argument("--inputs", type=int, default=100_000,
                        help="stream length for the engine A/B")
    parser.add_argument("--min-speedup", type=float,
                        default=MIN_FAST_SPEEDUP,
                        help="required fast-vs-reference ICED speedup "
                             "(sequential-fallback scenarios warrant a "
                             "lower bar)")
    parser.add_argument("--envelope-out", default=None, metavar="FILE",
                        help="also write this scenario's energy/latency "
                             "envelope (default envelope parameters, "
                             "reusing the partition)")
    parser.add_argument("--million-inputs", type=int, default=1_000_000,
                        help="stream length for the constant-memory run")
    parser.add_argument("--window", type=int, default=100,
                        help="DVFS observation window (inputs)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_stream.json to gate "
                             "speedup regressions against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="maximum tolerated ICED speedup loss vs. "
                             "the baseline (fraction, default 0.25)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace of one fast ICED run")
    args = parser.parse_args(argv)

    scenario = make_scenario(args.scenario, n=args.inputs)
    stream = scenario.stream
    partition = partition_app(
        scenario.app, streaming_cgra(),
        take_inputs(stream.feature_blocks(), PROFILE_INPUTS),
    )
    print(f"scenario: {scenario.name} (app {scenario.app.name}, "
          f"seed {scenario.seed})")
    print(partition.summary())
    run_inputs = inputs_of(
        skip_blocks(stream.feature_blocks(), PROFILE_INPUTS)
    )

    strategies = {
        name: run_pair(name, partition, run_inputs, stream, args.window)
        for name in ("iced", "drips", "static")
    }
    million = run_million(partition, args.window, args.million_inputs,
                          args.scenario)

    if args.envelope_out:
        envelope = scenario_envelope(args.scenario, partition=partition)
        write_envelope(envelope, args.envelope_out)
        print(f"envelope -> {args.envelope_out}")

    if args.trace:
        from repro import obs

        tracer = obs.install_tracer()
        saved = obs.set_metrics(obs.MetricsRegistry())
        try:
            fast_simulate_stream(
                partition,
                skip_blocks(stream.feature_blocks(), PROFILE_INPUTS),
                window=args.window,
                controller=_controller(partition, args.window),
            )
        finally:
            trace_registry = obs.set_metrics(saved)
            obs.uninstall_tracer()
        events = obs.write_trace(args.trace, tracer, trace_registry)
        print(f"trace: {events} events -> {args.trace}")

    payload = {
        "app": scenario.app.name,
        "scenario": scenario.name,
        "inputs": args.inputs,
        "window": args.window,
        "min_fast_speedup": args.min_speedup,
        "strategies": strategies,
        "million": million,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")

    failed = False
    not_identical = [n for n, row in strategies.items()
                     if not row["identical"]]
    if not_identical:
        print(f"FAIL: fast engine diverged from the reference on "
              f"{not_identical}", file=sys.stderr)
        failed = True
    iced_speedup = strategies["iced"]["speedup"]
    if iced_speedup < args.min_speedup:
        print(f"FAIL: fast ICED only {iced_speedup:.1f}x faster than the "
              f"reference (need >= {args.min_speedup}x)", file=sys.stderr)
        failed = True
    if million["peak_mem_mb"] >= MAX_MILLION_PEAK_MB:
        print(f"FAIL: million-input run peaked at "
              f"{million['peak_mem_mb']:.1f} MB "
              f"(limit {MAX_MILLION_PEAK_MB:.0f} MB)", file=sys.stderr)
        failed = True
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        base_speedup = float(
            baseline.get("strategies", {}).get("iced", {})
            .get("speedup", 0.0)
        )
        if base_speedup > 0:
            regression = base_speedup / max(iced_speedup, 1e-9) - 1.0
            print(f"baseline gate: ICED speedup {iced_speedup:.1f}x vs "
                  f"committed {base_speedup:.1f}x "
                  f"({regression:+.0%} vs. limit "
                  f"+{args.max_regression:.0%})")
            if regression > args.max_regression:
                print(f"FAIL: ICED speedup regressed {regression:.0%} vs. "
                      f"{args.baseline} (limit {args.max_regression:.0%})",
                      file=sys.stderr)
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
