"""Benchmark + regeneration of Fig 10 (average DVFS level)."""

from conftest import attach

from repro.experiments import fig10


def test_bench_fig10(one_shot, benchmark):
    result = one_shot(fig10.run)
    attach(benchmark, result)
    # Per-tile is the lower bound; ICED sits above it but far below
    # the all-normal baseline (paper: 26% vs 35% vs 100%).
    assert result.data["per_tile_dvfs_u1"] <= result.data["iced_u1"] + 0.05
    assert result.data["iced_u1"] < 0.7 * result.data["baseline_u1"]
