"""Benchmark + regeneration of Fig 2 (baseline under-utilization)."""

from conftest import attach

from repro.experiments import fig2


def test_bench_fig2(one_shot, benchmark):
    result = one_shot(fig2.run)
    attach(benchmark, result)
    u1 = result.series["avg utilization (unroll 1)"]
    assert u1[0] > u1[-1]  # utilization shrinks on larger fabrics
