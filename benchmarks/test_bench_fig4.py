"""Benchmark + regeneration of Fig 4 (island-size performance sweep)."""

from conftest import attach

from repro.experiments import fig4


def test_bench_fig4(one_shot, benchmark):
    result = one_shot(fig4.run)
    attach(benchmark, result)
    geo = result.data["geomean"]
    # 2x2 islands lose no performance relative to larger islands.
    assert geo["2x2"] >= geo["4x4"] - 1e-9
    assert geo["2x2"] >= geo["8x8"] - 1e-9
