"""Benchmark + regeneration of Fig 12 (scalability of DVFS levels)."""

from conftest import attach

from repro.experiments import fig12


def test_bench_fig12(one_shot, benchmark):
    result = one_shot(fig12.run)
    attach(benchmark, result)
    iced = result.series["iced"]
    per_tile = result.series["per_tile"]
    # ICED tracks the per-tile lower bound across fabric sizes.
    gaps = [i - p for i, p in zip(iced, per_tile)]
    assert all(g >= -0.05 for g in gaps)
    assert max(gaps) < 0.45
