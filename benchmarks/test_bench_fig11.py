"""Benchmark + regeneration of Fig 11 (power / energy-efficiency)."""

from conftest import attach

from repro.experiments import fig11


def test_bench_fig11(one_shot, benchmark):
    result = one_shot(fig11.run)
    attach(benchmark, result)
    # Headline: ICED more energy-efficient than the baseline (paper
    # 1.32x at unroll 2) and than per-tile DVFS.
    assert result.data["iced_u2"] < result.data["baseline_u2"]
    assert result.data["iced_u2"] < result.data["per_tile_dvfs_u2"]
    ratio = result.data["baseline_u2"] / result.data["iced_u2"]
    benchmark.extra_info["iced_vs_baseline_u2"] = round(ratio, 3)
    assert ratio > 1.1
