"""Benchmark + regeneration of Fig 3 (motivating walk-through)."""

from conftest import attach

from repro.experiments import fig3


def test_bench_fig3(one_shot, benchmark):
    result = one_shot(fig3.run)
    attach(benchmark, result)
    powers = result.series["power_mw"]
    assert all(p < powers[0] for p in powers[1:])
