"""DSE throughput smoke check for CI.

One ~100-point design space — a fabric-sizing sweep for one workload:
fabrics x island geometries x V/F tables x all four paper strategies —
swept three ways:

1. **naive** — the honest baseline: one cold compile per point, fresh
   per-point cache, scalar candidate scoring, no II warm starts, the
   routing distance-oracle cache cleared between points;
2. **optimized serial** — ``repro.dse.run_dse`` with every reuse
   channel on (exact-key dedupe, cross-V/F blob aliasing, warm-started
   II deepening, vectorized scoring, cross-point oracle reuse) against
   a fresh disk cache;
3. **optimized parallel** — the same sweep at ``--jobs N`` against
   another fresh cache.

Asserted invariants:

* every point's final mapping blob is **byte-identical** across all
  three runs — the optimizations are accelerations, not behaviour
  changes;
* the parallel run's points and frontier are byte-equal to the serial
  run's (the ``--jobs`` determinism contract);
* optimized serial is >= MIN_DSE_SPEEDUP x faster than naive
  (wall-clock, same process, naive timed both before and after the
  optimized runs so interpreter warm-up cannot flatter either side);
* the reuse channels demonstrably fired: fewer compiles than points,
  aliased blobs > 0, warm cache hits > 0;
* with ``--baseline FILE``, this run's optimized wall-clock has not
  regressed more than ``--max-regression`` against the committed
  ``BENCH_dse.json`` (the CI perf gate).

Artifacts: ``BENCH_dse.json`` (timings + stats), the canonical Pareto
result document, and optionally a Chrome trace of the optimized sweep.

Usage::

    PYTHONPATH=src python benchmarks/dse_smoke.py [--jobs N]
        [--out BENCH_dse.json] [--pareto-out FILE] [--trace FILE]
        [--baseline BENCH_dse.json --max-regression 0.5]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from repro import obs
from repro.dse import DesignSpace, render_summary, run_dse, write_result
from repro.mapper import routing

MIN_DSE_SPEEDUP = 3.0
SEED = 0

#: 3 fabrics x 3 island geometries x 3 V/F depths x 4 strategies for
#: one workload = 108 points: the "size a fabric for this kernel"
#: question a DSE exists to answer.  ``solver0`` is the interesting
#: regime for the reuse channels — its *conventional* mapping is the
#: expensive search (a long division recurrence plus memory-port
#: pressure), and that is exactly the compile the optimized sweep runs
#: once per geometry instead of once per (V/F depth x oblivious
#: strategy), while its DVFS-aware searches stay cheap.
SMOKE_SPACE = DesignSpace(
    name="dse-smoke",
    fabrics=((6, 6), (7, 7), (8, 8)),
    islands=((2, 2), (2, 3), (2, 4)),
    topologies=("mesh",),
    vf_levels=(2, 3, 4),
    strategies=("baseline", "baseline+gating", "per_tile_dvfs", "iced"),
    kernels=("solver0",),
)


def _timed_naive() -> tuple[float, dict, dict]:
    routing.clear_oracle_cache()
    blobs: dict = {}
    start = time.perf_counter()
    result = run_dse(SMOKE_SPACE, seed=SEED, naive=True,
                     blob_sink=blobs)
    return time.perf_counter() - start, result, blobs


def _timed_optimized(jobs: int, cache_dir: str) -> tuple[float, dict, dict]:
    routing.clear_oracle_cache()
    blobs: dict = {}
    start = time.perf_counter()
    result = run_dse(SMOKE_SPACE, jobs=jobs, seed=SEED,
                     cache_dir=cache_dir, blob_sink=blobs)
    return time.perf_counter() - start, result, blobs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count of the parallel sweep")
    parser.add_argument("--out", default="BENCH_dse.json")
    parser.add_argument("--pareto-out", default=None,
                        help="write the canonical Pareto document here")
    parser.add_argument("--trace", default=None,
                        help="Chrome trace of the optimized serial sweep")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_dse.json to gate against")
    parser.add_argument("--max-regression", type=float, default=0.5,
                        help="allowed fractional slowdown vs baseline")
    args = parser.parse_args(argv)

    points = SMOKE_SPACE.expand()
    print(f"dse smoke: {len(points)} points "
          f"(space hash {SMOKE_SPACE.space_hash()})")

    # Interleave naive around the optimized runs and keep the *best*
    # naive time: the conservative choice (any warm-up bias helps the
    # naive side of the ratio, never the optimized side).
    naive_s_1, naive_result, naive_blobs = _timed_naive()

    tracer = obs.install_tracer() if args.trace else None
    with tempfile.TemporaryDirectory(prefix="dse-smoke-") as tmp:
        opt_s, opt_result, opt_blobs = _timed_optimized(
            1, os.path.join(tmp, "serial"))
        if tracer is not None:
            obs.uninstall_tracer()
            obs.write_chrome_trace(args.trace, tracer)
            print(f"wrote {args.trace}")
        par_s, par_result, par_blobs = _timed_optimized(
            args.jobs, os.path.join(tmp, "parallel"))

    naive_s_2, _, check_blobs = _timed_naive()
    naive_s = min(naive_s_1, naive_s_2)
    assert check_blobs == naive_blobs, "naive run is nondeterministic?!"

    # -- bit-identity: the optimizations change nothing but time ------------
    assert set(opt_blobs) == set(naive_blobs)
    divergent = sorted(i for i in opt_blobs
                       if opt_blobs[i] != naive_blobs[i])
    assert not divergent, f"optimized blobs diverged at {divergent}"
    assert opt_result["points"] == naive_result["points"]
    assert opt_result["frontier"] == naive_result["frontier"]

    # -- jobs determinism ---------------------------------------------------
    canon = lambda doc, sec: json.dumps(doc[sec], sort_keys=True)
    assert canon(par_result, "points") == canon(opt_result, "points")
    assert canon(par_result, "frontier") == canon(opt_result, "frontier")
    assert par_blobs == opt_blobs

    # -- the reuse channels actually fired ----------------------------------
    stats = opt_result["stats"]
    assert stats["compiles"] < stats["points"], "no dedupe happened"
    assert stats["aliased_blobs"] > 0, "cross-V/F aliasing never fired"
    assert stats["cache_hits"] > 0, "exact-key reuse never fired"

    speedup = naive_s / opt_s if opt_s else float("inf")
    print(f"naive      {naive_s:8.2f}s  ({stats['points']} compiles)")
    print(f"optimized  {opt_s:8.2f}s  ({stats['compiles']} compiles, "
          f"{stats['cache_hits']} hits, {stats['aliased_blobs']} aliased)")
    print(f"parallel   {par_s:8.2f}s  (--jobs {args.jobs})")
    print(f"speedup    {speedup:8.2f}x  (gate: >= {MIN_DSE_SPEEDUP}x)")
    print(render_summary(opt_result, top=5))

    payload = {
        "space_hash": SMOKE_SPACE.space_hash(),
        "points": len(points),
        "naive_s": round(naive_s, 3),
        "optimized_s": round(opt_s, 3),
        "parallel_s": round(par_s, 3),
        "parallel_jobs": args.jobs,
        "speedup": round(speedup, 3),
        "stats": stats,
        "frontier_size": len(opt_result["frontier"]),
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if args.pareto_out:
        write_result(opt_result, args.pareto_out)
        print(f"wrote {args.pareto_out}")

    ok = True
    if speedup < MIN_DSE_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"{MIN_DSE_SPEEDUP}x gate", file=sys.stderr)
        ok = False
    if args.baseline:
        with open(args.baseline) as fh:
            base = json.load(fh)
        budget = base["optimized_s"] * (1.0 + args.max_regression)
        print(f"baseline gate: {opt_s:.2f}s vs budget {budget:.2f}s "
              f"(committed {base['optimized_s']}s "
              f"+{args.max_regression:.0%})")
        if opt_s > budget:
            print(f"FAIL: optimized sweep regressed past the budget",
                  file=sys.stderr)
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
