"""Micro-benchmarks of the toolchain's hot components.

These are the classic pytest-benchmark loops (many rounds): mapper
throughput, router latency, resource-pool claim rate, simulator speed —
useful for tracking regressions while evolving the heuristics.
"""

import pytest

from repro.arch import CGRA
from repro.kernels import load_kernel
from repro.mapper import map_baseline, map_dvfs_aware
from repro.mapper.routing import find_route
from repro.mapper.timing import compute_timing
from repro.mrrg import MRRG
from repro.mrrg.resources import ModuloResourcePool, fu_key
from repro.sim import simulate_execution


@pytest.fixture(scope="module")
def cgra66():
    return CGRA.build(6, 6)


def test_bench_map_baseline_fir(benchmark, cgra66):
    dfg = load_kernel("fir", 1)
    mapping = benchmark(map_baseline, dfg, cgra66)
    assert mapping.ii >= 4


def test_bench_map_iced_fir(benchmark, cgra66):
    dfg = load_kernel("fir", 1)
    mapping = benchmark(map_dvfs_aware, dfg, cgra66)
    assert mapping.ii >= 4


def test_bench_router(benchmark, cgra66):
    mrrg = MRRG(cgra66, ii=4)

    def route_corner_to_corner():
        result, _ = find_route(mrrg, lambda t: 1, 0, 0, 35, 16)
        return result

    assert benchmark(route_corner_to_corner) is not None


def test_bench_pool_claims(benchmark, cgra66):
    def claim_and_rollback():
        pool = ModuloResourcePool(cgra66, ii=8)
        token = pool.checkpoint()
        for tile in range(36):
            pool.claim(fu_key(tile), tile % 8, 2)
        pool.rollback(token)
        return pool

    benchmark(claim_and_rollback)


def test_bench_timing_reconstruction(benchmark, cgra66):
    mapping = map_baseline(load_kernel("gemm", 1), cgra66)
    report = benchmark(compute_timing, mapping)
    assert report.ii == mapping.ii


def test_bench_simulator(benchmark, cgra66):
    mapping = map_baseline(load_kernel("conv", 1), cgra66)
    stats = benchmark(simulate_execution, mapping, 1000)
    assert stats.total_cycles > 0
