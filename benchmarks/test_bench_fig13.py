"""Benchmark + regeneration of Fig 13 (streaming: ICED vs DRIPS)."""

from conftest import attach

from repro.experiments import fig13


def test_bench_fig13(one_shot, benchmark):
    result = one_shot(fig13.run)
    attach(benchmark, result)
    # Paper: 1.12x (GCN) and up to 1.26x (LU) perf/W over DRIPS.
    assert result.data["gcn_ratio"] > 0.95
    assert result.data["lu_ratio"] > 1.05
    benchmark.extra_info["gcn_ratio"] = round(result.data["gcn_ratio"], 3)
    benchmark.extra_info["lu_ratio"] = round(result.data["lu_ratio"], 3)
