"""Benchmark-harness configuration.

Each ``test_bench_*`` file regenerates one table or figure of the paper
(pytest-benchmark measures the harness; the regenerated rows land in
``benchmark.extra_info`` and on stdout). Mapping results are shared
through the experiments-level cache, so figure benches that consume the
same mappings don't recompute them.
"""

import pytest


@pytest.fixture
def one_shot(benchmark):
    """Run an expensive harness exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return runner


def attach(benchmark, result) -> None:
    """Store a regenerated experiment's headline in the benchmark JSON."""
    benchmark.extra_info["experiment"] = result.id
    benchmark.extra_info["notes"] = list(result.notes)
    print()
    print(result.render())
