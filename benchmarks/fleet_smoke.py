"""Fleet-simulator smoke check for CI.

Simulates one day of traffic (default 288 inputs per tenant — one
five-minute interval each) for a synthetic multi-tenant fleet at
``--tenants`` scale, through both fleet paths:

1. **reference** — the honest baseline: one sequential fast-engine run
   per tenant, in tenant order (``batched=False``), timed once;
2. **batched** — homogeneous tenant groups stacked into tenant-major
   vectorized scans (``batched=True``), best of two runs;
3. **identity** — ``canonical_report`` (everything outside the volatile
   ``stats`` section) must be *equal* between the two paths: every
   tenant row float for float, every fabric load, every rollup total;
4. **jobs** — a ``jobs=2`` batched run must produce the same canonical
   report as ``jobs=1`` (compile parallelism must not leak into
   results).

Asserted invariants:

* batched-vs-reference simulation speedup >= ``MIN_BATCHED_SPEEDUP``
  (a same-process ratio over the ``simulate_s`` phase, so compile time
  and runner speed cancel out);
* canonical reports identical across engine paths and jobs counts;
* with ``--baseline FILE``, the speedup has not regressed more than
  ``--max-regression`` against the committed ``BENCH_fleet.json``
  (ratio-vs-ratio, machine-independent).

Results are written to ``BENCH_fleet.json`` so fleet-throughput
regressions show up as artifact diffs.

Usage::

    PYTHONPATH=src python benchmarks/fleet_smoke.py [--tenants N]
        [--fabrics M] [--inputs N] [--min-speedup X]
        [--baseline BENCH_fleet.json --max-regression 0.25]
        [--trace FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from repro.fleet import FleetSim, canonical_report, synthesize_fleet

MIN_BATCHED_SPEEDUP = 10.0


def _build(args):
    return synthesize_fleet(
        args.tenants, args.fabrics,
        scenarios=tuple(args.scenarios.split(",")),
        strategies=tuple(args.strategies.split(",")),
        inputs=args.inputs, window=args.window,
        placement=args.placement, seed=args.seed,
    )


def _run(spec, cache_dir: str, *, jobs: int = 1,
         batched: bool = True) -> dict:
    return FleetSim(spec).run(jobs=jobs, cache_dir=cache_dir,
                              batched=batched)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_fleet.json")
    parser.add_argument("--tenants", type=int, default=1000)
    parser.add_argument("--fabrics", type=int, default=16)
    parser.add_argument("--inputs", type=int, default=288,
                        help="stream length per tenant (288 = one "
                             "five-minute-interval day)")
    parser.add_argument("--window", type=int, default=10,
                        help="DVFS observation window (inputs)")
    parser.add_argument("--scenarios",
                        default="enzyme,diurnal,bursty,trace_fleet",
                        help="comma list cycled across tenants")
    parser.add_argument("--strategies", default="iced,static",
                        help="comma list cycled across tenants")
    parser.add_argument("--placement", default="load_balanced")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float,
                        default=MIN_BATCHED_SPEEDUP,
                        help="required batched-vs-reference simulation "
                             "speedup")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_fleet.json to gate "
                             "speedup regressions against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="maximum tolerated speedup loss vs. the "
                             "baseline (fraction, default 0.25)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace of one batched run")
    args = parser.parse_args(argv)

    spec = _build(args)
    print(f"fleet: {args.tenants} tenants x {args.inputs} inputs on "
          f"{args.fabrics} fabrics ({args.scenarios}; "
          f"{args.strategies}; placement {args.placement})")

    with tempfile.TemporaryDirectory(prefix="fleet_smoke_") as cache_dir:
        # Warm the compile cache so every timed run pays simulation only.
        warm = _run(spec, cache_dir)
        print(f"compile: {warm['stats']['compile_s']:.2f}s cold "
              f"({warm['stats']['batched_groups']} batched groups)")

        reference = _run(spec, cache_dir, batched=False)
        reference_s = reference["stats"]["simulate_s"]

        batched = None
        batched_s = None
        for _ in range(2):
            batched = _run(spec, cache_dir)
            elapsed = batched["stats"]["simulate_s"]
            batched_s = (elapsed if batched_s is None
                         else min(batched_s, elapsed))

        jobs2 = _run(spec, cache_dir, jobs=2)

        if args.trace:
            from repro import obs

            tracer = obs.install_tracer()
            saved = obs.set_metrics(obs.MetricsRegistry())
            try:
                _run(spec, cache_dir)
            finally:
                trace_registry = obs.set_metrics(saved)
                obs.uninstall_tracer()
            events = obs.write_trace(args.trace, tracer, trace_registry)
            print(f"trace: {events} events -> {args.trace}")

    total_inputs = reference["rollup"]["total_inputs"]
    identical = canonical_report(batched) == canonical_report(reference)
    jobs_identical = canonical_report(jobs2) == canonical_report(batched)
    speedup = reference_s / max(batched_s, 1e-9)
    print(f"reference {total_inputs / reference_s:11,.0f} inputs/s "
          f"({reference_s:.2f}s)")
    print(f"batched   {total_inputs / batched_s:11,.0f} inputs/s "
          f"({batched_s:.3f}s)  speedup {speedup:5.1f}x  "
          f"identical={identical}  jobs2_identical={jobs_identical}")

    payload = {
        "tenants": args.tenants,
        "fabrics": args.fabrics,
        "inputs": args.inputs,
        "window": args.window,
        "scenarios": args.scenarios,
        "strategies": args.strategies,
        "placement": args.placement,
        "seed": args.seed,
        "min_batched_speedup": args.min_speedup,
        "reference": {
            "simulate_s": round(reference_s, 3),
            "inputs_per_sec": round(total_inputs / reference_s),
        },
        "batched": {
            "simulate_s": round(batched_s, 4),
            "inputs_per_sec": round(total_inputs / batched_s),
            "batched_groups": batched["stats"]["batched_groups"],
            "fallback_runs": batched["stats"]["fallback_runs"],
        },
        "speedup": round(speedup, 2),
        "identical": identical,
        "jobs_identical": jobs_identical,
        "rollup": {
            "total_inputs": total_inputs,
            "total_energy_uj": round(
                reference["rollup"]["total_energy_uj"], 3),
            "max_fabric_load_cycles":
                reference["rollup"]["max_fabric_load_cycles"],
            "slo_violations": reference["rollup"]["slo_violations"],
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")

    failed = False
    if not identical:
        print("FAIL: batched fleet diverged from the per-tenant "
              "reference", file=sys.stderr)
        failed = True
    if not jobs_identical:
        print("FAIL: jobs=2 diverged from jobs=1", file=sys.stderr)
        failed = True
    if speedup < args.min_speedup:
        print(f"FAIL: batched fleet only {speedup:.1f}x faster than the "
              f"reference (need >= {args.min_speedup}x)", file=sys.stderr)
        failed = True
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        base_speedup = float(baseline.get("speedup", 0.0))
        if base_speedup > 0:
            regression = base_speedup / max(speedup, 1e-9) - 1.0
            print(f"baseline gate: speedup {speedup:.1f}x vs committed "
                  f"{base_speedup:.1f}x ({regression:+.0%} vs. limit "
                  f"+{args.max_regression:.0%})")
            if regression > args.max_regression:
                print(f"FAIL: batched speedup regressed {regression:.0%} "
                      f"vs. {args.baseline} "
                      f"(limit {args.max_regression:.0%})",
                      file=sys.stderr)
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
