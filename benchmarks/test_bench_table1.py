"""Benchmark + regeneration of Table I (kernel suite synthesis)."""

from conftest import attach

from repro.experiments import table1


def test_bench_table1(one_shot, benchmark):
    result = one_shot(table1.run)
    attach(benchmark, result)
    assert result.data["mismatches"] == 0
