"""Benchmark + regeneration of Fig 8 (area/power breakdown)."""

import pytest
from conftest import attach

from repro.experiments import fig8


def test_bench_fig8(one_shot, benchmark):
    result = one_shot(fig8.run)
    attach(benchmark, result)
    area = result.data["area_mm2"]
    fabric = sum(v for k, v in area.items() if k != "sram")
    assert fabric == pytest.approx(6.63, rel=0.02)
