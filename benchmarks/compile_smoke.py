"""Compile-time smoke check for CI.

Maps the 10 standalone Table I kernels twice through the unified
pipeline on a fresh mapping cache and asserts the second (fully cached)
sweep is at least MIN_SPEEDUP x faster than the cold one. Per-pass
timings, per-kernel wall times and cache statistics are written to
``BENCH_compile.json`` so compile-time regressions show up as artifact
diffs.

Usage::

    PYTHONPATH=src python benchmarks/compile_smoke.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.arch.cgra import CGRA
from repro.compile import (
    Instrumentation,
    MappingCache,
    compile_kernel,
    render_report,
    summarize,
)
from repro.kernels.table1 import STANDALONE_KERNELS

MIN_SPEEDUP = 5.0
STRATEGY = "iced"


def run_sweep(cache: MappingCache, instrument: Instrumentation,
              kernels: tuple[str, ...], cgra: CGRA) -> dict:
    """One full sweep; returns wall time and per-kernel detail."""
    per_kernel = {}
    start = time.perf_counter()
    for name in kernels:
        k_start = time.perf_counter()
        result = compile_kernel(name, cgra, STRATEGY, cache=cache,
                                instrument=instrument)
        per_kernel[name] = {
            "wall_ms": round((time.perf_counter() - k_start) * 1000, 3),
            "ii": result.mapping.ii,
            "cache_hit": result.cache_hit,
        }
    return {
        "wall_s": time.perf_counter() - start,
        "kernels": per_kernel,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_compile.json")
    parser.add_argument("--size", type=int, default=6)
    args = parser.parse_args(argv)

    cgra = CGRA.build(args.size, args.size)
    cache = MappingCache()
    instrument = Instrumentation()

    cold = run_sweep(cache, instrument, STANDALONE_KERNELS, cgra)
    warm = run_sweep(cache, instrument, STANDALONE_KERNELS, cgra)
    speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)

    payload = {
        "strategy": STRATEGY,
        "fabric": f"{args.size}x{args.size}",
        "cold_sweep_s": round(cold["wall_s"], 3),
        "warm_sweep_s": round(warm["wall_s"], 3),
        "speedup": round(speedup, 1),
        "min_speedup": MIN_SPEEDUP,
        "cache": cache.stats_dict(),
        "passes": {
            name: {k: round(v, 3) for k, v in row.items()}
            for name, row in summarize(instrument.events).items()
        },
        "cold": cold["kernels"],
        "warm": warm["kernels"],
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    print(render_report(instrument.events, cache.stats_dict()))
    print(f"\ncold sweep {cold['wall_s']:.2f}s, warm sweep "
          f"{warm['wall_s']:.3f}s -> {speedup:.0f}x ({args.out})")

    misses = [n for n, k in warm["kernels"].items() if not k["cache_hit"]]
    if misses:
        print(f"FAIL: warm sweep missed the cache on {misses}",
              file=sys.stderr)
        return 1
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: cached sweep only {speedup:.1f}x faster "
              f"(need >= {MIN_SPEEDUP}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
