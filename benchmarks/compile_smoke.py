"""Compile-time smoke check for CI.

Three sweeps of the 10 standalone Table I kernels through the
:class:`~repro.compile.SweepExecutor`:

1. **cold serial** — ``--jobs 1`` against a fresh on-disk cache;
2. **cold parallel** — ``--jobs N`` against another fresh cache;
3. **warm** — a fresh executor (fresh memory cache, simulating a fresh
   process) over the parallel run's disk cache.

Asserted invariants:

* the parallel sweep's mappings are byte-identical to the serial ones
  (the executor's determinism contract);
* the warm sweep is >= MIN_WARM_SPEEDUP x faster than cold serial and
  serves every kernel from the disk cache;
* with >= 2 effective cores (``min(jobs, cpus)``), the cold parallel
  sweep is >= MIN_PARALLEL_SPEEDUP x faster than cold serial. On a
  single-core runner the timing is still recorded, but the assertion
  is vacuous — there is no parallelism to measure.

Per-pass timings, per-kernel details and cache statistics are written
to ``BENCH_compile.json`` so compile-time regressions show up as
artifact diffs.

Usage::

    PYTHONPATH=src python benchmarks/compile_smoke.py [--jobs N] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.arch.cgra import CGRA
from repro.compile import (
    DiskCache,
    Instrumentation,
    SweepExecutor,
    SweepItem,
    default_jobs,
    render_report,
    summarize,
)
from repro.kernels.table1 import STANDALONE_KERNELS

MIN_WARM_SPEEDUP = 5.0
MIN_PARALLEL_SPEEDUP = 2.0
STRATEGY = "iced"


def _effective_cores(jobs: int) -> int:
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count() or 1
    return min(jobs, cpus)


def _blobs(outcomes) -> dict[str, str]:
    """Canonical mapping JSON per kernel — the bit-identity evidence."""
    return {
        o.item.name: json.dumps(o.result.mapping.to_dict(),
                                sort_keys=True, separators=(",", ":"))
        for o in outcomes
    }


def run_sweep(jobs: int, cache_dir: str, instrument: Instrumentation,
              kernels: tuple[str, ...], cgra: CGRA) -> dict:
    """One full sweep through the executor; returns timing + outcomes."""
    executor = SweepExecutor(jobs=jobs, cache_dir=cache_dir,
                             instrument=instrument)
    items = [SweepItem(kernel=name, strategy=STRATEGY) for name in kernels]
    start = time.perf_counter()
    outcomes = executor.run(items, cgra)
    wall_s = time.perf_counter() - start
    for outcome in outcomes:
        outcome.mapping  # re-raise any MappingError: smoke must map all
    return {
        "wall_s": wall_s,
        "outcomes": outcomes,
        "blobs": _blobs(outcomes),
        "kernels": {
            o.item.name: {"ii": o.result.mapping.ii,
                          "cache_hit": o.result.cache_hit}
            for o in outcomes
        },
        "cache": executor.cache.stats_dict(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_compile.json")
    parser.add_argument("--size", type=int, default=6)
    parser.add_argument("--jobs", type=int, default=None,
                        help="workers for the parallel sweep "
                             "(default: all usable cores)")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    jobs = max(2, jobs)  # the parallel phase must actually fan out
    effective = _effective_cores(jobs)

    cgra = CGRA.build(args.size, args.size)
    instrument = Instrumentation()

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        serial_dir = os.path.join(tmp, "serial")
        parallel_dir = os.path.join(tmp, "parallel")

        cold = run_sweep(1, serial_dir, instrument,
                         STANDALONE_KERNELS, cgra)
        parallel = run_sweep(jobs, parallel_dir, instrument,
                             STANDALONE_KERNELS, cgra)
        # Fresh executor + memory cache over the parallel run's disk
        # tree: exactly what a fresh process sees on a warm cache.
        warm = run_sweep(1, parallel_dir, instrument,
                         STANDALONE_KERNELS, cgra)
        disk_entries = len(DiskCache(parallel_dir))

    warm_speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    parallel_speedup = cold["wall_s"] / max(parallel["wall_s"], 1e-9)
    identical = cold["blobs"] == parallel["blobs"]

    payload = {
        "strategy": STRATEGY,
        "fabric": f"{args.size}x{args.size}",
        "jobs": jobs,
        "effective_cores": effective,
        "cold_sweep_s": round(cold["wall_s"], 3),
        "parallel_cold_s": round(parallel["wall_s"], 3),
        "warm_sweep_s": round(warm["wall_s"], 3),
        "speedup": round(warm_speedup, 1),
        "parallel_speedup": round(parallel_speedup, 2),
        "min_speedup": MIN_WARM_SPEEDUP,
        "min_parallel_speedup": MIN_PARALLEL_SPEEDUP,
        "serial_parallel_identical": identical,
        "disk_entries": disk_entries,
        "cache": warm["cache"],
        "passes": {
            name: {k: round(v, 3) for k, v in row.items()}
            for name, row in summarize(instrument.events).items()
        },
        "cold": cold["kernels"],
        "parallel": parallel["kernels"],
        "warm": warm["kernels"],
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    print(render_report(instrument.events, warm["cache"]))
    print(f"\ncold serial {cold['wall_s']:.2f}s, cold --jobs {jobs} "
          f"{parallel['wall_s']:.2f}s ({parallel_speedup:.1f}x, "
          f"{effective} effective cores), warm {warm['wall_s']:.3f}s "
          f"-> {warm_speedup:.0f}x ({args.out})")

    if not identical:
        diff = [n for n in cold["blobs"]
                if cold["blobs"][n] != parallel["blobs"][n]]
        print(f"FAIL: parallel mappings differ from serial on {diff}",
              file=sys.stderr)
        return 1
    misses = [n for n, k in warm["kernels"].items() if not k["cache_hit"]]
    if misses:
        print(f"FAIL: warm sweep missed the cache on {misses}",
              file=sys.stderr)
        return 1
    if warm_speedup < MIN_WARM_SPEEDUP:
        print(f"FAIL: warm sweep only {warm_speedup:.1f}x faster "
              f"(need >= {MIN_WARM_SPEEDUP}x)", file=sys.stderr)
        return 1
    if effective >= 2 and parallel_speedup < MIN_PARALLEL_SPEEDUP:
        print(f"FAIL: --jobs {jobs} sweep only {parallel_speedup:.1f}x "
              f"faster than serial on {effective} cores "
              f"(need >= {MIN_PARALLEL_SPEEDUP}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
