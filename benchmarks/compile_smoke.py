"""Compile-time smoke check for CI.

Four sweeps of the 10 standalone Table I kernels through the
:class:`~repro.compile.SweepExecutor`:

1. **cold serial** — ``--jobs 1`` against a fresh on-disk cache;
2. **cold parallel** — ``--jobs N`` against another fresh cache;
3. **warm** — a fresh executor (fresh memory cache, simulating a fresh
   process) over the parallel run's disk cache;
4. **reference hot-path** — cold serial again, with the pre-optimization
   reference Dijkstra (``tests/reference_routing.py``) monkeypatched
   into the placement engine. Same process, same machine, same engine:
   the wall-clock ratio against sweep 1 is the router hot-path speedup,
   and the mappings must be byte-identical (the optimized router is a
   pure acceleration, not a behaviour change). Both sides are timed
   best-of-two (reference, optimized, reference again, interleaved so
   each router gets a fully-warmed late run): single-shot wall clocks
   on a shared CI runner are too noisy for a hard ratio gate.

Asserted invariants:

* the parallel sweep's mappings are byte-identical to the serial ones
  (the executor's determinism contract);
* the warm sweep is >= MIN_WARM_SPEEDUP x faster than cold serial and
  serves every kernel from the disk cache;
* with >= 2 effective cores (``min(jobs, cpus)``), the cold parallel
  sweep is >= MIN_PARALLEL_SPEEDUP x faster than cold serial. On a
  single-core runner the timing is still recorded, but the assertion
  is vacuous — there is no parallelism to measure;
* the reference-router sweep produces byte-identical mappings and is
  >= MIN_HOT_PATH_SPEEDUP x slower (i.e. the optimized hot path is at
  least that much faster than main's);
* the cold sweep's engine counters show the route memo and the oracle
  pruning actually firing (``route_memo_hits`` > 0,
  ``candidates_pruned`` > 0);
* with ``--baseline FILE``, this run's cold serial wall-clock has not
  regressed more than ``--max-regression`` against the committed
  ``BENCH_compile.json`` (the CI perf gate);
* **portfolio** — racing the registered backends on a few small
  kernels never loses to the best individual member, and the winner
  mapping / score board are bit-identical across ``--jobs 1`` and
  ``--jobs 2`` (the portfolio determinism contract).

``--exact-smoke`` runs only the exact-backend proof check instead: the
branch-and-bound backend must *prove* the optimal II on each small
kernel inside a hard wall-clock budget. CI runs it as a separate,
label-skippable job.

Per-pass timings, per-kernel details and cache statistics are written
to ``BENCH_compile.json`` so compile-time regressions show up as
artifact diffs.

Usage::

    PYTHONPATH=src python benchmarks/compile_smoke.py [--jobs N] [--out FILE]
        [--baseline BENCH_compile.json --max-regression 0.25]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from repro.arch.cgra import CGRA
from repro.compile import (
    DiskCache,
    Instrumentation,
    SweepExecutor,
    SweepItem,
    default_jobs,
    render_report,
    summarize,
)
from repro.kernels.table1 import STANDALONE_KERNELS

MIN_WARM_SPEEDUP = 5.0
MIN_PARALLEL_SPEEDUP = 2.0
MIN_HOT_PATH_SPEEDUP = 2.0
STRATEGY = "iced"

#: Small kernels the exact backend proves optimal fast (engine warm
#: start sits on the lower bound, so the proof needs zero probes).
EXACT_KERNELS = ("combrelu", "conv", "gemm", "invert", "relu")
PORTFOLIO_KERNELS = ("conv", "relu")
PORTFOLIO_MEMBERS = ("engine", "anneal", "exact")
#: Probe cap for smoke-sized exact searches (seconds, not minutes).
EXACT_SMOKE_PROBES = 20_000


def _portfolio_fingerprint(report) -> dict:
    """The jobs-independent identity of one portfolio outcome."""
    return {
        "winner_backend": report.winner_backend,
        "winner_mapping": json.dumps(report.winner.mapping.to_dict(),
                                     sort_keys=True,
                                     separators=(",", ":")),
        "optimality_gap": report.optimality_gap,
        "proven_optimal": report.proven_optimal,
        "entries": [
            # Cancellation timing is the one jobs-dependent freedom.
            {"backend": e.backend, "ii": e.ii, "cost": e.cost,
             "optimal": e.optimal}
            for e in report.entries if not e.cancelled
        ],
    }


def run_portfolio_section(cgra: CGRA) -> dict:
    """Race the backends per kernel at --jobs 1 and 2; compare."""
    from repro.compile import MappingCache, compile_portfolio

    options = {"exact": {"max_probes": EXACT_SMOKE_PROBES}}
    section: dict = {"kernels": {}, "ok": True}
    for name in PORTFOLIO_KERNELS:
        runs = {}
        for jobs in (1, 2):
            report = compile_portfolio(
                name, cgra, STRATEGY, members=PORTFOLIO_MEMBERS,
                member_options=options, jobs=jobs,
                cache=MappingCache(),
            )
            runs[jobs] = (report, _portfolio_fingerprint(report))
        report, fp = runs[1]
        member_iis = [e.ii for e in report.entries if e.ii is not None]
        never_worse = report.winner.report.ii <= min(member_iis)
        reproducible = fp == runs[2][1]
        section["kernels"][name] = {
            **fp,
            "winner_ii": report.winner.report.ii,
            "best_member_ii": min(member_iis),
            "never_worse": never_worse,
            "jobs_reproducible": reproducible,
        }
        section["ok"] = section["ok"] and never_worse and reproducible
    return section


def run_exact_smoke(size: int, budget_s: float, out: str) -> int:
    """Exact-backend proof check under a hard wall-clock budget."""
    from repro.compile import MappingCache, compile_kernel

    cgra = CGRA.build(size, size)
    rows = {}
    start = time.perf_counter()
    for name in EXACT_KERNELS:
        t0 = time.perf_counter()
        result = compile_kernel(
            name, cgra, STRATEGY, backend="exact",
            backend_options={"max_probes": EXACT_SMOKE_PROBES,
                             "budget_s": budget_s},
            cache=MappingCache(),
        )
        stats = result.backend_stats or {}
        rows[name] = {
            "ii": result.report.ii,
            "proved_optimal": bool(result.optimal),
            "probes": int(stats.get("probes", 0)),
            "wall_s": round(time.perf_counter() - t0, 3),
        }
    total_s = time.perf_counter() - start
    payload = {
        "fabric": f"{size}x{size}",
        "budget_s": budget_s,
        "total_s": round(total_s, 3),
        "kernels": rows,
    }
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    for name, row in rows.items():
        print(f"{name:<10} II={row['ii']} proved={row['proved_optimal']}"
              f" probes={row['probes']} {row['wall_s']:.2f}s")
    unproved = [n for n, r in rows.items() if not r["proved_optimal"]]
    if unproved:
        print(f"FAIL: exact backend left {unproved} unproved",
              file=sys.stderr)
        return 1
    if total_s > budget_s:
        print(f"FAIL: exact smoke took {total_s:.1f}s "
              f"(budget {budget_s:.0f}s)", file=sys.stderr)
        return 1
    print(f"exact smoke: {len(rows)} kernels proved optimal in "
          f"{total_s:.1f}s (budget {budget_s:.0f}s) -> {out}")
    return 0


def _effective_cores(jobs: int) -> int:
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count() or 1
    return min(jobs, cpus)


def _blobs(outcomes) -> dict[str, str]:
    """Canonical mapping JSON per kernel — the bit-identity evidence."""
    return {
        o.item.name: json.dumps(o.result.mapping.to_dict(),
                                sort_keys=True, separators=(",", ":"))
        for o in outcomes
    }


def run_sweep(jobs: int, cache_dir: str, instrument: Instrumentation,
              kernels: tuple[str, ...], cgra: CGRA) -> dict:
    """One full sweep through the executor; returns timing + outcomes."""
    executor = SweepExecutor(jobs=jobs, cache_dir=cache_dir,
                             instrument=instrument)
    items = [SweepItem(kernel=name, strategy=STRATEGY) for name in kernels]
    start = time.perf_counter()
    outcomes = executor.run(items, cgra)
    wall_s = time.perf_counter() - start
    for outcome in outcomes:
        outcome.mapping  # re-raise any MappingError: smoke must map all
    return {
        "wall_s": wall_s,
        "outcomes": outcomes,
        "blobs": _blobs(outcomes),
        "kernels": {
            o.item.name: {"ii": o.result.mapping.ii,
                          "cache_hit": o.result.cache_hit}
            for o in outcomes
        },
        "cache": executor.cache.stats_dict(),
    }


def run_reference_sweep(cache_dir: str, kernels: tuple[str, ...],
                        cgra: CGRA) -> dict:
    """Cold serial sweep with the reference router in the engine.

    ``--jobs 1`` runs the sweep inline (no worker processes), so
    patching :mod:`repro.mapper.engine`'s ``find_route`` really routes
    every probe through the reference Dijkstra.
    """
    from tests.reference_routing import reference_find_route
    import repro.mapper.engine as engine_mod

    original = engine_mod.find_route
    engine_mod.find_route = reference_find_route
    try:
        return run_sweep(1, cache_dir, Instrumentation(), kernels, cgra)
    finally:
        engine_mod.find_route = original


def _engine_counters(events) -> dict[str, float]:
    """Summed place_route counters of one phase's event slice."""
    rows = summarize(events)
    return rows.get("place_route", {})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_compile.json")
    parser.add_argument("--size", type=int, default=6)
    parser.add_argument("--jobs", type=int, default=None,
                        help="workers for the parallel sweep "
                             "(default: all usable cores)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_compile.json to gate "
                             "cold-compile regressions against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="maximum tolerated cold-sweep slowdown vs. "
                             "the baseline (fraction, default 0.25)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace of the cold parallel "
                             "sweep (worker spans adopted into one "
                             "timeline)")
    parser.add_argument("--exact-smoke", action="store_true",
                        help="run only the exact-backend proof check "
                             "(small kernels, hard wall-clock budget)")
    parser.add_argument("--budget-s", type=float, default=120.0,
                        help="exact smoke: hard wall-clock budget for "
                             "the whole kernel set")
    args = parser.parse_args(argv)
    if args.exact_smoke:
        out = (args.out if args.out != "BENCH_compile.json"
               else "BENCH_exact.json")
        return run_exact_smoke(args.size, args.budget_s, out)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    jobs = max(2, jobs)  # the parallel phase must actually fan out
    effective = _effective_cores(jobs)

    cgra = CGRA.build(args.size, args.size)
    instrument = Instrumentation()

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        serial_dir = os.path.join(tmp, "serial")
        parallel_dir = os.path.join(tmp, "parallel")

        cold = run_sweep(1, serial_dir, instrument,
                         STANDALONE_KERNELS, cgra)
        cold_counters = _engine_counters(instrument.events)
        if args.trace:
            # Trace the parallel sweep (the interesting one: worker
            # span streams adopted into one timeline). The cold serial
            # sweep above stays untraced so the baseline perf gate
            # times exactly what it always timed.
            from repro import obs

            tracer = obs.install_tracer()
            saved_registry = obs.set_metrics(obs.MetricsRegistry())
            try:
                parallel = run_sweep(jobs, parallel_dir, instrument,
                                     STANDALONE_KERNELS, cgra)
            finally:
                trace_registry = obs.set_metrics(saved_registry)
                obs.uninstall_tracer()
            events = obs.write_trace(args.trace, tracer, trace_registry)
            print(f"trace: {events} events -> {args.trace}")
        else:
            parallel = run_sweep(jobs, parallel_dir, instrument,
                                 STANDALONE_KERNELS, cgra)
        # Fresh executor + memory cache over the parallel run's disk
        # tree: exactly what a fresh process sees on a warm cache.
        warm = run_sweep(1, parallel_dir, instrument,
                         STANDALONE_KERNELS, cgra)
        disk_entries = len(DiskCache(parallel_dir))
        # Hot-path A/B, best-of-two per side, interleaved so each
        # router also gets a run with the interpreter fully warmed up.
        # Own Instrumentation: the extra sweeps must not inflate the
        # per-pass table of the three canonical sweeps above.
        reference = run_reference_sweep(os.path.join(tmp, "ref1"),
                                        STANDALONE_KERNELS, cgra)
        optimized2 = run_sweep(1, os.path.join(tmp, "serial2"),
                               Instrumentation(), STANDALONE_KERNELS, cgra)
        reference2 = run_reference_sweep(os.path.join(tmp, "ref2"),
                                         STANDALONE_KERNELS, cgra)
        portfolio_section = run_portfolio_section(cgra)

    warm_speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    parallel_speedup = cold["wall_s"] / max(parallel["wall_s"], 1e-9)
    ref_s = min(reference["wall_s"], reference2["wall_s"])
    opt_s = min(cold["wall_s"], optimized2["wall_s"])
    hot_path_speedup = ref_s / max(opt_s, 1e-9)
    identical = cold["blobs"] == parallel["blobs"]
    reference_identical = (
        cold["blobs"] == reference["blobs"]
        == optimized2["blobs"] == reference2["blobs"]
    )
    memo_hits = int(cold_counters.get("route_memo_hits", 0))
    pruned = int(cold_counters.get("candidates_pruned", 0))

    payload = {
        "strategy": STRATEGY,
        "fabric": f"{args.size}x{args.size}",
        "jobs": jobs,
        "effective_cores": effective,
        "cold_sweep_s": round(cold["wall_s"], 3),
        "parallel_cold_s": round(parallel["wall_s"], 3),
        "warm_sweep_s": round(warm["wall_s"], 3),
        "speedup": round(warm_speedup, 1),
        "parallel_speedup": round(parallel_speedup, 2),
        "min_speedup": MIN_WARM_SPEEDUP,
        "min_parallel_speedup": MIN_PARALLEL_SPEEDUP,
        "serial_parallel_identical": identical,
        "disk_entries": disk_entries,
        "cache": warm["cache"],
        "hot_path": {
            "reference_cold_s": round(ref_s, 3),
            "optimized_cold_s": round(opt_s, 3),
            "reference_samples_s": [round(reference["wall_s"], 3),
                                    round(reference2["wall_s"], 3)],
            "optimized_samples_s": [round(cold["wall_s"], 3),
                                    round(optimized2["wall_s"], 3)],
            "speedup": round(hot_path_speedup, 2),
            "min_speedup": MIN_HOT_PATH_SPEEDUP,
            "identical": reference_identical,
            "route_memo_hits": memo_hits,
            "candidates_pruned": pruned,
        },
        "passes": {
            name: {k: round(v, 3) for k, v in row.items()}
            for name, row in summarize(instrument.events).items()
        },
        "cold": cold["kernels"],
        "parallel": parallel["kernels"],
        "warm": warm["kernels"],
        "portfolio": portfolio_section,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    print(render_report(instrument.events, warm["cache"]))
    print(f"\ncold serial {cold['wall_s']:.2f}s, cold --jobs {jobs} "
          f"{parallel['wall_s']:.2f}s ({parallel_speedup:.1f}x, "
          f"{effective} effective cores), warm {warm['wall_s']:.3f}s "
          f"-> {warm_speedup:.0f}x ({args.out})")
    print(f"hot path: reference router {ref_s:.2f}s vs "
          f"optimized {opt_s:.2f}s (best of two each) -> "
          f"{hot_path_speedup:.2f}x, "
          f"identical={reference_identical}, memo hits {memo_hits}, "
          f"pruned {pruned}")

    if not identical:
        diff = [n for n in cold["blobs"]
                if cold["blobs"][n] != parallel["blobs"][n]]
        print(f"FAIL: parallel mappings differ from serial on {diff}",
              file=sys.stderr)
        return 1
    if not reference_identical:
        diff = [n for n in cold["blobs"]
                if cold["blobs"][n] != reference["blobs"][n]]
        print(f"FAIL: optimized router changed mappings vs. the "
              f"reference on {diff}", file=sys.stderr)
        return 1
    misses = [n for n, k in warm["kernels"].items() if not k["cache_hit"]]
    if misses:
        print(f"FAIL: warm sweep missed the cache on {misses}",
              file=sys.stderr)
        return 1
    if warm_speedup < MIN_WARM_SPEEDUP:
        print(f"FAIL: warm sweep only {warm_speedup:.1f}x faster "
              f"(need >= {MIN_WARM_SPEEDUP}x)", file=sys.stderr)
        return 1
    if effective >= 2 and parallel_speedup < MIN_PARALLEL_SPEEDUP:
        print(f"FAIL: --jobs {jobs} sweep only {parallel_speedup:.1f}x "
              f"faster than serial on {effective} cores "
              f"(need >= {MIN_PARALLEL_SPEEDUP}x)", file=sys.stderr)
        return 1
    if hot_path_speedup < MIN_HOT_PATH_SPEEDUP:
        print(f"FAIL: hot path only {hot_path_speedup:.2f}x faster than "
              f"the reference router (need >= {MIN_HOT_PATH_SPEEDUP}x)",
              file=sys.stderr)
        return 1
    for name, row in portfolio_section["kernels"].items():
        print(f"portfolio {name}: winner={row['winner_backend']} "
              f"II={row['winner_ii']} (best member {row['best_member_ii']}"
              f"), reproducible across jobs={row['jobs_reproducible']}")
    if not portfolio_section["ok"]:
        bad = [n for n, r in portfolio_section["kernels"].items()
               if not (r["never_worse"] and r["jobs_reproducible"])]
        print(f"FAIL: portfolio section violated its contract on {bad}",
              file=sys.stderr)
        return 1
    if memo_hits <= 0 or pruned <= 0:
        print(f"FAIL: hot-path counters silent (route_memo_hits="
              f"{memo_hits}, candidates_pruned={pruned})", file=sys.stderr)
        return 1
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        base_cold = float(baseline.get("cold_sweep_s", 0.0))
        if base_cold > 0:
            regression = cold["wall_s"] / base_cold - 1.0
            print(f"baseline gate: cold {cold['wall_s']:.2f}s vs "
                  f"committed {base_cold:.2f}s "
                  f"({regression:+.0%} vs. limit +{args.max_regression:.0%})")
            if regression > args.max_regression:
                print(f"FAIL: cold sweep regressed {regression:.0%} vs. "
                      f"{args.baseline} (limit "
                      f"{args.max_regression:.0%})", file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
