"""Benchmark + regeneration of Fig 9 (utilization per strategy)."""

from conftest import attach

from repro.experiments import fig9


def test_bench_fig9(one_shot, benchmark):
    result = one_shot(fig9.run)
    attach(benchmark, result)
    # The paper's headline shape: ICED well above the baseline at both
    # unroll factors (2.3x / 1.6x in the paper).
    assert result.data["iced_u1"] > 1.5 * result.data["baseline_u1"]
    assert result.data["iced_u2"] > 1.3 * result.data["baseline_u2"]
