"""Benchmark + regeneration of the ablation studies."""

from conftest import attach

from repro.experiments import (
    ablation_anneal,
    ablation_island_size,
    ablation_labeling,
    ablation_levels,
    ablation_multicycle,
    ablation_topology,
)


def test_bench_ablation_island_size(one_shot, benchmark):
    result = one_shot(ablation_island_size.run)
    attach(benchmark, result)
    assert result.table.rows


def test_bench_ablation_labeling(one_shot, benchmark):
    result = one_shot(ablation_labeling.run)
    attach(benchmark, result)
    assert 0.7 < result.data["avg_gain"] < 1.5


def test_bench_ablation_levels(one_shot, benchmark):
    result = one_shot(ablation_levels.run)
    attach(benchmark, result)
    assert len(result.table.rows) >= 3


def test_bench_ablation_multicycle(one_shot, benchmark):
    result = one_shot(ablation_multicycle.run)
    attach(benchmark, result)
    gains = result.series["efficiency gain"]
    assert all(g > 1.0 for g in gains)


def test_bench_ablation_topology(one_shot, benchmark):
    result = one_shot(ablation_topology.run)
    attach(benchmark, result)
    gains = result.series["avg efficiency gain"]
    assert all(g > 1.0 for g in gains)


def test_bench_ablation_anneal(one_shot, benchmark):
    result = one_shot(ablation_anneal.run)
    attach(benchmark, result)
    assert all(r >= 0 for r in result.series["cost reduction %"])


def test_bench_ablation_window(one_shot, benchmark):
    from repro.experiments import ablation_window
    result = one_shot(ablation_window.run)
    attach(benchmark, result)
    assert len(result.series["perf/W ratio"]) >= 3
