"""Benchmark + regeneration of Fig 14 (cross-architecture landscape)."""

from conftest import attach

from repro.experiments import fig14


def test_bench_fig14(one_shot, benchmark):
    result = one_shot(fig14.run)
    attach(benchmark, result)
    assert result.data["iced_mops"] > 0
    assert result.data["iced_power_mw"] > 0
