"""Compile-as-a-service load smoke for CI.

Boots a real ``repro serve`` daemon in-process (real sockets, its own
event-loop thread, a fresh disk-cache shard in a temp directory) and
replays a deterministic load-test campaign against it: a few hundred
concurrent requests drawn from the Table I kernels and the paper's
strategy vocabulary, heavily overlapping on purpose so the coalescing
and cache layers have something to do.

Asserted invariants:

* **no dropped or errored requests** — every request answers 200;
* **conservation** — every admitted request either executed a job or
  coalesced onto one (``jobs_executed + coalesced == requests``, from
  the server's own counters, not client-side guesses);
* **coalescing fired** — the coalesce rate clears an absolute floor,
  and with ``--baseline`` at least ``MIN_COALESCE_VS_BASELINE`` of the
  committed run's rate (the mix is seeded, so the overlap structure is
  reproducible even though exact timing is not);
* **the shared cache fired** — a campaign with far more requests than
  unique fingerprints must see cache hits;
* **byte-identity** — a served artifact equals a direct
  :func:`compile_kernel` call, byte for byte, same cache key;
* with ``--baseline``, p99 latency has not regressed past the
  committed ``BENCH_serve.json`` by more than ``--max-regression``
  (generous by default: shared CI runners are noisy).

Artifacts: ``BENCH_serve.json`` (the canonical load-test report) and
optionally a Chrome trace of the daemon's ``serve.request`` spans.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
        [--requests N] [--concurrency N] [--out BENCH_serve.json]
        [--trace FILE] [--baseline BENCH_serve.json]
        [--max-regression 2.0]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from repro import obs
from repro.compile import compile_kernel
from repro.arch.cgra import CGRA
from repro.serve import (
    BackgroundServer,
    HTTPClient,
    LoadtestConfig,
    canonical_json,
    loadtest,
    write_report,
)

#: The campaign: few kernels x few strategies so a few hundred
#: requests pile onto ~16 unique fingerprints — the regime a shared
#: daemon exists for.
KERNELS = ("fir", "latnrm", "mvt", "spmv")
STRATEGIES = ("baseline", "baseline+gating", "per_tile_dvfs", "iced")

#: Absolute coalesce-rate floor: with this much overlap, a daemon that
#: never merges identical in-flight work is broken, not unlucky.
MIN_COALESCE_RATE = 0.05

#: Relative floor against the committed baseline's coalesce rate.
MIN_COALESCE_VS_BASELINE = 0.25

#: Identity probe: served artifact vs a direct pipeline compile.
PROBE = {"kernel": "fir", "strategy": "iced", "priority": "interactive"}


def _probe_identity(url: str) -> None:
    import asyncio

    async def fetch():
        async with HTTPClient(url, timeout_s=120.0) as client:
            return await client.post("/compile", PROBE)

    status, _, served = asyncio.run(fetch())
    assert status == 200, f"identity probe failed: {served}"
    direct = compile_kernel("fir", CGRA.build(6, 6, island_shape=(2, 2)),
                            "iced")
    assert served["key"] == direct.cache_key, "cache keys diverged"
    assert canonical_json(served["mapping"]) == canonical_json(
        direct.mapping.to_dict()
    ), "served artifact is not byte-identical to a direct compile"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=240,
                        help="campaign size (the CI gate runs >= 200)")
    parser.add_argument("--concurrency", type=int, default=40,
                        help="concurrent keep-alive connections")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon compile workers")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--trace", default=None,
                        help="Chrome trace of the daemon's request spans")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_serve.json to gate against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="allowed fractional p99 slowdown vs baseline")
    args = parser.parse_args(argv)

    tracer = obs.install_tracer() if args.trace else None
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        server = BackgroundServer(
            workers=args.workers, max_queue=max(64, args.concurrency * 2),
            cache_dir=tmp, shard="smoke",
        ).start()
        try:
            print(f"serve smoke: daemon at {server.url} "
                  f"({args.workers} workers, fresh cache shard)")
            report = loadtest(LoadtestConfig(
                url=server.url, requests=args.requests,
                concurrency=args.concurrency, seed=args.seed,
                kernels=KERNELS, strategies=STRATEGIES,
            ))
            _probe_identity(server.url)
        finally:
            server.stop()
    if tracer is not None:
        obs.uninstall_tracer()
        obs.write_chrome_trace(args.trace, tracer)
        print(f"wrote {args.trace}")

    latency = report["latency_ms"]
    print(f"requests   {report['requests_sent']} "
          f"({args.concurrency} connections) in "
          f"{report['duration_s']:.2f}s -> "
          f"{report['throughput_rps']:.1f} req/s")
    print(f"latency    p50 {latency['p50']:.1f} ms   "
          f"p99 {latency['p99']:.1f} ms   max {latency['max']:.1f} ms")
    print(f"coalesce   rate {report['coalesce_rate']:.3f} "
          f"({report['coalesced']} coalesced, "
          f"{report['jobs_executed']} jobs, "
          f"{report['unique_fingerprints']} unique fingerprints)")
    print(f"cache      hit rate {report['cache_hit_rate']:.3f}")

    write_report(report, args.out)
    print(f"wrote {args.out}")

    failures: list[str] = []

    def gate(condition: bool, message: str) -> None:
        if not condition:
            print(f"FAIL: {message}", file=sys.stderr)
            failures.append(message)

    sent = report["requests_sent"]
    gate(sent == args.requests,
         f"sent {sent} of {args.requests} requests")
    gate(report["status_counts"] == {"200": sent},
         f"non-200 responses: {report['status_counts']}")
    gate(report["jobs_executed"] + report["coalesced"] == sent,
         "conservation broken: jobs + coalesced != requests "
         f"({report['jobs_executed']} + {report['coalesced']} != {sent})")
    gate(report["coalesce_rate"] >= MIN_COALESCE_RATE,
         f"coalesce rate {report['coalesce_rate']:.3f} below the "
         f"{MIN_COALESCE_RATE} floor")
    gate(report["unique_fingerprints"]
         <= len(KERNELS) * len(STRATEGIES),
         "more unique fingerprints than the mix can produce")
    gate(report["cache_hit_rate"] > 0.0,
         "the shared cache never served a hit")

    if args.baseline:
        with open(args.baseline) as fh:
            base = json.load(fh)
        p99_budget = (base["latency_ms"]["p99"]
                      * (1.0 + args.max_regression))
        coalesce_floor = (base["coalesce_rate"]
                          * MIN_COALESCE_VS_BASELINE)
        print(f"baseline gate: p99 {latency['p99']:.1f} ms vs budget "
              f"{p99_budget:.1f} ms (committed "
              f"{base['latency_ms']['p99']} ms "
              f"+{args.max_regression:.0%}); coalesce "
              f"{report['coalesce_rate']:.3f} vs floor "
              f"{coalesce_floor:.3f}")
        gate(latency["p99"] <= p99_budget,
             f"p99 {latency['p99']:.1f} ms regressed past the "
             f"{p99_budget:.1f} ms budget")
        gate(report["coalesce_rate"] >= coalesce_floor,
             f"coalesce rate fell below {MIN_COALESCE_VS_BASELINE:.0%} "
             "of the committed baseline")

    print("serve smoke: OK" if not failures else "serve smoke: FAILED")
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
