"""Area model reproducing Fig 8's breakdown.

The paper's placed-and-routed 6x6 ICED CGRA occupies 6.63 mm^2 in ASAP7
(excluding SRAM macros, which CACTI evaluates at 22 nm: 0.559 mm^2).
This model distributes that total over the tile components and the
DVFS support in proportions typical for crossbar-based CGRA tiles, and
scales to other fabric sizes / island shapes / controller styles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cgra import CGRA
from repro.power.sram import SRAMModel

#: Component fractions of one tile's area (sums to 1.0).
TILE_FRACTIONS = {
    "fu": 0.34,
    "crossbar": 0.28,
    "config_mem": 0.20,
    "registers": 0.11,
    "clock_and_misc": 0.07,
}

#: Area of one tile, mm^2 (6x6 fabric of 6.63 mm^2 minus DVFS support).
TILE_AREA_MM2 = 0.1722

#: One island's DVFS support (LDO + ADPLL + control unit), mm^2; nine
#: of them complete the 6.63 mm^2 total.
ISLAND_DVFS_AREA_MM2 = 0.0478

#: A per-tile controller costs >30 % of a tile (the UE-CGRA overhead
#: the paper quotes).
PER_TILE_DVFS_AREA_MM2 = 0.32 * TILE_AREA_MM2


@dataclass
class AreaReport:
    """Area breakdown of one CGRA configuration."""

    fabric: str
    components_mm2: dict[str, float] = field(default_factory=dict)

    @property
    def total_mm2(self) -> float:
        return sum(self.components_mm2.values())

    def rows(self) -> list[tuple[str, float, float]]:
        """(component, mm^2, percent) rows, largest first."""
        total = self.total_mm2
        return sorted(
            (
                (name, area, 100.0 * area / total)
                for name, area in self.components_mm2.items()
            ),
            key=lambda row: -row[1],
        )

    def to_dict(self) -> dict:
        return {"fabric": self.fabric, "components_mm2": self.components_mm2,
                "total_mm2": self.total_mm2}


def area_report(cgra: CGRA, dvfs_style: str = "island",
                include_sram: bool = True,
                sram: SRAMModel | None = None) -> AreaReport:
    """Area of ``cgra`` with island / per-tile / no DVFS support.

    ``dvfs_style`` is one of ``"island"``, ``"per_tile"``, ``"none"``.
    """
    if dvfs_style not in ("island", "per_tile", "none"):
        raise ValueError(f"unknown dvfs_style {dvfs_style!r}")
    components = {
        name: fraction * TILE_AREA_MM2 * cgra.num_tiles
        for name, fraction in TILE_FRACTIONS.items()
    }
    if dvfs_style == "island":
        components["dvfs_support"] = ISLAND_DVFS_AREA_MM2 * len(cgra.islands)
    elif dvfs_style == "per_tile":
        components["dvfs_support"] = PER_TILE_DVFS_AREA_MM2 * cgra.num_tiles
    if include_sram:
        sram = sram or SRAMModel(
            size_bytes=cgra.spm.size_bytes, num_banks=cgra.spm.num_banks
        )
        components["sram"] = sram.area_mm2()
    return AreaReport(fabric=cgra.name, components_mm2=components)
