"""A CACTI-style analytic SRAM model.

CACTI 6.5 is a table-driven circuit estimator; for the single design
point the paper uses (32 KB, 8 banks, one R and one W port per bank,
22 nm) it reports 0.559 mm^2 and up to 62.653 mW. This model is an
analytic surrogate calibrated through that point with standard scaling
shapes: area grows slightly super-linearly with capacity per bank plus
a fixed per-bank overhead (decoders, sense amplifiers), and power
splits into per-bank leakage plus access energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError


@dataclass(frozen=True)
class SRAMModel:
    """Area/power surrogate for a banked scratchpad.

    Coefficients are calibrated so that ``SRAMModel()`` evaluated at
    32 KB / 8 banks reproduces the paper's CACTI numbers.
    """

    size_bytes: int = 32 * 1024
    num_banks: int = 8
    #: mm^2 fixed cost per bank (periphery).
    bank_overhead_mm2: float = 0.022
    #: mm^2 per byte^0.9 within a bank (cell array + wordlines).
    array_coeff: float = 0.0000268
    #: mW leakage per bank.
    bank_leakage_mw: float = 1.35
    #: pJ per 32-bit access (read or write), 22 nm-ish.
    access_energy_pj: float = 7.47
    #: Accesses per bank per cycle at full streaming load.
    peak_accesses_per_cycle: float = 2.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.num_banks <= 0:
            raise ArchitectureError("SRAM size and banks must be positive")

    @property
    def bytes_per_bank(self) -> float:
        return self.size_bytes / self.num_banks

    def area_mm2(self) -> float:
        """Total macro area."""
        per_bank = (
            self.bank_overhead_mm2
            + self.array_coeff * self.bytes_per_bank**0.9
        )
        return self.num_banks * per_bank

    def leakage_mw(self) -> float:
        return self.num_banks * self.bank_leakage_mw

    def dynamic_mw(self, frequency_mhz: float,
                   activity: float = 1.0) -> float:
        """Dynamic power at an access rate of ``activity`` x peak."""
        if not 0.0 <= activity <= 1.0:
            raise ArchitectureError("activity must be within [0, 1]")
        accesses_per_us = (
            frequency_mhz * self.peak_accesses_per_cycle * self.num_banks
            * activity
        )
        return accesses_per_us * self.access_energy_pj * 1e-3  # pJ/us -> mW

    def power_mw(self, frequency_mhz: float, activity: float = 1.0) -> float:
        """Total SRAM power (leakage + dynamic)."""
        return self.leakage_mw() + self.dynamic_mw(frequency_mhz, activity)
