"""The power/energy model of equations 2-4.

Per tile (equation 2):

    P(tile) = C_eff * V^2 * f + P_static(tile)

Non-tile power (equation 3) adds the SPM and the DVFS support overhead
(one controller per tile in the per-tile configuration, one per island
for ICED). Energy (equation 4) is total power times execution time.

Calibration (DESIGN.md section 4): at 0.7 V / 434 MHz a tile burns
~3.17 mW (36 tiles ~114 mW, the paper's post-layout figure); a per-tile
DVFS controller costs ~30 % of a tile; an island controller serves four
tiles for ~1.3x the cost of a per-tile one, so islandization cuts the
overhead roughly 3x — which is exactly why ICED beats per-tile DVFS on
total power even at a slightly higher average DVFS level (Fig 10/11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cgra import CGRA
from repro.arch.dvfs import DVFSLevel
from repro.mapper.mapping import Mapping
from repro.power.sram import SRAMModel


@dataclass(frozen=True)
class PowerParams:
    """Calibrated coefficients of the analytic power model.

    ``c_eff_pf`` is the effective switched capacitance per tile,
    calibrated so 36 tiles plus 9 island controllers at nominal
    0.7 V / 434 MHz total the paper's 113.95 mW.
    """

    c_eff_pf: float = 9.25
    #: Static (leakage) power per tile at nominal 0.7 V, in mW.
    static_at_nominal_mw: float = 0.9
    #: Fraction of the full dynamic power burned whenever the tile is
    #: merely clocked (clock tree + configuration fetch); the rest
    #: scales with the tile's busy fraction. Idle slots are assumed
    #: clock-gated in every configuration — this is why plain
    #: power-gating only buys the paper's modest 1.12x (it removes
    #: leakage and the clock floor, not already-idle switching).
    clock_floor_fraction: float = 0.35
    #: Activity assumed for streaming-pipeline islands (they run
    #: wavefronts of inputs rather than one dense modulo schedule).
    streaming_activity: float = 0.7
    #: Nominal voltage the static figure is quoted at.
    nominal_voltage: float = 0.7
    #: Leakage scales ~quadratically with V in this regime.
    static_voltage_exponent: float = 2.0
    #: Residual leakage fraction of a power-gated tile (header cells).
    gated_leakage_fraction: float = 0.02
    #: One per-tile DVFS controller (LDO + ADPLL + control), as a
    #: fraction of nominal tile power ("more than 30 % of a tile").
    per_tile_controller_fraction: float = 0.32
    #: An island controller serves several tiles but is somewhat
    #: larger than a per-tile one.
    island_controller_scale: float = 1.3
    #: SPM activity factor used for kernel evaluation.
    sram_activity: float = 0.55

    def controller_mw(self) -> float:
        """Power of one per-tile DVFS controller."""
        nominal = tile_power_mw(
            self, self.nominal_voltage, 434.0, static=True
        )
        return self.per_tile_controller_fraction * nominal


def tile_power_mw(params: PowerParams, voltage: float,
                  frequency_mhz: float, activity: float = 1.0,
                  static: bool = True) -> float:
    """Equation 2 for one tile at a V/f point and busy fraction."""
    activity = min(1.0, max(0.0, activity))
    full_dynamic = params.c_eff_pf * voltage**2 * frequency_mhz * 1e-3
    floor = params.clock_floor_fraction
    dynamic = full_dynamic * (floor + (1.0 - floor) * activity)
    if not static:
        return dynamic
    leakage = params.static_at_nominal_mw * (
        (voltage / params.nominal_voltage) ** params.static_voltage_exponent
        if voltage > 0 else 0.0
    )
    return dynamic + leakage


def level_tile_power_mw(params: PowerParams, level: DVFSLevel,
                        activity: float = 1.0) -> float:
    """Power of one tile running at ``level`` (0 residual if gated)."""
    if level.is_gated:
        return params.gated_leakage_fraction * params.static_at_nominal_mw
    return tile_power_mw(params, level.voltage, level.frequency_mhz,
                         activity)


DEFAULT_POWER_PARAMS = PowerParams()


@dataclass
class PowerReport:
    """Component breakdown of one configuration's average power."""

    kernel: str
    strategy: str
    tiles_mw: float
    dvfs_overhead_mw: float
    sram_mw: float
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def fabric_mw(self) -> float:
        """CGRA power without the SPM (the paper's 113.95 mW figure)."""
        return self.tiles_mw + self.dvfs_overhead_mw

    @property
    def total_mw(self) -> float:
        return self.tiles_mw + self.dvfs_overhead_mw + self.sram_mw

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "strategy": self.strategy,
            "tiles_mw": self.tiles_mw,
            "dvfs_overhead_mw": self.dvfs_overhead_mw,
            "sram_mw": self.sram_mw,
            "total_mw": self.total_mw,
        }


def _dvfs_overhead_mw(cgra: CGRA, strategy: str,
                      params: PowerParams) -> tuple[float, dict[str, float]]:
    controller = params.controller_mw()
    if strategy in ("baseline", "baseline+gating"):
        return 0.0, {}
    if strategy == "per_tile_dvfs":
        overhead = controller * cgra.num_tiles
        return overhead, {"controllers": float(cgra.num_tiles)}
    # Island-based (ICED): one controller per island.
    overhead = controller * params.island_controller_scale * len(cgra.islands)
    return overhead, {"controllers": float(len(cgra.islands))}


def mapping_power(mapping: Mapping,
                  params: PowerParams = DEFAULT_POWER_PARAMS,
                  sram: SRAMModel | None = None,
                  report=None) -> PowerReport:
    """Average power of a mapped kernel's steady-state execution.

    ``report`` is the mapping's timing reconstruction (recomputed when
    omitted); each tile's dynamic power scales with its busy fraction.
    """
    from repro.mapper.timing import compute_timing

    cgra = mapping.cgra
    report = report or compute_timing(mapping)
    sram = sram or SRAMModel(
        size_bytes=cgra.spm.size_bytes, num_banks=cgra.spm.num_banks
    )
    tiles_mw = sum(
        level_tile_power_mw(
            params, mapping.tile_levels[tile.id],
            activity=report.busy_fraction(tile.id),
        )
        for tile in cgra.tiles
    )
    overhead, detail = _dvfs_overhead_mw(cgra, mapping.strategy, params)
    sram_mw = sram.power_mw(
        cgra.dvfs.normal.frequency_mhz, params.sram_activity
    )
    return PowerReport(
        kernel=mapping.dfg.name,
        strategy=mapping.strategy,
        tiles_mw=tiles_mw,
        dvfs_overhead_mw=overhead,
        sram_mw=sram_mw,
        detail=detail,
    )


def energy_uj(report: PowerReport, execution_time_us: float) -> float:
    """Equation 4: energy in microjoules."""
    return report.total_mw * execution_time_us * 1e-3
