"""Power, energy and area models (equations 2-4 plus Fig 8's breakdown).

The paper obtains component powers from a synthesized, placed-and-routed
ASAP7 design and CACTI; this package substitutes analytic models
calibrated to the published operating points (DESIGN.md section 4):
a 6x6 fabric at 0.7 V / 434 MHz burns ~114 mW, the 32 KB 8-bank SPM
~62.7 mW / 0.559 mm^2, a per-tile DVFS controller costs >30 % of a
tile, and the V/F pairs are (0.7 V, 434 MHz), (0.5 V, 217 MHz),
(0.42 V, 108.5 MHz).
"""

from repro.power.model import (
    PowerParams,
    PowerReport,
    DEFAULT_POWER_PARAMS,
    tile_power_mw,
    mapping_power,
    energy_uj,
)
from repro.power.sram import SRAMModel
from repro.power.area import AreaReport, area_report

__all__ = [
    "PowerParams",
    "PowerReport",
    "DEFAULT_POWER_PARAMS",
    "tile_power_mw",
    "mapping_power",
    "energy_uj",
    "SRAMModel",
    "AreaReport",
    "area_report",
]
