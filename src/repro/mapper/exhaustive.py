"""An exhaustive optimal mapper for tiny instances.

The paper compares its heuristic against ILP-based mapping (CGRA-ME)
for solution quality; this module plays that role for the
reproduction: a backtracking search over *every* (tile, issue-time)
combination — same MRRG claims, same router, same feasibility rules as
the production engine — that provably finds the minimum II whenever it
completes. It is exponential and therefore capped to small DFGs and
fabrics; tests use it as ground truth to bound the heuristic engine's
optimality gap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.cgra import CGRA
from repro.dfg.analysis import rec_mii, topo_order
from repro.dfg.graph import DFG
from repro.dfg.ops import Opcode
from repro.errors import MappingError
from repro.mapper.engine import _Attempt, _BREAK, EngineConfig
from repro.mapper.mapping import Mapping, Placement
from repro.mrrg.mrrg import op_claims

import math

#: Refuse instances bigger than this: the search is exponential.
MAX_NODES = 7
MAX_TILES = 16


@dataclass
class SearchStats:
    """Instrumentation of one exhaustive run."""

    probes: int = 0
    backtracks: int = 0


def map_exhaustive(dfg: DFG, cgra: CGRA, max_ii: int = 8,
                   max_probes: int = 400_000,
                   ) -> tuple[Mapping, SearchStats]:
    """Find a minimum-II mapping by exhaustive search.

    Raises :class:`MappingError` when the instance exceeds the size
    caps, the probe budget, or no mapping exists within ``max_ii``.
    """
    dfg.validate()
    mappable = [
        n.id for n in dfg.nodes() if n.opcode is not Opcode.CONST
    ]
    if len(mappable) > MAX_NODES:
        raise MappingError(
            f"{dfg.name!r} has {len(mappable)} mappable nodes; the "
            f"exhaustive mapper caps at {MAX_NODES}"
        )
    if cgra.num_tiles > MAX_TILES:
        raise MappingError(
            f"{cgra.name} has {cgra.num_tiles} tiles; the exhaustive "
            f"mapper caps at {MAX_TILES}"
        )

    stats = SearchStats()
    start_ii = max(rec_mii(dfg),
                   math.ceil(len(mappable) / cgra.num_tiles))
    # single-source defaults; only the search window is widened here
    config = replace(EngineConfig.for_strategy("exhaustive"),
                     extra_window=4)
    for ii in range(start_ii, max_ii + 1):
        labels = {n: cgra.dvfs.normal for n in dfg.node_ids()}
        attempt = _Attempt(dfg, cgra, config, ii, labels,
                           [t.id for t in cgra.tiles])
        attempt.asap = {n: 0 for n in dfg.node_ids()}
        order = [n for n in topo_order(dfg) if n not in attempt.immediates]
        if _search(attempt, order, 0, stats, max_probes):
            return attempt._finish(), stats
    raise MappingError(
        f"no mapping of {dfg.name!r} within II <= {max_ii} "
        f"({stats.probes} probes)"
    )


def _search(attempt: _Attempt, order: list[int], depth: int,
            stats: SearchStats, max_probes: int) -> bool:
    if depth == len(order):
        return True
    node = order[depth]
    cgra, ii = attempt.cgra, attempt.ii
    opcode = attempt.dfg.node(node).opcode
    level = cgra.dvfs.normal
    for tile in range(cgra.num_tiles):
        if not cgra.tile(tile).supports(opcode):
            continue
        duration = cgra.op_latency(tile, opcode) * level.slowdown
        earliest, latest = attempt._time_window(node, tile, duration)
        slowdown_of = attempt._slowdown_fn(None, None)
        slow = attempt._slow_vector(None, None)
        for t in range(earliest, latest + 1):
            stats.probes += 1
            if stats.probes > max_probes:
                raise MappingError(
                    f"exhaustive search exceeded {max_probes} probes"
                )
            token = attempt.mrrg.checkpoint()
            try:
                attempt.mrrg.claim_all(op_claims(tile, t, duration))
            except MappingError:
                attempt.mrrg.rollback(token)
                continue
            routed = attempt._route_adjacent(node, tile, t, duration,
                                             slowdown_of, slow)
            if not isinstance(routed, tuple):
                attempt.mrrg.rollback(token)
                if routed is _BREAK:
                    break  # larger t cannot satisfy this tile either
                continue
            routes, _latency = routed
            saved_routes = dict(attempt.routes)
            attempt.routes.update(routes)
            attempt.placements[node] = Placement(node, tile, t)
            if _search(attempt, order, depth + 1, stats, max_probes):
                return True
            stats.backtracks += 1
            del attempt.placements[node]
            attempt._ready_cache.pop(node, None)
            attempt.routes = saved_routes
            attempt.mrrg.rollback(token)
    return False
