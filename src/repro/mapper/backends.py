"""Pluggable mapper backends behind one registry.

Every way the repository can turn a DFG into a mapping — the heuristic
engine, annealing refinement, the exhaustive brute-force, the exact
branch-and-bound — is a :class:`MapperBackend`: a named, registered
object with a uniform ``map(dfg, fabric, config) -> MappingResult``
contract. The compile pipeline's ``place_route`` pass dispatches
through this registry, the CLI's ``--backend`` flag and ``repro
backends list`` read it, and the ``portfolio`` meta-backend races its
members and keeps the best result.

This module is also the single source of truth for the *strategy*
vocabulary (the post-pass families the pipeline applies on top of a
backend's placement): the CLI, the experiment harnesses and the
benchmarks all derive their strategy lists from here instead of
restating them.

Determinism contract: a backend's ``map`` is a pure function of
(DFG, fabric, config, its constructor options) — no wall-clock
dependence unless the caller opts into a ``budget_s`` — and the
portfolio's selection rule (:func:`select_best`) depends only on the
member results and their precedence order, never on completion order.
That is what makes ``--jobs N`` racing bit-identical to ``--jobs 1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.arch.cgra import CGRA
from repro.dfg.analysis import DFGAnalysis
from repro.dfg.graph import DFG
from repro.errors import MappingError
from repro.mapper.anneal import _cost as _anneal_cost
from repro.mapper.anneal import anneal_mapping
from repro.mapper.engine import EngineConfig, EngineStats, map_dfg
from repro.mapper.exact import ExactStats, map_exact
from repro.mapper.exhaustive import map_exhaustive
from repro.mapper.mapping import Mapping

# -- strategy vocabulary (single source of truth) ---------------------------

#: Spelling aliases accepted anywhere a strategy is named.
STRATEGY_ALIASES = {"per_tile": "per_tile_dvfs"}

#: Every strategy the pipeline compiles.
KNOWN_STRATEGIES = (
    "baseline", "baseline+gating", "per_tile_dvfs", "iced", "anneal",
)

#: The strategies the paper-figure experiment sweeps compare.
EXPERIMENT_STRATEGIES = (
    "baseline", "baseline+gating", "per_tile_dvfs", "iced",
)


def strategy_choices() -> tuple[str, ...]:
    """Canonical strategies plus accepted aliases (CLI ``choices=``)."""
    return KNOWN_STRATEGIES + tuple(sorted(STRATEGY_ALIASES))


def resolve_strategy(strategy: str) -> str:
    """Canonicalize a strategy spelling; raises ``ValueError`` if unknown."""
    strategy = STRATEGY_ALIASES.get(strategy, strategy)
    if strategy not in KNOWN_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; known: {KNOWN_STRATEGIES}"
        )
    return strategy


# -- the result contract ----------------------------------------------------


def mapping_cost(mapping: Mapping) -> float:
    """The repository's scalar mapping objective: total routed transit
    plus active islands (the annealer's cost, public)."""
    return _anneal_cost(mapping)


@dataclass
class MappingResult:
    """What every backend returns: a mapping plus its quality record.

    ``optimal`` asserts the II is *provably* minimal under the shared
    feasibility model (exhaustive/exact backends only). ``stats`` holds
    the backend's own search-effort counters under its native names —
    namespacing for merged snapshots is the pipeline's job. ``detail``
    carries structured per-run diagnostics (e.g. the engine's per-II
    effort rows) — like ``wall_ms`` it varies run to run, so it is
    excluded from serialization and the fingerprint.
    """

    mapping: Mapping
    backend: str
    ii: int
    cost: float
    optimal: bool = False
    stats: dict[str, int] = field(default_factory=dict)
    wall_ms: float = 0.0
    detail: dict[str, Any] | None = None

    @classmethod
    def wrap(cls, mapping: Mapping, backend: str, *,
             optimal: bool = False,
             stats: dict[str, int] | None = None,
             wall_ms: float = 0.0,
             detail: dict[str, Any] | None = None) -> "MappingResult":
        return cls(mapping=mapping, backend=backend, ii=mapping.ii,
                   cost=mapping_cost(mapping), optimal=optimal,
                   stats=dict(stats or {}), wall_ms=wall_ms,
                   detail=detail)

    def to_dict(self) -> dict[str, Any]:
        """JSON-stable encoding (round-trips through :meth:`from_dict`)."""
        return {
            "mapping": self.mapping.to_dict(),
            "backend": self.backend,
            "ii": self.ii,
            "cost": self.cost,
            "optimal": self.optimal,
            "stats": {str(k): int(v) for k, v in sorted(self.stats.items())},
            "wall_ms": self.wall_ms,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any], dfg: DFG,
                  cgra: CGRA) -> "MappingResult":
        return cls(
            mapping=Mapping.from_dict(data["mapping"], dfg, cgra),
            backend=str(data["backend"]),
            ii=int(data["ii"]),
            cost=float(data["cost"]),
            optimal=bool(data["optimal"]),
            stats={str(k): int(v) for k, v in data.get("stats", {}).items()},
            wall_ms=float(data.get("wall_ms", 0.0)),
        )

    def fingerprint(self) -> dict[str, Any]:
        """The jobs-independent identity of this result: everything in
        :meth:`to_dict` except wall-clock and effort counters, which
        legitimately vary run to run."""
        d = self.to_dict()
        d.pop("wall_ms")
        d.pop("stats")
        return d


@runtime_checkable
class MapperBackend(Protocol):
    """The uniform contract every registered backend implements."""

    name: str
    proves_optimality: bool

    def map(self, dfg: DFG, fabric: CGRA,
            config: EngineConfig | None = None, *,
            analysis: DFGAnalysis | None = None) -> MappingResult:
        """Map ``dfg`` onto ``fabric``; raises ``MappingError`` on failure."""
        ...


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, type] = {}


def register_backend(cls: type) -> type:
    """Class decorator: make ``cls`` available under ``cls.name``."""
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"backend class {cls.__name__} has no name")
    _REGISTRY[name] = cls
    return cls


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> type:
    """The backend class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known: {backend_names()}"
        ) from None


def make_backend(name: str, **options: Any) -> MapperBackend:
    """Instantiate the backend registered under ``name``."""
    return get_backend(name)(**options)


def describe_backends() -> list[dict[str, Any]]:
    """One row per registered backend (``repro backends list``)."""
    rows = []
    for name in backend_names():
        cls = _REGISTRY[name]
        doc = (cls.__doc__ or "").strip().splitlines()
        rows.append({
            "name": name,
            "proves_optimality": bool(cls.proves_optimality),
            "summary": doc[0] if doc else "",
        })
    return rows


# -- portfolio selection ----------------------------------------------------


def select_best(results: list[tuple[int, MappingResult]]) -> MappingResult:
    """The portfolio's deterministic winner among precedence-indexed
    results.

    A sequential portfolio run stops after the first member (in
    precedence order) that *proves* optimality — later members never
    run. A parallel run may complete later members anyway before
    cancellation lands; to stay bit-identical, selection first truncates
    at the lowest-precedence proven-optimal result and then takes the
    minimum by (II, cost, precedence). The outcome therefore depends
    only on the member list, never on completion order or job count.
    """
    if not results:
        raise MappingError("portfolio produced no results")
    proved = [idx for idx, r in results if r.optimal]
    cutoff = min(proved) if proved else max(idx for idx, _ in results)
    eligible = [(idx, r) for idx, r in results if idx <= cutoff]
    _, winner = min(eligible, key=lambda ir: (ir[1].ii, ir[1].cost, ir[0]))
    return winner


# -- backends ---------------------------------------------------------------


@register_backend
class EngineBackend:
    """The heuristic placement engine (Algorithm 2) — the default."""

    name = "engine"
    proves_optimality = False

    def map(self, dfg: DFG, fabric: CGRA,
            config: EngineConfig | None = None, *,
            analysis: DFGAnalysis | None = None) -> MappingResult:
        start = time.perf_counter()
        stats = EngineStats()
        mapping = map_dfg(dfg, fabric, config, analysis=analysis,
                          stats=stats)
        return MappingResult.wrap(
            mapping, self.name, stats=stats.as_counters(),
            wall_ms=(time.perf_counter() - start) * 1000.0,
            detail={"per_ii": stats.per_ii},
        )


@register_backend
class AnnealBackend:
    """Engine placement refined by simulated annealing at fixed II."""

    name = "anneal"
    proves_optimality = False

    def __init__(self, moves: int = 800, seed: int = 0):
        self.moves = int(moves)
        self.seed = int(seed)

    def map(self, dfg: DFG, fabric: CGRA,
            config: EngineConfig | None = None, *,
            analysis: DFGAnalysis | None = None) -> MappingResult:
        start = time.perf_counter()
        engine_stats = EngineStats()
        seeded = map_dfg(dfg, fabric, config, analysis=analysis,
                         stats=engine_stats)
        refined, anneal_stats = anneal_mapping(seeded, moves=self.moves,
                                               seed=self.seed)
        counters = engine_stats.as_counters()
        counters["moves_tried"] = anneal_stats.moves_tried
        counters["moves_accepted"] = anneal_stats.moves_accepted
        return MappingResult.wrap(
            refined, self.name, stats=counters,
            wall_ms=(time.perf_counter() - start) * 1000.0,
        )


@register_backend
class ExhaustiveBackend:
    """Brute-force minimum-II search for tiny instances (ground truth)."""

    name = "exhaustive"
    proves_optimality = True

    def __init__(self, max_ii: int = 8, max_probes: int = 400_000):
        self.max_ii = int(max_ii)
        self.max_probes = int(max_probes)

    def map(self, dfg: DFG, fabric: CGRA,
            config: EngineConfig | None = None, *,
            analysis: DFGAnalysis | None = None) -> MappingResult:
        start = time.perf_counter()
        mapping, stats = map_exhaustive(dfg, fabric, max_ii=self.max_ii,
                                        max_probes=self.max_probes)
        # The search ascends from a sound lower bound, so the first
        # feasible II is minimal by construction.
        return MappingResult.wrap(
            mapping, self.name, optimal=True,
            stats={"probes": stats.probes, "backtracks": stats.backtracks},
            wall_ms=(time.perf_counter() - start) * 1000.0,
        )


@register_backend
class ExactBackend:
    """Branch-and-bound exact modulo scheduling with optimality proofs."""

    name = "exact"
    proves_optimality = True

    def __init__(self, max_probes: int = 500_000,
                 budget_s: float | None = None):
        self.max_probes = int(max_probes)
        self.budget_s = float(budget_s) if budget_s is not None else None

    def map(self, dfg: DFG, fabric: CGRA,
            config: EngineConfig | None = None, *,
            analysis: DFGAnalysis | None = None) -> MappingResult:
        start = time.perf_counter()
        stats = ExactStats()
        mapping = map_exact(dfg, fabric, config, analysis=analysis,
                            max_probes=self.max_probes,
                            budget_s=self.budget_s, stats=stats)
        return MappingResult.wrap(
            mapping, self.name, optimal=stats.proved_optimal,
            stats=stats.as_counters(),
            wall_ms=(time.perf_counter() - start) * 1000.0,
        )


#: The portfolio's default member order (also its precedence order).
DEFAULT_PORTFOLIO = ("engine", "anneal", "exact")


@register_backend
class PortfolioBackend:
    """Races registered backends, keeps the best mapping per input.

    Members run in precedence order; the run short-circuits as soon as
    a member proves optimality (later members cannot improve the II,
    and :func:`select_best` ignores them by construction). Individual
    member failures (``MappingError``) are tolerated as long as one
    member succeeds.
    """

    name = "portfolio"
    proves_optimality = True

    def __init__(self, members: tuple[str, ...] = DEFAULT_PORTFOLIO,
                 budget_s: float | None = None,
                 member_options: dict[str, dict] | None = None):
        if isinstance(members, str):
            members = tuple(m for m in members.split(",") if m)
        self.members = tuple(members)
        if not self.members:
            raise ValueError("portfolio needs at least one member")
        if self.name in self.members:
            raise ValueError("portfolio cannot be its own member")
        self.budget_s = float(budget_s) if budget_s is not None else None
        self.member_options = {
            k: dict(v) for k, v in (member_options or {}).items()
        }
        for member in self.members:
            get_backend(member)  # fail fast on unknown names

    def member_backend(self, member: str) -> MapperBackend:
        options = dict(self.member_options.get(member, {}))
        cls = get_backend(member)
        if (self.budget_s is not None
                and getattr(cls, "proves_optimality", False)
                and "budget_s" not in options
                and member != "exhaustive"):
            options["budget_s"] = self.budget_s
        return cls(**options)

    def map(self, dfg: DFG, fabric: CGRA,
            config: EngineConfig | None = None, *,
            analysis: DFGAnalysis | None = None) -> MappingResult:
        start = time.perf_counter()
        results: list[tuple[int, MappingResult]] = []
        stats: dict[str, int] = {}
        errors: list[str] = []
        for idx, member in enumerate(self.members):
            backend = self.member_backend(member)
            try:
                result = backend.map(dfg, fabric, config,
                                     analysis=analysis)
            except MappingError as exc:
                errors.append(f"{member}: {exc}")
                stats[f"{member}.failed"] = 1
                continue
            results.append((idx, result))
            stats[f"{member}.ii"] = result.ii
            stats[f"{member}.optimal"] = int(result.optimal)
            for key, value in result.stats.items():
                if isinstance(value, int):
                    stats[f"{member}.{key}"] = value
            if result.optimal:
                break  # no later member can improve the II
        if not results:
            raise MappingError(
                f"every portfolio member failed on {dfg.name!r}: "
                + "; ".join(errors)
            )
        winner = select_best(results)
        proven = [r.ii for _, r in results if r.optimal]
        optimal = bool(proven) and winner.ii == min(proven)
        stats["winner_index"] = next(
            idx for idx, r in results if r is winner
        )
        if proven:
            for idx, r in results:
                stats[f"{self.members[idx]}.gap"] = r.ii - min(proven)
        return MappingResult(
            mapping=winner.mapping, backend=self.name, ii=winner.ii,
            cost=winner.cost, optimal=optimal, stats=stats,
            wall_ms=(time.perf_counter() - start) * 1000.0,
        )
