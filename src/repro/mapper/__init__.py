"""Mappers: baseline (DVFS-oblivious) and ICED's DVFS-aware Algorithm 2.

All mappers share one placement engine
(:mod:`repro.mapper.engine`) that iteratively deepens the II, places
nodes in topological order and routes every dependence over the MRRG
with Dijkstra. The baseline runs it with labeling disabled and all
islands pinned to normal; the ICED mapper enables Algorithm 1 labels and
greedy island-level assignment; the per-tile comparison point applies a
slack-driven per-tile V/F post-pass to the baseline mapping.
"""

from repro.mapper.mapping import Mapping, Placement, Route
from repro.mapper.labeling import label_dvfs_levels
from repro.mapper.engine import EngineConfig, map_dfg
from repro.mapper.baseline import map_baseline
from repro.mapper.dvfs import map_dvfs_aware
from repro.mapper.per_tile import assign_per_tile_dvfs, gate_unused_tiles
from repro.mapper.island_refine import refine_island_levels
from repro.mapper.anneal import anneal_mapping
from repro.mapper.exhaustive import map_exhaustive
from repro.mapper.exact import ExactStats, exact_lower_bound, map_exact
from repro.mapper.backends import (
    DEFAULT_PORTFOLIO,
    EXPERIMENT_STRATEGIES,
    KNOWN_STRATEGIES,
    STRATEGY_ALIASES,
    MapperBackend,
    MappingResult,
    backend_names,
    describe_backends,
    get_backend,
    make_backend,
    mapping_cost,
    register_backend,
    resolve_strategy,
    select_best,
    strategy_choices,
)
from repro.mapper.bitstream import Bitstream, generate_bitstream
from repro.mapper.retime import retime_with_levels
from repro.mapper.timing import TimingReport, compute_timing
from repro.mapper.validation import validate_mapping

__all__ = [
    "Mapping",
    "Placement",
    "Route",
    "label_dvfs_levels",
    "EngineConfig",
    "map_dfg",
    "map_baseline",
    "map_dvfs_aware",
    "assign_per_tile_dvfs",
    "gate_unused_tiles",
    "refine_island_levels",
    "anneal_mapping",
    "map_exhaustive",
    "ExactStats",
    "exact_lower_bound",
    "map_exact",
    "DEFAULT_PORTFOLIO",
    "EXPERIMENT_STRATEGIES",
    "KNOWN_STRATEGIES",
    "STRATEGY_ALIASES",
    "MapperBackend",
    "MappingResult",
    "backend_names",
    "describe_backends",
    "get_backend",
    "make_backend",
    "mapping_cost",
    "register_backend",
    "resolve_strategy",
    "select_best",
    "strategy_choices",
    "Bitstream",
    "generate_bitstream",
    "retime_with_levels",
    "TimingReport",
    "compute_timing",
    "validate_mapping",
]
