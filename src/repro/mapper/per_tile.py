"""Per-tile DVFS + power-gating — the UE-CGRA-style comparison point.

The paper evaluates an "improved UE-CGRA with spatio-temporal support":
a conventional mapping, then each tile independently dropped to the
slowest V/F level it can sustain without stretching the II, with
untouched tiles power gated.

Slowing a tile stretches its operations and hops, so dependent issue
times must slip; each candidate level is therefore applied through the
re-timing solver (:mod:`repro.mapper.retime`) and then re-validated end
to end by the timing reconstruction. Tiles hosting RecMII-critical
nodes are never slowed (slowing them would lengthen the II —
section II-B of the paper).
"""

from __future__ import annotations

from repro.arch.dvfs import DVFSLevel
from repro.dfg.analysis import critical_cycle_nodes
from repro.errors import ValidationError
from repro.mapper.mapping import Mapping
from repro.mapper.retime import retime_with_levels
from repro.mapper.timing import compute_timing


def gate_unused_tiles(mapping: Mapping,
                      strategy: str = "baseline+gating",
                      per_island: bool = True) -> Mapping:
    """Power-gate the unused parts of the fabric (Fig 11's
    baseline + power-gating variant).

    Power gating needs header cells: this architecture places them per
    island, so the conventional-CGRA gating variant gates whole unused
    islands (``per_island=True``). Per-tile gating is the privilege of
    the per-tile DVFS design, which pays the ~30 %/tile controller for
    it.
    """
    cgra = mapping.cgra
    used = mapping.tiles_used()
    if per_island:
        gated_tiles = set()
        for island in cgra.islands:
            if not any(t in used for t in island.tile_ids):
                gated_tiles.update(island.tile_ids)
    else:
        gated_tiles = {t.id for t in cgra.tiles if t.id not in used}
    levels: dict[int, DVFSLevel] = {}
    for tile in cgra.tiles:
        if tile.id in gated_tiles:
            levels[tile.id] = cgra.dvfs.power_gated
        else:
            levels[tile.id] = mapping.tile_levels[tile.id]
    gated = mapping.with_tile_levels(levels, strategy=strategy)
    compute_timing(gated)  # gating must never break the mapping
    return gated


def assign_per_tile_dvfs(mapping: Mapping,
                         power_gating: bool = True) -> Mapping:
    """Slow every tile down as far as the mapping provably tolerates.

    Returns a re-timed copy of ``mapping`` with per-tile levels; the II
    is untouched, so steady-state performance is preserved by
    construction (every accepted level re-validates end to end).
    """
    cgra = mapping.cgra
    config = cgra.dvfs
    used = mapping.tiles_used()
    critical_tiles = {
        mapping.placements[node].tile
        for node in critical_cycle_nodes(mapping.dfg)
        if node in mapping.placements
    }

    levels: dict[int, DVFSLevel] = {}
    for tile in cgra.tiles:
        if tile.id in used:
            levels[tile.id] = config.normal
        elif power_gating:
            levels[tile.id] = config.power_gated
        else:
            levels[tile.id] = config.normal

    # Least-busy tiles first: they have the most headroom, and slowing
    # them first leaves slack for the busier ones.
    report = compute_timing(mapping)
    candidates = sorted(
        (t for t in used if t not in critical_tiles),
        key=lambda t: (report.tile_busy.get(t, 0), t),
    )
    for tile in candidates:
        for level in reversed(config.levels):  # slowest first
            if level is config.normal:
                break
            trial_levels = dict(levels)
            trial_levels[tile] = level
            trial = retime_with_levels(mapping, trial_levels)
            if trial is None:
                continue
            try:
                compute_timing(trial)
            except ValidationError:
                continue
            levels[tile] = level
            break
    result = retime_with_levels(mapping, levels, strategy="per_tile_dvfs")
    if result is None:  # accepted levels re-validated above; cannot fail
        raise ValidationError("per-tile retiming diverged unexpectedly")
    compute_timing(result)
    return result
