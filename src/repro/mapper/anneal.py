"""Simulated-annealing refinement of a finished mapping.

Constructive heuristics (the engine) commit greedily; classic CGRA
mappers (CGRA-ME's SA backend, and the cost-function heuristics the
paper cites) follow up with stochastic refinement. This module anneals
a valid mapping at *fixed II*: each move relocates one node to another
(tile, time) slot, re-routes the node's edges against a freshly rebuilt
resource pool, and accepts by the Metropolis rule on a cost that
rewards short routes and few active islands (the proxy for energy).

Determinism: the random walk is seeded; the result is bit-reproducible
and always re-validated before being returned — a failed or worsening
anneal simply returns the input mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import MappingError, ValidationError
from repro.mapper.mapping import Mapping, Placement, Route
from repro.mapper.routing import find_route, route_claims
from repro.mapper.timing import compute_timing
from repro.mrrg.mrrg import MRRG, op_claims
from repro.utils.rng import make_rng


@dataclass
class AnnealStats:
    """Instrumentation of one annealing run."""

    moves_tried: int = 0
    moves_accepted: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0


def _cost(mapping: Mapping, w_route: float = 1.0,
          w_islands: float = 8.0) -> float:
    """The annealer's objective: total transit plus active islands."""
    transit = 0.0
    for route in mapping.routes.values():
        transit += route.arrival - route.depart
    used = mapping.tiles_used()
    islands = {
        mapping.cgra.island_of(t).id for t in used
    }
    return w_route * transit + w_islands * len(islands)


class _State:
    """Mutable annealing state with full-rebuild repair."""

    def __init__(self, mapping: Mapping):
        self.mapping = mapping
        self.cgra = mapping.cgra
        self.dfg = mapping.dfg
        self.ii = mapping.ii
        self.placements = dict(mapping.placements)
        self.routes = dict(mapping.routes)
        self.edges = list(enumerate(self.dfg.edges()))

    def slowdown_of(self, tile: int) -> int:
        level = self.mapping.tile_levels[tile]
        return 1 if level.is_gated else level.slowdown

    def _duration(self, node: int, tile: int) -> int:
        opcode = self.dfg.node(node).opcode
        return (self.cgra.op_latency(tile, opcode)
                * self.slowdown_of(tile))

    def _build_pool_without(self, node: int) -> MRRG | None:
        """Claims of everything except ``node`` and its edges."""
        mrrg = MRRG(self.cgra, self.ii, self.mapping.xbar_capacity)
        try:
            for other, placement in self.placements.items():
                if other == node:
                    continue
                mrrg.claim_all(op_claims(
                    placement.tile, placement.time,
                    self._duration(other, placement.tile),
                ))
            for idx, edge in self.edges:
                if edge.src == node or edge.dst == node:
                    continue
                route = self.routes.get(idx)
                if route is None:
                    continue
                ready = (self.placements[edge.src].time
                         + self._duration(edge.src,
                                          self.placements[edge.src].tile))
                mrrg.claim_all(route_claims(
                    route.path, ready, max(route.depart, ready),
                    route.deadline, self.slowdown_of,
                ))
        except MappingError:
            return None
        return mrrg

    def try_move(self, node: int, tile: int, time: int) -> bool:
        """Relocate ``node``; True when all its edges re-route."""
        if self.mapping.tile_levels[tile].is_gated:
            return False
        if not self.cgra.tile(tile).supports(self.dfg.node(node).opcode):
            return False
        mrrg = self._build_pool_without(node)
        if mrrg is None:
            return False
        duration = self._duration(node, tile)
        try:
            mrrg.claim_all(op_claims(tile, time, duration))
        except MappingError:
            return False

        new_routes: dict[int, Route] = {}
        for idx, edge in self.edges:
            if edge.src != node and edge.dst != node:
                continue
            if idx not in self.routes:
                continue  # immediate (CONST) edge: nothing to route
            if edge.src == node and edge.dst == node:
                src_tile, dst_tile = tile, tile
                ready = time + duration
                deadline = time + edge.dist * self.ii
            elif edge.src == node:
                dst = self.placements[edge.dst]
                src_tile, dst_tile = tile, dst.tile
                ready = time + duration
                deadline = dst.time + edge.dist * self.ii
            else:
                src = self.placements[edge.src]
                src_tile, dst_tile = src.tile, tile
                ready = src.time + self._duration(edge.src, src.tile)
                deadline = time + edge.dist * self.ii
            found, _probe = find_route(mrrg, self.slowdown_of, src_tile,
                                       ready, dst_tile, deadline)
            if found is None:
                return False
            try:
                mrrg.claim_all(route_claims(
                    found.path, ready, found.depart, deadline,
                    self.slowdown_of,
                ))
            except MappingError:
                return False
            new_routes[idx] = Route(
                edge_index=idx, src_node=edge.src, dst_node=edge.dst,
                path=found.path, depart=found.depart,
                arrival=found.arrival, deadline=deadline,
            )
        self.placements[node] = Placement(node, tile, time)
        self.routes.update(new_routes)
        return True

    def snapshot(self) -> tuple[dict, dict]:
        return dict(self.placements), dict(self.routes)

    def restore(self, snap: tuple[dict, dict]) -> None:
        self.placements, self.routes = snap

    def as_mapping(self) -> Mapping:
        return replace(self.mapping, placements=dict(self.placements),
                       routes=dict(self.routes))


def anneal_mapping(mapping: Mapping, moves: int = 800,
                   seed: int = 0, t_start: float = 8.0,
                   t_end: float = 0.2) -> tuple[Mapping, AnnealStats]:
    """Refine ``mapping`` by simulated annealing at fixed II.

    Returns (refined mapping, stats); the refined mapping is fully
    re-validated, and the input is returned unchanged if annealing
    finds nothing better.
    """
    compute_timing(mapping)  # only valid mappings are refined
    rng = make_rng(seed)
    state = _State(mapping)
    stats = AnnealStats()
    current_cost = _cost(state.as_mapping())
    stats.initial_cost = current_cost
    best_cost = current_cost
    best = state.snapshot()

    nodes = sorted(state.placements)
    if not nodes:
        return mapping, stats

    for step in range(moves):
        temperature = t_start * (t_end / t_start) ** (step / max(1, moves - 1))
        node = nodes[int(rng.integers(0, len(nodes)))]
        tile = int(rng.integers(0, state.cgra.num_tiles))
        old = state.placements[node]
        time = max(0, old.time + int(rng.integers(-state.ii, state.ii + 1)))
        stats.moves_tried += 1

        snap = state.snapshot()
        if not state.try_move(node, tile, time):
            state.restore(snap)
            continue
        candidate_cost = _cost(state.as_mapping())
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            stats.moves_accepted += 1
            current_cost = candidate_cost
            if candidate_cost < best_cost:
                best_cost = candidate_cost
                best = state.snapshot()
        else:
            state.restore(snap)

    state.restore(best)
    stats.final_cost = best_cost
    refined = state.as_mapping()
    try:
        compute_timing(refined)
    except ValidationError:
        return mapping, stats  # defensive: never return a worse artifact
    if best_cost >= stats.initial_cost:
        return mapping, stats
    return refined, stats
