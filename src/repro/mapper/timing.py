"""Independent timing/resource reconstruction for a finished mapping.

``compute_timing`` rebuilds the entire modulo-resource picture of a
mapping *from scratch* — op occupancy, every route's hop timings, waits,
register pressure — using only the placement, the route paths and the
tile levels. It shares the claim vocabulary with the mapper
(:mod:`repro.mrrg.mrrg`, :mod:`repro.mapper.routing`) but none of its
search state, so it acts as an adversarial checker: if the mapper and
this module disagree, validation fails.

It is also the engine behind the per-tile DVFS post-pass
(:mod:`repro.mapper.per_tile`), which proposes slower levels and simply
asks this module whether the mapping still holds together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfg.ops import is_memory_op
from repro.errors import MappingError, ValidationError
from repro.mapper.mapping import Mapping
from repro.mapper.routing import route_arrival, route_claims
from repro.mrrg.mrrg import op_claims
from repro.mrrg.resources import ModuloResourcePool


@dataclass
class EdgeTiming:
    """Reconstructed timing of one routed edge."""

    edge_index: int
    ready: int
    depart: int
    arrival: int
    deadline: int

    @property
    def slack(self) -> int:
        """Cycles the arrival could still slip without missing the read."""
        return self.deadline - self.arrival


@dataclass
class TimingReport:
    """The reconstructed resource/timing state of a valid mapping."""

    ii: int
    pool: ModuloResourcePool
    edge_timings: dict[int, EdgeTiming]
    tile_busy: dict[int, int] = field(default_factory=dict)

    def busy_fraction(self, tile: int) -> float:
        """Distinct busy FU/crossbar slots of the tile over the II."""
        return self.tile_busy.get(tile, 0) / self.ii


def compute_timing(mapping: Mapping) -> TimingReport:
    """Rebuild and verify all resource claims; raise on any violation."""
    cgra, dfg, ii = mapping.cgra, mapping.dfg, mapping.ii
    pool = ModuloResourcePool(cgra, ii, mapping.xbar_capacity)

    def slowdown_of(tile: int) -> int:
        return mapping.slowdown(tile)

    # Operations.
    for node_id, placement in mapping.placements.items():
        node = dfg.node(node_id)
        tile = cgra.tile(placement.tile)
        level = mapping.level_of(placement.tile)
        if level.is_gated:
            raise ValidationError(
                f"node {node.label} is placed on power-gated tile {tile.id}"
            )
        if not tile.supports(node.opcode):
            raise ValidationError(
                f"tile {tile.id} cannot execute {node.opcode.name}"
            )
        if is_memory_op(node.opcode) and not tile.has_memory_access:
            raise ValidationError(
                f"memory op {node.label} on non-SPM tile {tile.id}"
            )
        if placement.time < 0:
            raise ValidationError(f"node {node.label} issues before cycle 0")
        duration = cgra.op_latency(placement.tile, node.opcode) \
            * level.slowdown
        _claim(pool, op_claims(placement.tile, placement.time, duration),
               f"FU conflict for node {node.label}")

    # Routes. Edges touching a CONST node carry an immediate operand
    # baked into the consumer's configuration word — no fabric route.
    from repro.dfg.ops import Opcode

    immediates = {
        n.id for n in dfg.nodes() if n.opcode is Opcode.CONST
    }
    edge_timings: dict[int, EdgeTiming] = {}
    edges = dfg.edges()
    for idx, edge in enumerate(edges):
        if edge.src in immediates or edge.dst in immediates:
            if idx in mapping.routes:
                raise ValidationError(
                    f"edge {idx} touches a constant but has a route"
                )
            continue
        route = mapping.routes.get(idx)
        if route is None:
            raise ValidationError(f"edge {edge} (index {idx}) is not routed")
        src = mapping.placements[edge.src]
        dst = mapping.placements[edge.dst]
        if route.path[0] != src.tile or route.path[-1] != dst.tile:
            raise ValidationError(
                f"route {idx} endpoints {route.path[0]}->{route.path[-1]} "
                f"do not match placements {src.tile}->{dst.tile}"
            )
        for a, b in zip(route.path, route.path[1:]):
            if b not in cgra.neighbors(a):
                raise ValidationError(
                    f"route {idx} hops {a}->{b}, which are not neighbours"
                )
            if mapping.level_of(b).is_gated or mapping.level_of(a).is_gated:
                raise ValidationError(
                    f"route {idx} passes through a power-gated tile"
                )
        src_latency = cgra.op_latency(src.tile, dfg.node(edge.src).opcode)
        ready = src.time + src_latency * mapping.slowdown(src.tile)
        deadline = dst.time + edge.dist * ii
        # Level changes after mapping (the per-tile post-pass) can push
        # the ready time past the recorded departure; departing at the
        # ready time instead is legal as long as the fresh claims below
        # still fit.
        depart = max(route.depart, ready)
        arrival = route_arrival(route.path, depart, slowdown_of)
        if arrival > deadline:
            raise ValidationError(
                f"route {idx} ({dfg.node(edge.src).label}->"
                f"{dfg.node(edge.dst).label}) arrives at {arrival}, after "
                f"its deadline {deadline}"
            )
        _claim(pool,
               route_claims(route.path, ready, depart, deadline, slowdown_of),
               f"routing resource conflict on edge {idx}")
        edge_timings[idx] = EdgeTiming(idx, ready, depart, arrival, deadline)

    tile_busy = {
        tile.id: pool.tile_busy_slots(tile.id) for tile in cgra.tiles
    }
    return TimingReport(ii=ii, pool=pool, edge_timings=edge_timings,
                        tile_busy=tile_busy)


def _claim(pool: ModuloResourcePool, claims, context: str) -> None:
    try:
        for key, start, length in claims:
            pool.claim(key, start, length)
    except MappingError as exc:
        raise ValidationError(f"{context}: {exc}") from exc
