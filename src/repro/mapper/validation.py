"""Structural validation of mappings.

``validate_mapping`` is what tests and experiments call after every
mapper run: structural invariants first (everything placed, levels
consistent with islands, II within the configuration memory depth),
then the full timing/resource reconstruction of
:mod:`repro.mapper.timing`.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.mapper.mapping import Mapping
from repro.mapper.timing import TimingReport, compute_timing


def validate_mapping(mapping: Mapping, check_islands: bool = True) -> TimingReport:
    """Check every invariant of ``mapping``; returns the timing report."""
    dfg, cgra = mapping.dfg, mapping.cgra

    if mapping.ii < 1:
        raise ValidationError("II must be >= 1")
    config_depth = min(t.config_depth for t in cgra.tiles)
    if mapping.ii > config_depth:
        raise ValidationError(
            f"II {mapping.ii} exceeds the tiles' configuration depth "
            f"({config_depth} words)"
        )

    from repro.dfg.ops import Opcode

    mappable = {
        n.id for n in dfg.nodes() if n.opcode is not Opcode.CONST
    }
    missing = mappable - set(mapping.placements)
    if missing:
        raise ValidationError(f"nodes not placed: {sorted(missing)}")
    extra = set(mapping.placements) - mappable
    if extra:
        raise ValidationError(
            f"placements for unknown or immediate nodes: {sorted(extra)}"
        )

    if set(mapping.tile_levels) != {t.id for t in cgra.tiles}:
        raise ValidationError("tile_levels must cover every tile exactly")

    if check_islands and mapping.island_levels:
        for island in cgra.islands:
            expected = mapping.island_levels.get(island.id)
            if expected is None:
                raise ValidationError(f"island {island.id} has no level")
            for tile in island.tile_ids:
                if mapping.tile_levels[tile] is not expected:
                    raise ValidationError(
                        f"tile {tile} level {mapping.tile_levels[tile].name} "
                        f"differs from its island's {expected.name}"
                    )

    return compute_timing(mapping)
