"""Routing over the time-extended MRRG.

A route departs the producer tile after an optional register wait,
traverses mesh hops back-to-back (each hop paced by the receiving
tile's clock: a hop into a tile with slowdown ``s`` takes ``s`` base
cycles and holds that tile's crossbar and the link for ``s`` cycles),
and finally waits in the consumer tile's registers until the consumer
issues. The search state is (tile, time); cost is arrival time, so the
first accepted goal pop is the earliest feasible arrival.

Two accelerations sit on top of the plain Dijkstra, both chosen so the
returned routes (and the earliest-arrival probe) are **bit-identical**
to the unaccelerated search:

* **Distance-oracle pruning.** The fabric's all-pairs hop-distance
  table (BFS per tile, computed once per :class:`CGRA`) gives the
  admissible, consistent lower bound ``h(tile) = dist(tile, dst) *
  min(slowdown)``. A state with ``t + h(tile) > horizon`` can never
  reach the destination within the horizon, and — because ``h`` is
  consistent — neither can any of its descendants, so dropping it
  cannot change the parent, path or probe of any surviving state. The
  pop order itself stays plain Dijkstra ``(t, tile, depart)``; the
  heuristic only filters pushes and rejects hopeless queries in O(1)
  before any frontier exists. When a :class:`RouteMemo` is supplied the
  bound is sharpened to the *slowdown-weighted* shortest transit time
  to the destination (one small Dijkstra per (slowdown vector, dst),
  cached in the memo): still an exact lower bound — it ignores only
  congestion and waits — and still consistent by the shortest-path
  triangle inequality, so the same argument applies while pruning far
  harder around slowed DVFS islands.

* **Route memoization.** Candidate scoring, commit re-routing and
  reschedule retries repeat the same (src, dst, timing) query against
  the same congestion state over and over. The search outcome is a
  function of (II, endpoints, ready mod II, the deadline/horizon/wait
  deltas, the slowdown vector, and the routing-visible occupancy), so
  :class:`RouteMemo` caches results under exactly that key, using the
  pool's Zobrist :attr:`~repro.mrrg.resources.ModuloResourcePool.epoch`
  as the occupancy component. Values are stored relative to ``ready``
  (the search is shift-invariant under ``ready -> ready + k*II`` with
  fixed deltas), so probes of later iterations hit too.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass

from repro.mrrg.mrrg import MRRG, Claim, hop_claims, wait_claims
from repro.mrrg.resources import MAX_CLAIM_LENGTH


@dataclass(frozen=True)
class RouteResult:
    """A feasible route found by the router."""

    path: tuple[int, ...]
    depart: int
    arrival: int


SlowdownFn = Callable[[int], int]


class RouteMemo:
    """A per-``map_dfg`` cache of router outcomes.

    Shared across every (II, soften, reschedule) attempt of one mapping
    run: the key pins down everything the search depends on, including
    the pool's congestion epoch, so entries from one attempt are served
    to another only when the routing-visible occupancy really is the
    same (rollbacks restore the epoch exactly).
    """

    #: Safety valve: drop everything rather than grow without bound.
    MAX_ENTRIES = 200_000

    __slots__ = ("table", "hits", "misses", "hcols", "hcol_builds",
                 "hcol_reuses")

    def __init__(self) -> None:
        self.table: dict[tuple, tuple] = {}
        self.hits = 0
        self.misses = 0
        #: (dst_tile, slow) -> weighted-distance heuristic column.
        self.hcols: dict[tuple, list[int]] = {}
        #: Oracle columns built by Dijkstra vs served from the
        #: process-level topology-keyed cache (cross-point reuse).
        self.hcol_builds = 0
        self.hcol_reuses = 0


def find_route(mrrg: MRRG, slowdown_of: SlowdownFn, src_tile: int,
               ready: int, dst_tile: int, deadline: int,
               max_wait: int | None = None,
               horizon: int | None = None,
               memo: RouteMemo | None = None,
               slow: tuple[int, ...] | None = None,
               ) -> tuple[RouteResult | None, int | None]:
    """Find the earliest-arrival route from ``src_tile`` to ``dst_tile``.

    ``ready`` is when the producer's value exists; ``deadline`` is the
    absolute time the consumer reads it. Waiting is allowed only at the
    endpoints (source registers before departing, destination registers
    after arriving).

    The search explores up to ``horizon`` (default: the deadline) even
    though only arrivals within the deadline are acceptable; the second
    element of the returned pair is the earliest arrival time observed
    at the destination, which lets the placement engine jump its issue
    time forward by exactly the shortfall instead of probing cycle by
    cycle. Returns ``(None, None)`` when the destination is unreachable
    within the horizon.

    A failed same-tile route still reports a probe: ``ready`` when the
    consumer reads before the value exists (issue late enough and the
    wait becomes trivially feasible), otherwise the latest deadline the
    source registers could actually hold the value for.

    ``slow`` optionally supplies the per-tile slowdown vector (saves
    re-evaluating ``slowdown_of`` per query); ``memo`` enables result
    caching across repeated queries.
    """
    if horizon is None:
        horizon = deadline
    horizon = max(horizon, deadline)
    pool = mrrg.pool

    if src_tile == dst_tile:
        return _same_tile_route(pool, src_tile, ready, deadline)

    if deadline < ready:
        return None, None

    ii = mrrg.ii
    num_tiles = mrrg.cgra.num_tiles
    if slow is None:
        slow = tuple(slowdown_of(t) for t in range(num_tiles))

    # Oracle early reject: even a congestion-free best-case transit
    # misses the horizon, so the full search would return (None, None).
    if memo is None:
        hcol = None
        if ready + mrrg.cgra._distance[src_tile][dst_tile] * min(slow) \
                > horizon:
            return None, None
    else:
        hcol = _weighted_hcol(memo, mrrg.cgra, slow, dst_tile)
        if ready + hcol[src_tile] > horizon:
            return None, None

    max_wait = deadline - ready if max_wait is None else min(
        max_wait, deadline - ready
    )
    max_wait = min(max_wait, 2 * ii)

    if memo is not None:
        key = (ii, src_tile, dst_tile, ready % ii, deadline - ready,
               horizon - ready, max_wait, slow, pool.epoch)
        hit = memo.table.get(key)
        if hit is not None:
            memo.hits += 1
            path, depart_rel, arrival_rel, probe_rel = hit
            probe = None if probe_rel is None else ready + probe_rel
            if path is None:
                return None, probe
            return RouteResult(path, ready + depart_rel,
                               ready + arrival_rel), probe
        memo.misses += 1

    if hcol is None:
        min_slow = min(slow)
        hcol = [row[dst_tile] * min_slow for row in mrrg.cgra._distance]

    # Deadline-tight pass first: a returned route always has arrival <=
    # deadline, and every ancestor of a returned goal state has f <=
    # arrival, so pruning at the deadline cannot change a successful
    # search's outcome — nor the probe, when some arrival <= deadline
    # exists. Only the no-arrival-by-deadline case needs the wide rerun
    # (the probe in (deadline, horizon] is what the engine jumps on).
    result, probe = _search(pool, slow, hcol, src_tile, ready,
                            dst_tile, deadline, deadline, max_wait)
    if result is None and probe is None and horizon > deadline:
        result, probe = _search(pool, slow, hcol, src_tile, ready,
                                dst_tile, deadline, horizon, max_wait)

    if memo is not None:
        if len(memo.table) >= RouteMemo.MAX_ENTRIES:
            memo.table.clear()
        if result is None:
            memo.table[key] = (
                None, 0, 0, None if probe is None else probe - ready
            )
        else:
            memo.table[key] = (result.path, result.depart - ready,
                               result.arrival - ready, probe - ready)
    return result, probe


def _same_tile_route(pool, tile: int, ready: int, deadline: int,
                     ) -> tuple[RouteResult | None, int | None]:
    """Source and destination coincide: the route is a register wait."""
    ii = pool.ii
    rid = 2 * pool.num_tiles + tile
    if deadline < ready:
        # The consumer reads before the value exists. The earliest
        # deadline that could work is ``ready`` — report it so the
        # engine can jump its issue time by the shortfall instead of
        # crawling cycle by cycle.
        return None, ready
    if pool.interval_free(rid, ready, deadline - ready):
        return RouteResult((tile,), ready, ready), ready
    # Blocked: walk the wait forward to the last deadline the registers
    # can actually hold the value for (feasibility is monotone in the
    # wait length, so everything past the first conflict is infeasible).
    use = pool._use
    cap = pool._caps[rid]
    base = rid * ii
    held = [0] * ii
    feasible_until = ready
    for t in range(ready, min(deadline, ready + MAX_CLAIM_LENGTH)):
        slot = t % ii
        held[slot] += 1
        if use[base + slot] + held[slot] > cap:
            break
        feasible_until = t + 1
    return None, feasible_until


#: Weighted-oracle value for tiles that cannot reach the destination.
_UNREACHABLE = 1 << 60


def _pred_rows(cgra) -> tuple[tuple[int, ...], ...]:
    """Per-tile predecessor lists (cached on the CGRA): ``u`` is a
    predecessor of ``v`` iff the fabric has a link ``u -> v``. Mesh
    topologies are symmetric, but the reverse adjacency is built
    explicitly so the oracle stays correct on any link graph."""
    rows = getattr(cgra, "_pred_neighbors", None)
    if rows is None:
        lists: list[list[int]] = [[] for _ in range(cgra.num_tiles)]
        for u, nbrs in cgra._neighbors.items():
            for v in nbrs:
                lists[v].append(u)
        rows = tuple(tuple(r) for r in lists)
        cgra._pred_neighbors = rows
    return rows


#: Process-level oracle-column cache shared across ``map_dfg`` calls.
#: Keyed by the *topology fingerprint* — everything the column depends
#: on: the link graph is fully determined by (rows, cols, topology), and
#: the column itself additionally by (dst_tile, slow). Two sweep points
#: whose fabrics share a topology therefore reuse each other's routing
#: lower bounds, no matter how their islands or V/F tables differ.
#: Reuse cannot change any mapping: the column is a pure function of
#: the key, so a cached value is byte-identical to a rebuilt one.
_HCOL_CACHE: dict[tuple, list[int]] = {}

#: Safety valve for long-lived processes sweeping many fabrics.
_HCOL_CACHE_MAX = 100_000


def topology_fingerprint(cgra) -> tuple:
    """The part of a fabric's identity that the routing oracle sees.

    Islands, V/F tables, SPM geometry, ALU-only restrictions and op
    latencies are all invisible to :func:`_weighted_hcol`; only the
    link graph matters, and ``CGRA.build`` derives it entirely from
    these three values.
    """
    return (cgra.rows, cgra.cols, cgra.topology)


def clear_oracle_cache() -> None:
    """Drop all process-level oracle columns (tests / memory pressure)."""
    _HCOL_CACHE.clear()


def _weighted_hcol(memo: RouteMemo, cgra, slow: tuple[int, ...],
                   dst_tile: int) -> list[int]:
    """``h[tile]`` = cheapest congestion-free transit time from ``tile``
    to ``dst_tile`` under ``slow`` (a hop into tile ``v`` costs
    ``slow[v]``). Computed by one Dijkstra from the destination over the
    reversed link graph; cached in the memo per (dst, slow) and in the
    process-level ``_HCOL_CACHE`` per (topology, dst, slow) so sweeps
    over fabric variants sharing a topology build each column once."""
    key = (dst_tile, slow)
    col = memo.hcols.get(key)
    if col is not None:
        return col
    global_key = (topology_fingerprint(cgra), dst_tile, slow)
    col = _HCOL_CACHE.get(global_key)
    if col is not None:
        memo.hcols[key] = col
        memo.hcol_reuses += 1
        return col
    preds = _pred_rows(cgra)
    col = [_UNREACHABLE] * cgra.num_tiles
    col[dst_tile] = 0
    heap = [(0, dst_tile)]
    heappush, heappop = heapq.heappush, heapq.heappop
    while heap:
        d, x = heappop(heap)
        if d > col[x]:
            continue
        nd = d + slow[x]
        for y in preds[x]:
            if nd < col[y]:
                col[y] = nd
                heappush(heap, (nd, y))
    memo.hcols[key] = col
    memo.hcol_builds += 1
    if len(_HCOL_CACHE) < _HCOL_CACHE_MAX:
        _HCOL_CACHE[global_key] = col
    return col


def _search(pool, slow, hcol, src_tile: int, ready: int,
            dst_tile: int, deadline: int, horizon: int, max_wait: int,
            ) -> tuple[RouteResult | None, int | None]:
    """The pruned Dijkstra itself (see the module docstring for why the
    pruning cannot change the result).

    States are packed into single ints so the heap compares machine
    words instead of tuples: a heap entry is ``t << 40 | tile << 24 |
    depart`` (numeric order == the reference (t, tile, depart) order),
    and a parent-map key is ``t << 16 | tile``. A state is pushed at
    most once (the parent map doubles as the visited set), so pops are
    unique by construction.
    """
    ii = pool.ii
    num_tiles = pool.num_tiles
    use = pool._use
    caps = pool._caps
    adj = pool.adj
    xbar_cap = pool.xbar_capacity
    heappush, heappop = heapq.heappush, heapq.heappop

    # Seed states: depart after waiting w cycles in the source registers.
    # Feasibility of the wait interval is monotone in w, so stop at the
    # first blocked prefix (and at the first unreachable-by-horizon
    # departure: later departures are unreachable too).
    heap: list[int] = []
    parents: dict[int, int] = {}  # packed state -> packed state | -1
    src_reg_base = (2 * num_tiles + src_tile) * ii
    src_reg_cap = caps[2 * num_tiles + src_tile]
    h_src = hcol[src_tile]
    for wait in range(max_wait + 1):
        if wait and use[src_reg_base + (ready + wait - 1) % ii] >= src_reg_cap:
            break
        t = ready + wait
        if t + h_src > horizon:
            break
        parents[(t << 16) | src_tile] = -1
        heappush(heap, (t << 40) | (src_tile << 24) | t)

    dst_reg_rid = 2 * num_tiles + dst_tile
    # Per-tile latest admissible arrival (arrive > limit[tile] can never
    # reach the destination by the horizon). _UNREACHABLE makes the
    # limit hugely negative, which rejects every arrival as intended.
    limit = [horizon - h for h in hcol]
    earliest_arrival: int | None = None

    if max(slow) == 1:
        # Uniform fabric (no active slowdowns): every hop takes one
        # cycle, so the per-neighbor latency lookup and the multi-cycle
        # occupancy walk vanish. Same pop order, same results.
        while heap:
            entry = heappop(heap)
            t = entry >> 40
            tile = (entry >> 24) & 0xFFFF

            if tile == dst_tile:
                if earliest_arrival is None:
                    earliest_arrival = t
                if t <= deadline and (
                    t == deadline
                    or pool.interval_free(dst_reg_rid, t, deadline - t)
                ):
                    path = _reconstruct(parents, (t << 16) | tile)
                    return RouteResult(path, entry & 0xFFFFFF, t), t
                continue  # a later arrival may find free registers

            state = (t << 16) | tile
            depart = entry & 0xFFFFFF
            tslot = t % ii
            arrive = t + 1
            nbase = arrive << 16
            hbase = (arrive << 40) | depart
            for link_base, neighbor, xbar_base in adj[tile]:
                if arrive > limit[neighbor]:
                    continue
                nstate = nbase | neighbor
                if nstate in parents:
                    continue
                if use[link_base + tslot] or \
                        use[xbar_base + tslot] >= xbar_cap:
                    continue
                parents[nstate] = state
                heappush(heap, hbase | (neighbor << 24))
        return None, earliest_arrival

    while heap:
        entry = heappop(heap)
        t = entry >> 40
        tile = (entry >> 24) & 0xFFFF

        if tile == dst_tile:
            if earliest_arrival is None:
                earliest_arrival = t
            if t <= deadline and (
                t == deadline
                or pool.interval_free(dst_reg_rid, t, deadline - t)
            ):
                path = _reconstruct(parents, (t << 16) | tile)
                return RouteResult(path, entry & 0xFFFFFF, t), t
            continue  # a later arrival may find free registers

        state = (t << 16) | tile
        depart = entry & 0xFFFFFF
        tslot = t % ii
        for link_base, neighbor, xbar_base in adj[tile]:
            s = slow[neighbor]
            arrive = t + s
            if arrive > limit[neighbor]:
                continue
            nstate = (arrive << 16) | neighbor
            if nstate in parents:
                continue
            if s == 1:
                if use[link_base + tslot] or \
                        use[xbar_base + tslot] >= xbar_cap:
                    continue
            else:
                blocked = False
                for step in range(t, arrive):
                    slot = step % ii
                    if use[link_base + slot] or \
                            use[xbar_base + slot] >= xbar_cap:
                        blocked = True
                        break
                if blocked:
                    continue
            parents[nstate] = state
            heappush(heap, (arrive << 40) | (neighbor << 24) | depart)
    return None, earliest_arrival


def _reconstruct(parents: dict[int, int], state: int) -> tuple[int, ...]:
    path = []
    while state != -1:
        path.append(state & 0xFFFF)
        state = parents[state]
    path.reverse()
    # Waiting at the source repeats its tile id only via depart handling,
    # never via duplicate path entries.
    return tuple(path)


def route_claims(path: tuple[int, ...], ready: int, depart: int,
                 deadline: int, slowdown_of: SlowdownFn) -> list[Claim]:
    """The canonical resource claims of a route (shared with the
    timing validator, so the mapper and the checker cannot disagree)."""
    claims: list[Claim] = []
    if len(path) == 1:
        claims.extend(wait_claims(path[0], ready, deadline))
        return claims
    claims.extend(wait_claims(path[0], ready, depart))
    t = depart
    for src, dst in zip(path, path[1:]):
        s = slowdown_of(dst)
        claims.extend(hop_claims(src, dst, t, s))
        t += s
    claims.extend(wait_claims(path[-1], t, deadline))
    return claims


def route_arrival(path: tuple[int, ...], depart: int,
                  slowdown_of: SlowdownFn) -> int:
    """Arrival time implied by a path and its departure time."""
    t = depart
    for dst in path[1:]:
        t += slowdown_of(dst)
    return t
