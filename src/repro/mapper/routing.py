"""Dijkstra routing over the time-extended MRRG.

A route departs the producer tile after an optional register wait,
traverses mesh hops back-to-back (each hop paced by the receiving
tile's clock: a hop into a tile with slowdown ``s`` takes ``s`` base
cycles and holds that tile's crossbar and the link for ``s`` cycles),
and finally waits in the consumer tile's registers until the consumer
issues. The search state is (tile, time); cost is arrival time, so the
first accepted goal pop is the earliest feasible arrival.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass

from repro.mrrg.mrrg import MRRG, Claim, hop_claims, wait_claims
from repro.mrrg.resources import link_key, reg_key, xbar_key


@dataclass(frozen=True)
class RouteResult:
    """A feasible route found by the router."""

    path: tuple[int, ...]
    depart: int
    arrival: int


SlowdownFn = Callable[[int], int]


def find_route(mrrg: MRRG, slowdown_of: SlowdownFn, src_tile: int,
               ready: int, dst_tile: int, deadline: int,
               max_wait: int | None = None,
               horizon: int | None = None,
               ) -> tuple[RouteResult | None, int | None]:
    """Find the earliest-arrival route from ``src_tile`` to ``dst_tile``.

    ``ready`` is when the producer's value exists; ``deadline`` is the
    absolute time the consumer reads it. Waiting is allowed only at the
    endpoints (source registers before departing, destination registers
    after arriving).

    The search explores up to ``horizon`` (default: the deadline) even
    though only arrivals within the deadline are acceptable; the second
    element of the returned pair is the earliest arrival time observed
    at the destination, which lets the placement engine jump its issue
    time forward by exactly the shortfall instead of probing cycle by
    cycle. Returns ``(None, None)`` when the destination is unreachable
    within the horizon.
    """
    if horizon is None:
        horizon = deadline
    horizon = max(horizon, deadline)
    if deadline < ready:
        return None, None
    pool = mrrg.pool

    if src_tile == dst_tile:
        if mrrg.is_free(wait_claims(src_tile, ready, deadline)):
            return RouteResult((src_tile,), ready, ready), ready
        return None, ready

    max_wait = deadline - ready if max_wait is None else min(
        max_wait, deadline - ready
    )
    max_wait = min(max_wait, 2 * mrrg.ii)

    ii = mrrg.ii
    usage = pool._usage  # hot path: read-only direct access
    num_tiles = mrrg.cgra.num_tiles
    slow = [slowdown_of(t) for t in range(num_tiles)]
    neighbors = mrrg.cgra._neighbors
    xbar_cap = pool.xbar_capacity
    usage_get = usage.get

    # Seed states: depart after waiting w cycles in the source registers.
    # Feasibility of the wait interval is monotone in w, so stop at the
    # first blocked prefix.
    heap: list[tuple[int, int, int]] = []  # (time, tile, depart)
    parents: dict[tuple[int, int], tuple[int, int] | None] = {}
    reg_src = reg_key(src_tile)
    reg_cap = pool.capacity(reg_src)
    for wait in range(max_wait + 1):
        if wait and usage_get((reg_src, (ready + wait - 1) % ii), 0) >= reg_cap:
            break
        t = ready + wait
        state = (src_tile, t)
        if state not in parents:
            parents[state] = None
            heapq.heappush(heap, (t, src_tile, t))

    earliest_arrival: int | None = None
    settled: set[tuple[int, int]] = set()
    while heap:
        t, tile, depart = heapq.heappop(heap)
        state = (tile, t)
        if state in settled:
            continue
        settled.add(state)

        if tile == dst_tile:
            if earliest_arrival is None:
                earliest_arrival = t
            if t <= deadline and mrrg.is_free(
                wait_claims(dst_tile, t, deadline)
            ):
                return RouteResult(_reconstruct(parents, state), depart, t), t
            continue  # a later arrival may find free registers

        for neighbor in neighbors[tile]:
            s = slow[neighbor]
            arrive = t + s
            if arrive > horizon:
                continue
            nxt = (neighbor, arrive)
            if nxt in settled or nxt in parents:
                continue
            lkey = ("link", tile, neighbor)
            xkey = ("xbar", neighbor)
            blocked = False
            for step in range(t, arrive):
                slot = step % ii
                if usage_get((lkey, slot), 0) >= 1:
                    blocked = True
                    break
                if usage_get((xkey, slot), 0) >= xbar_cap:
                    blocked = True
                    break
            if blocked:
                continue
            parents[nxt] = state
            heapq.heappush(heap, (arrive, neighbor, depart))
    return None, earliest_arrival


def _reconstruct(parents: dict, state: tuple[int, int]) -> tuple[int, ...]:
    path = []
    current: tuple[int, int] | None = state
    while current is not None:
        path.append(current[0])
        current = parents[current]
    path.reverse()
    # Waiting at the source repeats its tile id only via depart handling,
    # never via duplicate path entries.
    return tuple(path)


def route_claims(path: tuple[int, ...], ready: int, depart: int,
                 deadline: int, slowdown_of: SlowdownFn) -> list[Claim]:
    """The canonical resource claims of a route (shared with the
    timing validator, so the mapper and the checker cannot disagree)."""
    claims: list[Claim] = []
    if len(path) == 1:
        claims.extend(wait_claims(path[0], ready, deadline))
        return claims
    claims.extend(wait_claims(path[0], ready, depart))
    t = depart
    for src, dst in zip(path, path[1:]):
        s = slowdown_of(dst)
        claims.extend(hop_claims(src, dst, t, s))
        t += s
    claims.extend(wait_claims(path[-1], t, deadline))
    return claims


def route_arrival(path: tuple[int, ...], depart: int,
                  slowdown_of: SlowdownFn) -> int:
    """Arrival time implied by a path and its departure time."""
    t = depart
    for dst in path[1:]:
        t += slowdown_of(dst)
    return t
