"""Exact branch-and-bound modulo scheduling (the ``exact`` backend).

The paper benchmarks its heuristic against ILP mappers; this module is
the reproduction's stand-in for that role on realistically sized
kernels. Where :mod:`repro.mapper.exhaustive` brute-forces tiny
instances, this is a proper branch-and-bound over the same flat MRRG
claim pool:

* **sound lower bound** — ``exact_lower_bound`` combines RecMII with
  resource bounds (FU slot capacity, memory-port capacity, the longest
  single-op occupancy), all of which any feasible mapping must satisfy;
* **warm start** — the heuristic engine supplies an incumbent, whose II
  is a valid upper bound because engine placements obey the exact same
  feasibility rules (claims, windows, router);
* **ascending-II search** — IIs between the bound and the incumbent are
  exhausted depth-first in order; the first feasible II is therefore
  *provably* minimal, and exhausting the whole gap proves the incumbent
  itself optimal.

Optimality here means minimum II under the repository's shared
feasibility model (modulo claim pool, issue-time windows, Dijkstra
router) — the same sense in which the exhaustive mapper is ground
truth. The search is deterministic: the primary budget is a probe
count, not wall-clock; an optional ``budget_s`` adds a hard wall-clock
cut at the price of run-to-run reproducibility of *timeouts* (never of
results that complete).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

from repro.arch.cgra import CGRA
from repro.dfg.analysis import DFGAnalysis, analyze_dfg
from repro.dfg.graph import DFG
from repro.dfg.ops import Opcode
from repro.errors import MappingError
from repro.mapper.engine import (
    EngineConfig,
    EngineStats,
    _Attempt,
    _BREAK,
    _allowed_tiles,
    _schedule_order,
    map_dfg,
)
from repro.mapper.mapping import Mapping, Placement
from repro.mrrg.mrrg import op_claims

#: Refuse instances bigger than this: even branch-and-bound is
#: exponential in the worst case, and the paper's Table I kernels the
#: exact backend targets all fit comfortably below it.
MAX_NODES = 40


@dataclass
class ExactStats:
    """Instrumentation of one exact run."""

    probes: int = 0
    backtracks: int = 0
    iis_exhausted: int = 0
    lower_bound: int = 0
    incumbent_ii: int = 0
    final_ii: int = 0
    warm_start_hit: int = 0
    proved_optimal: bool = False
    budget_exhausted: bool = False

    def as_counters(self) -> dict[str, int]:
        return {
            "probes": self.probes,
            "backtracks": self.backtracks,
            "iis_exhausted": self.iis_exhausted,
            "lower_bound": self.lower_bound,
            "incumbent_ii": self.incumbent_ii,
            "final_ii": self.final_ii,
            "warm_start_hit": self.warm_start_hit,
            "proved_optimal": int(self.proved_optimal),
            "budget_exhausted": int(self.budget_exhausted),
        }


class _BudgetExhausted(Exception):
    """Internal: probe or wall-clock budget ran out mid-search."""


class _Budget:
    """Deterministic probe budget with an optional wall-clock cut."""

    def __init__(self, max_probes: int, budget_s: float | None,
                 stats: ExactStats):
        self.max_probes = max_probes
        self.deadline = (
            time.monotonic() + budget_s if budget_s else None
        )
        self.stats = stats

    def spend(self) -> None:
        self.stats.probes += 1
        if self.stats.probes > self.max_probes:
            raise _BudgetExhausted(f"probe budget {self.max_probes}")
        if (self.deadline is not None
                and self.stats.probes % 256 == 0
                and time.monotonic() > self.deadline):
            raise _BudgetExhausted("wall-clock budget")


def _min_duration(dfg: DFG, cgra: CGRA, tiles: list[int],
                  node: int) -> int:
    """Fewest FU slots ``node`` can occupy on any allowed tile."""
    opcode = dfg.node(node).opcode
    durations = [
        cgra.op_latency(t, opcode) for t in tiles
        if cgra.tile(t).supports(opcode)
    ]
    if not durations:
        raise MappingError(
            f"no allowed tile supports {opcode.name} (node {node})"
        )
    return min(durations)


def exact_lower_bound(dfg: DFG, cgra: CGRA,
                      tiles: list[int] | None = None,
                      analysis: DFGAnalysis | None = None) -> int:
    """A sound lower bound on the minimum feasible II.

    Any feasible modulo schedule must satisfy every term, so their max
    is a valid bound:

    * RecMII — recurrence circuits limit the II from below;
    * FU capacity — each mappable op occupies at least its fastest
      tile's latency in FU slots, and the fabric offers
      ``len(tiles) * II`` slots per iteration;
    * memory ports — LOAD/STORE ops compete for the SPM-connected
      subset of tiles only;
    * occupancy — one op's claim cannot exceed II slots on a
      capacity-1 FU, so II is at least the largest minimum duration.
    """
    if analysis is None:
        analysis = analyze_dfg(dfg)
    if tiles is None:
        tiles = [t.id for t in cgra.tiles]
    mappable = [
        n.id for n in dfg.nodes() if n.opcode is not Opcode.CONST
    ]
    if not mappable:
        return 1
    durations = {
        n: _min_duration(dfg, cgra, tiles, n) for n in mappable
    }
    bound = max(analysis.rec_mii, max(durations.values()))
    bound = max(bound, math.ceil(sum(durations.values()) / len(tiles)))
    mem_nodes = [n for n in dfg.memory_nodes() if n in durations]
    if mem_nodes:
        mem_tiles = [
            t for t in tiles if cgra.tile(t).has_memory_access
        ]
        if not mem_tiles:
            raise MappingError(
                f"{dfg.name!r} has LOAD/STORE nodes but no allowed "
                "tile is SPM-connected"
            )
        bound = max(bound, math.ceil(
            sum(durations[n] for n in mem_nodes) / len(mem_tiles)
        ))
    return bound


def map_exact(dfg: DFG, cgra: CGRA, config: EngineConfig | None = None,
              *, analysis: DFGAnalysis | None = None,
              max_probes: int = 500_000, budget_s: float | None = None,
              stats: ExactStats | None = None) -> Mapping:
    """Minimum-II mapping with a proof of optimality when possible.

    Returns the best mapping found; ``stats.proved_optimal`` records
    whether every smaller II was exhausted (or the incumbent already
    sat on the lower bound). Raises :class:`MappingError` when the
    instance exceeds the size cap or no mapping exists within budget.
    """
    dfg.validate()
    config = config or EngineConfig.for_strategy("exact")
    if config.dvfs_aware:
        config = replace(config, dvfs_aware=False)
    stats = stats if stats is not None else ExactStats()
    if analysis is None:
        analysis = analyze_dfg(dfg)
    tiles = _allowed_tiles(cgra, config)

    mappable = [
        n.id for n in dfg.nodes() if n.opcode is not Opcode.CONST
    ]
    if len(mappable) > MAX_NODES:
        raise MappingError(
            f"{dfg.name!r} has {len(mappable)} mappable nodes; the "
            f"exact mapper caps at {MAX_NODES}"
        )

    lb = exact_lower_bound(dfg, cgra, tiles, analysis)
    stats.lower_bound = lb

    # Warm start: the heuristic engine plays the incumbent. Its II is a
    # sound upper bound because it obeys identical feasibility rules.
    incumbent: Mapping | None = None
    try:
        incumbent = map_dfg(dfg, cgra, config, analysis=analysis,
                            stats=EngineStats())
    except MappingError:
        pass
    if incumbent is not None:
        stats.incumbent_ii = incumbent.ii
        if incumbent.ii <= lb:
            # Heuristic already sits on the bound: optimal, no search.
            stats.warm_start_hit = 1
            stats.proved_optimal = True
            stats.final_ii = incumbent.ii
            return incumbent

    ub = incumbent.ii if incumbent is not None else config.max_ii + 1
    order = _schedule_order(dfg, analysis)
    budget = _Budget(max_probes, budget_s, stats)
    try:
        for ii in range(lb, ub):
            found = _attempt_ii(dfg, cgra, config, ii, tiles, order,
                                stats, budget)
            if found is not None:
                # Every II below was exhausted infeasible: minimal.
                stats.proved_optimal = True
                stats.final_ii = found.ii
                return found
            stats.iis_exhausted += 1
    except _BudgetExhausted:
        stats.budget_exhausted = True
        if incumbent is not None:
            stats.final_ii = incumbent.ii
            return incumbent
        raise MappingError(
            f"exact search of {dfg.name!r} ran out of budget "
            f"({stats.probes} probes) with no incumbent"
        ) from None

    if incumbent is None:
        raise MappingError(
            f"no mapping of {dfg.name!r} onto {cgra.name} within "
            f"II <= {config.max_ii} ({stats.probes} probes)"
        )
    # The whole gap [lb, incumbent.ii) is infeasible: the incumbent is
    # provably minimal.
    stats.proved_optimal = True
    stats.final_ii = incumbent.ii
    return incumbent


def _attempt_ii(dfg: DFG, cgra: CGRA, config: EngineConfig, ii: int,
                tiles: list[int], order: list[int], stats: ExactStats,
                budget: _Budget) -> Mapping | None:
    """Exhaustive DFS at fixed II; None means provably infeasible."""
    labels = {n: cgra.dvfs.normal for n in dfg.node_ids()}
    attempt = _Attempt(dfg, cgra, config, ii, labels, tiles)
    attempt.asap = {n: 0 for n in dfg.node_ids()}
    search_order = [n for n in order if n not in attempt.immediates]
    if _search(attempt, search_order, 0, tiles, stats, budget):
        return attempt._finish()
    return None


def _tile_order(attempt: _Attempt, node: int, tiles: list[int]) -> list[int]:
    """Allowed tiles, nearest placed neighbours first (search heuristic
    only — every tile is still visited, so completeness is unaffected)."""
    cgra = attempt.cgra
    anchors = [
        attempt.placements[edge.src].tile
        for _, edge in attempt._in[node]
        if edge.src in attempt.placements
    ] + [
        attempt.placements[edge.dst].tile
        for _, edge in attempt._out[node]
        if edge.dst in attempt.placements
    ]
    if not anchors:
        return list(tiles)
    return sorted(
        tiles, key=lambda t: (sum(cgra.distance(a, t) for a in anchors), t)
    )


def _search(attempt: _Attempt, order: list[int], depth: int,
            tiles: list[int], stats: ExactStats,
            budget: _Budget) -> bool:
    if depth == len(order):
        return True
    node = order[depth]
    cgra = attempt.cgra
    opcode = attempt.dfg.node(node).opcode
    level = cgra.dvfs.normal
    slowdown_of = attempt._slowdown_fn(None, None)
    slow = attempt._slow_vector(None, None)
    for tile in _tile_order(attempt, node, tiles):
        if not cgra.tile(tile).supports(opcode):
            continue
        duration = cgra.op_latency(tile, opcode) * level.slowdown
        if duration > attempt.ii:
            continue  # cannot claim more slots than the II offers
        earliest, latest = attempt._time_window(node, tile, duration)
        for t in range(earliest, latest + 1):
            budget.spend()
            token = attempt.mrrg.checkpoint()
            try:
                attempt.mrrg.claim_all(op_claims(tile, t, duration))
            except MappingError:
                attempt.mrrg.rollback(token)
                continue
            routed = attempt._route_adjacent(node, tile, t, duration,
                                             slowdown_of, slow)
            if not isinstance(routed, tuple):
                attempt.mrrg.rollback(token)
                if routed is _BREAK:
                    break  # larger t cannot satisfy this tile either
                continue
            routes, _latency = routed
            saved_routes = dict(attempt.routes)
            attempt.routes.update(routes)
            attempt.placements[node] = Placement(node, tile, t)
            if _search(attempt, order, depth + 1, tiles, stats, budget):
                return True
            stats.backtracks += 1
            del attempt.placements[node]
            attempt._ready_cache.pop(node, None)
            attempt.routes = saved_routes
            attempt.mrrg.rollback(token)
    return False
