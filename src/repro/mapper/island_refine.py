"""Post-mapping island-level refinement.

Algorithm 2 assigns island levels greedily while placing (the first
node in an island decides, and safety pushes toward normal). Once the
full schedule and all routes are known, islands can often run slower:
this pass gates every untouched island, then walks the powered islands
least-busy first and drops each to the slowest level the mapping still
re-times and re-validates at — the same verified-retiming machinery the
per-tile pass uses, at island granularity. The II never changes, so
performance is preserved by construction.
"""

from __future__ import annotations

from dataclasses import replace

from repro.arch.dvfs import DVFSLevel
from repro.errors import ValidationError
from repro.mapper.mapping import Mapping
from repro.mapper.retime import retime_with_levels
from repro.mapper.timing import compute_timing


def refine_island_levels(mapping: Mapping,
                         allowed_level_names: tuple[str, ...] | None = None,
                         ) -> Mapping:
    """Gate unused islands and slow the rest as far as provably safe.

    ``allowed_level_names`` restricts which active levels refinement may
    assign (the streaming compiler's normal/relax constraint).
    """
    cgra = mapping.cgra
    config = cgra.dvfs
    used = mapping.tiles_used()

    levels: dict[int, DVFSLevel] = dict(mapping.tile_levels)
    island_levels: dict[int, DVFSLevel] = dict(mapping.island_levels)
    for island in cgra.islands:
        if not any(t in used for t in island.tile_ids):
            island_levels[island.id] = config.power_gated
            for tile in island.tile_ids:
                levels[tile] = config.power_gated

    report = compute_timing(mapping)
    powered = sorted(
        (isl for isl in cgra.islands
         if not island_levels[isl.id].is_gated),
        key=lambda isl: (
            sum(report.tile_busy.get(t, 0) for t in isl.tile_ids), isl.id
        ),
    )
    for island in powered:
        current = island_levels[island.id]
        for level in reversed(config.levels):  # slowest first
            if (allowed_level_names is not None
                    and level.name not in allowed_level_names):
                continue
            if level.slowdown <= current.slowdown:
                break  # already at this speed or faster is pointless
            trial = dict(levels)
            for tile in island.tile_ids:
                trial[tile] = level
            candidate = retime_with_levels(mapping, trial)
            if candidate is None:
                continue
            try:
                compute_timing(candidate)
            except ValidationError:
                continue
            levels = trial
            island_levels[island.id] = level
            break

    refined = retime_with_levels(mapping, levels, strategy=mapping.strategy)
    if refined is None:  # every accepted step re-validated; cannot happen
        raise ValidationError("island refinement retiming diverged")
    refined = replace(refined, island_levels=island_levels)
    compute_timing(refined)
    return refined
