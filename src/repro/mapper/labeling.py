"""Algorithm 1 of the paper: LabelDVFSLevel.

Before placement, every DFG node receives a *preferred* DVFS level:

1. nodes on the longest recurrence cycles (the II-determining critical
   path) are labeled **normal**;
2. nodes on recurrence cycles no longer than half the longest are
   labeled **relax** (they tolerate a 2x slowdown without stretching
   the II beyond the critical cycle's bound);
3. remaining nodes are labeled **rest**/**relax**/**normal** greedily,
   slowest first, while the time-extended capacity (#tiles x II,
   with a node at slowdown s consuming s slots) still has room —
   over-labeling slow levels would eat placement slots and push the II
   up, which the paper explicitly avoids (lines 20-32).

Labels are preferences: Algorithm 2 may still place a node on a faster
island (never on a slower one).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.arch.dvfs import DVFSLevel
from repro.dfg.analysis import recurrence_cycles, topo_order
from repro.dfg.graph import DFG

#: Fraction of the tiles-x-II slot budget the labeler may plan to fill.
#: Full occupancy leaves the router no slack; the margin mirrors the
#: paper's "considering the number of available CGRA tiles across the
#: time domain".
CAPACITY_FILL = 0.9


def label_dvfs_levels(dfg: DFG, cgra: CGRA, ii: int) -> dict[int, DVFSLevel]:
    """Assign a preferred DVFS level to every node of ``dfg``."""
    config = cgra.dvfs
    normal = config.normal
    relax = config.levels[1] if len(config.levels) > 1 else normal
    rest = config.slowest

    labels: dict[int, DVFSLevel] = {}
    cycles = recurrence_cycles(dfg)
    longest = max((c.length for c in cycles), default=0)

    # Lines 7-19: recurrence cycles. Short cycles tolerate relax; the
    # longest (and anything above half of it) must stay at normal.
    for cycle in cycles:
        target = relax if cycle.length <= longest / 2 else normal
        for node in cycle.nodes:
            labels.setdefault(node, target)

    # Lines 20-32: spread the remaining nodes across the slot budget.
    budget = int(cgra.num_tiles * ii * CAPACITY_FILL)
    used = sum(labels[n].slowdown for n in labels)
    for node in topo_order(dfg):
        if node in labels:
            continue
        if used + rest.slowdown <= budget:
            labels[node] = rest
        elif used + relax.slowdown <= budget:
            labels[node] = relax
        else:
            labels[node] = normal
        used += labels[node].slowdown
    return labels
