"""The shared placement engine (the paper's Algorithm 2).

One engine serves every mapper flavour:

* **baseline** — ``dvfs_aware=False``: every island is pinned to the
  normal level and labels are ignored; the cost function reduces to
  (issue time, routing latency), i.e. a conventional II-minimizing
  modulo-scheduling heuristic.
* **ICED** — ``dvfs_aware=True``: nodes carry Algorithm 1 labels; the
  first node placed in an island fixes the island's level; later nodes
  may only use islands at least as fast as their label (Alg. 2 line
  17); the cost function additionally charges label/island mismatch and
  the activation of fresh islands (which is what concentrates work and
  lets unused islands be power gated).

The engine iteratively deepens the II from max(RecMII, ResMII) until a
full placement + routing succeeds, exactly as Alg. 2's outer loop does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.arch.cgra import CGRA
from repro.arch.dvfs import DVFSLevel
from repro.dfg.analysis import DFGAnalysis, analyze_dfg
from repro.dfg.graph import DFG, DFGEdge
from repro.dfg.ops import Opcode
from repro.errors import MappingError
from repro.mapper.labeling import label_dvfs_levels
from repro.mapper.mapping import Mapping, Placement, Route
from repro.mapper.routing import RouteMemo, find_route
from repro.mapper.schedule import modulo_schedule_times
from repro.mrrg.mrrg import MRRG, op_claims

import math


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the placement engine.

    Attributes:
        dvfs_aware: Enable Algorithm 1 labels and island-level assignment.
        max_ii: Give up (raise :class:`MappingError`) past this II.
        allowed_tiles: Restrict placement and routing to these tiles
            (used by the streaming partitioner to map one kernel onto a
            subset of islands). ``None`` means the whole fabric.
        allowed_level_names: Restrict island levels to these names (the
            streaming compiler allocates only normal/relax, section IV-B).
        xbar_capacity: Concurrent routes through one tile's crossbar.
        beam_width: Evaluate at most this many candidate tiles per node
            (0 = all). Tiles are pre-sorted by proximity to placed
            producers, so a moderate beam rarely hurts quality.
        extra_window: Issue times tried per (node, tile) beyond the II
            baseline window. The earliest-start estimate assumes 1-cycle
            hops, which underestimates transit through slowed islands;
            the extra slots keep such placements reachable.
        w_time / w_route / w_mismatch / w_new_island / w_pressure:
            Cost weights (issue lateness, routing latency, label/island
            level mismatch, activating an untouched island, and FU
            occupancy pressure on the candidate tile).
        vectorize: Score a node's candidate tiles with one numpy pass
            (windows, prune mask, claim-pool pressure) instead of
            per-candidate python loops. Bit-identical to the scalar
            path by construction (integer arithmetic either way) and
            pinned by the differential suite, so it is excluded from
            cache fingerprints (see ``ACCEL_FIELDS``).
        min_ii: A *sound lower bound* on the feasible II supplied by
            the caller (e.g. ``exact_lower_bound`` or a DSE warm-start
            ladder). IIs below it are skipped outright — bit-identical
            as long as the bound is sound, because every skipped
            attempt was guaranteed to fail. Never raise it past a
            value that could admit a mapping.
    """

    dvfs_aware: bool = False
    max_ii: int = 32
    allowed_tiles: frozenset[int] | None = None
    allowed_level_names: tuple[str, ...] | None = None
    xbar_capacity: int = 4
    beam_width: int = 12
    max_good_candidates: int = 5
    extra_window: int = 8
    max_reschedules: int = 10
    w_time: float = 1.0
    w_route: float = 3.0
    w_mismatch: float = 8.0
    w_new_island: float = 6.0
    w_pressure: float = 3.0
    vectorize: bool = True
    min_ii: int = 0

    @classmethod
    def for_strategy(cls, strategy: str) -> "EngineConfig":
        """The canonical engine configuration of an evaluated design.

        This is the single source of truth for default engine tunables
        (cost weights included): every mapper entry point and experiment
        harness derives its configuration from here instead of restating
        values inline.
        """
        dvfs_aware = strategy not in (
            "baseline", "baseline+gating", "per_tile_dvfs", "per_tile",
            "anneal", "exhaustive",
        )
        return cls(dvfs_aware=dvfs_aware)


#: EngineConfig fields that accelerate the search without changing its
#: result (enforced by the differential suites). They are stripped from
#: cache fingerprints so toggling them can never split the cache.
ACCEL_FIELDS = ("vectorize", "min_ii")


@dataclass
class EngineStats:
    """Search-effort counters of one :func:`map_dfg` run.

    Surfaced by the compile pipeline's instrumentation layer so the
    compile-time/quality trade the paper argues for (§VI) is observable
    per invocation.
    """

    iis_tried: int = 0
    attempts: int = 0
    reschedules: int = 0
    candidates_probed: int = 0
    candidates_pruned: int = 0
    routes_searched: int = 0
    route_memo_hits: int = 0
    route_memo_misses: int = 0
    placements_committed: int = 0
    #: Distance-oracle cache accounting. The oracle is process-global
    #: by design (cross-point reuse), so these two describe *cache
    #: state*, not search effort — they are deliberately left out of
    #: :meth:`as_counters` to keep span/pass counters identical
    #: between ``--jobs 1`` and ``--jobs N`` (pool workers start with
    #: a cold oracle; the serial process does not).
    oracle_cols_built: int = 0
    oracle_cols_reused: int = 0
    #: Per-II breakdown of the search effort (one dict per II tried,
    #: in search order). Not a counter — it rides next to the flat
    #: dict via :class:`MappingResult.detail` so ``--stats`` can show
    #: where the deepening loop actually spent its probes.
    per_ii: list = field(default_factory=list)

    def as_counters(self) -> dict[str, int]:
        return {
            "iis_tried": self.iis_tried,
            "attempts": self.attempts,
            "reschedules": self.reschedules,
            "candidates_probed": self.candidates_probed,
            "candidates_pruned": self.candidates_pruned,
            "routes_searched": self.routes_searched,
            "route_memo_hits": self.route_memo_hits,
            "route_memo_misses": self.route_memo_misses,
            "placements_committed": self.placements_committed,
        }


#: Sentinel: issuing this node later cannot help (out-edge deadline hit).
_BREAK = object()


class _AttemptFailed(Exception):
    """Internal: the current II admits no full placement.

    ``suggestion`` optionally carries raised issue-time floors for the
    next retry at the same II: when a node's earliest feasible start ran
    past a recurrence deadline, sliding the deadline's anchor (the
    back-edge consumer, typically a PHI) later by the shortfall makes
    the cycle closable — the iterative part of iterative modulo
    scheduling.
    """

    def __init__(self, message: str, suggestion: dict[int, int] | None = None):
        super().__init__(message)
        self.suggestion = suggestion


def map_dfg(dfg: DFG, cgra: CGRA, config: EngineConfig | None = None,
            *, analysis: DFGAnalysis | None = None,
            stats: EngineStats | None = None) -> Mapping:
    """Map ``dfg`` onto ``cgra``; raises :class:`MappingError` on failure.

    ``analysis`` accepts the compile pipeline's precomputed
    :class:`~repro.dfg.analysis.DFGAnalysis` (RecMII, topological order,
    height levels) so the outer II-deepening loop never recomputes
    them; when omitted it is computed here, once. ``stats`` collects
    search-effort counters when supplied.
    """
    config = config or EngineConfig()
    if analysis is None:
        analysis = analyze_dfg(dfg)  # also validates the DFG
    stats = stats if stats is not None else EngineStats()
    tiles = _allowed_tiles(cgra, config)
    _check_memory_feasible(dfg, cgra, tiles)

    num_mappable = sum(
        1 for n in dfg.nodes() if n.opcode is not Opcode.CONST
    )
    order = _schedule_order(dfg, analysis)
    # ``config.min_ii`` is a caller-supplied *sound* lower bound (e.g.
    # exact_lower_bound): every skipped II was guaranteed to fail, so
    # starting above it cannot change the mapping found.
    start_ii = max(analysis.rec_mii, math.ceil(num_mappable / len(tiles)),
                   config.min_ii)
    softening_steps = len(cgra.dvfs.levels) if config.dvfs_aware else 1
    # One route memo for the whole run: its key includes the II and the
    # pool's congestion epoch, so entries transfer safely between
    # attempts (reschedules repeat most early placements verbatim).
    memo = RouteMemo()
    try:
        return _deepen(dfg, cgra, config, analysis, stats, tiles, order,
                       start_ii, softening_steps, memo)
    finally:
        stats.route_memo_hits += memo.hits
        stats.route_memo_misses += memo.misses
        stats.oracle_cols_built += memo.hcol_builds
        stats.oracle_cols_reused += memo.hcol_reuses


def _deepen(dfg: DFG, cgra: CGRA, config: EngineConfig,
            analysis: DFGAnalysis, stats: EngineStats, tiles: list[int],
            order: list[int], start_ii: int, softening_steps: int,
            memo: RouteMemo) -> Mapping:
    """The II-deepening outer loop of :func:`map_dfg` (Alg. 2)."""
    last_error = ""
    for ii in range(start_ii, config.max_ii + 1):
        stats.iis_tried += 1
        ii_row = {
            "ii": ii, "outcome": "failed",
            "attempts": stats.attempts,
            "candidates_probed": stats.candidates_probed,
            "candidates_pruned": stats.candidates_pruned,
            "routes_searched": stats.routes_searched,
            "route_memo_hits": memo.hits,
            "route_memo_misses": memo.misses,
        }
        stats.per_ii.append(ii_row)

        def _close_ii(row=ii_row):
            # Rewrite the snapshot fields into per-II deltas.
            row["attempts"] = stats.attempts - row["attempts"]
            row["candidates_probed"] = (
                stats.candidates_probed - row["candidates_probed"]
            )
            row["candidates_pruned"] = (
                stats.candidates_pruned - row["candidates_pruned"]
            )
            row["routes_searched"] = (
                stats.routes_searched - row["routes_searched"]
            )
            row["route_memo_hits"] = memo.hits - row["route_memo_hits"]
            row["route_memo_misses"] = (
                memo.misses - row["route_memo_misses"]
            )

        try:
            with obs.span(f"ii={ii}", category="mapper", kernel=dfg.name,
                          ii=ii):
                for soften in range(softening_steps):
                    # Performance first (the paper's Alg. 1 falls back to
                    # normal labels rather than risk the II): before
                    # conceding a longer II, retry with every label promoted
                    # ``soften`` steps toward normal.
                    if config.dvfs_aware:
                        labels = label_dvfs_levels(dfg, cgra, ii)
                        labels = _soften_labels(labels, cgra, soften)
                        labels = _clamp_labels(labels, cgra, config)
                    else:
                        labels = {n: cgra.dvfs.normal
                                  for n in dfg.node_ids()}
                    floors: dict[int, int] = {}
                    for retry in range(config.max_reschedules + 1):
                        stats.attempts += 1
                        if retry:
                            stats.reschedules += 1
                        attempt = _Attempt(dfg, cgra, config, ii, labels,
                                           tiles, floors, order=order,
                                           stats=stats, memo=memo)
                        with obs.span("attempt", category="mapper",
                                      kernel=dfg.name, ii=ii,
                                      soften=soften, retry=retry) as span:
                            before = (
                                (stats.routes_searched,
                                 stats.candidates_pruned, memo.hits)
                                if span else None
                            )
                            try:
                                mapping = attempt.run()
                            except _AttemptFailed as exc:
                                last_error = str(exc)
                                if span:
                                    span.set(
                                        outcome="failed",
                                        placed=len(attempt.placements),
                                        routes_searched=(
                                            stats.routes_searched
                                            - before[0]
                                        ),
                                        candidates_pruned=(
                                            stats.candidates_pruned
                                            - before[1]
                                        ),
                                        route_memo_hits=(
                                            memo.hits - before[2]
                                        ),
                                        error=last_error,
                                    )
                                failed = exc
                            else:
                                if span:
                                    span.set(
                                        outcome="mapped",
                                        placed=len(attempt.placements),
                                        routes_searched=(
                                            stats.routes_searched
                                            - before[0]
                                        ),
                                        candidates_pruned=(
                                            stats.candidates_pruned
                                            - before[1]
                                        ),
                                        route_memo_hits=(
                                            memo.hits - before[2]
                                        ),
                                    )
                                ii_row["outcome"] = "mapped"
                                return mapping
                        if not failed.suggestion:
                            break
                        progressed = False
                        for node, time in failed.suggestion.items():
                            if time > floors.get(node, 0):
                                floors[node] = time
                                progressed = True
                        if not progressed:
                            break
        finally:
            _close_ii()
    raise MappingError(
        f"no mapping of {dfg.name!r} ({dfg.num_nodes} nodes) onto "
        f"{cgra.name} within II <= {config.max_ii}: {last_error}",
        last_ii=config.max_ii,
    )


def _schedule_order(dfg: DFG, analysis: DFGAnalysis) -> list[int]:
    """Topological placement order, deepest-ready-node first.

    Depends only on the DFG (CONST nodes are immediates and never
    appear), so the engine computes it once per ``map_dfg`` call and
    reuses it across every (II, soften, reschedule) attempt.
    """
    immediates = {
        n.id for n in dfg.nodes() if n.opcode is Opcode.CONST
    }
    heights = analysis.heights
    order = [n for n in analysis.topo if n not in immediates]
    indegree = {n: 0 for n in dfg.node_ids()}
    out_edges: dict[int, list[DFGEdge]] = {n: [] for n in dfg.node_ids()}
    for edge in dfg.edges():
        if edge.src in immediates or edge.dst in immediates:
            continue
        out_edges[edge.src].append(edge)
        if edge.dist == 0:
            indegree[edge.dst] += 1
    ready = [n for n in order if indegree[n] == 0]
    result: list[int] = []
    while ready:
        ready.sort(key=lambda n: (-heights[n], n))
        node = ready.pop(0)
        result.append(node)
        for edge in out_edges[node]:
            if edge.dist == 0:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
    return result


def _allowed_tiles(cgra: CGRA, config: EngineConfig) -> list[int]:
    if config.allowed_tiles is None:
        return [t.id for t in cgra.tiles]
    tiles = sorted(config.allowed_tiles)
    if not tiles:
        raise MappingError("allowed_tiles is empty")
    for tile in tiles:
        cgra.tile(tile)  # raises on out-of-range ids
    return tiles


def _check_memory_feasible(dfg: DFG, cgra: CGRA, tiles: list[int]) -> None:
    if dfg.memory_nodes() and not any(
        cgra.tile(t).has_memory_access for t in tiles
    ):
        raise MappingError(
            f"{dfg.name!r} has LOAD/STORE nodes but no allowed tile is "
            "SPM-connected"
        )


def _soften_labels(labels: dict[int, DVFSLevel], cgra: CGRA,
                   steps: int) -> dict[int, DVFSLevel]:
    """Promote every label ``steps`` levels toward normal."""
    if steps <= 0:
        return labels
    levels = cgra.dvfs.levels
    return {
        node: levels[max(0, cgra.dvfs.index_of(level) - steps)]
        for node, level in labels.items()
    }


def _clamp_labels(labels: dict[int, DVFSLevel], cgra: CGRA,
                  config: EngineConfig) -> dict[int, DVFSLevel]:
    if config.allowed_level_names is None:
        return labels
    allowed = [
        cgra.dvfs.level_named(name) for name in config.allowed_level_names
    ]
    slowest = max(allowed, key=lambda lv: lv.slowdown)
    clamped = {}
    for node, level in labels.items():
        if any(level is lv for lv in allowed):
            clamped[node] = level
        else:
            # Pick the slowest allowed level that is still >= the label's
            # speed, falling back to the slowest allowed one.
            faster = [lv for lv in allowed if lv.at_least_as_fast_as(level)]
            clamped[node] = (
                max(faster, key=lambda lv: lv.slowdown) if faster else slowest
            )
    return clamped


@dataclass
class _Candidate:
    cost: float
    tile: int
    time: int
    level: DVFSLevel


def _distance_np(cgra: CGRA):
    """``cgra._distance`` as an int64 matrix, cached on the fabric."""
    dist = getattr(cgra, "_distance_np", None)
    if dist is None:
        dist = np.asarray(cgra._distance, dtype=np.int64)
        cgra._distance_np = dist
    return dist


def _island_ids(cgra: CGRA) -> list[int]:
    """Per-tile island id, cached on the fabric."""
    ids = getattr(cgra, "_island_id_of", None)
    if ids is None:
        ids = [cgra.island_of(t).id for t in range(cgra.num_tiles)]
        cgra._island_id_of = ids
    return ids


class _Attempt:
    """One fixed-II placement attempt."""

    def __init__(self, dfg: DFG, cgra: CGRA, config: EngineConfig,
                 ii: int, labels: dict[int, DVFSLevel], tiles: list[int],
                 floors: dict[int, int] | None = None, *,
                 order: list[int] | None = None,
                 stats: EngineStats | None = None,
                 memo: RouteMemo | None = None):
        self.dfg = dfg
        self.cgra = cgra
        self.config = config
        self.ii = ii
        self.labels = labels
        self.tiles = tiles
        self.floors = dict(floors or {})
        self.order = order
        self.stats = stats if stats is not None else EngineStats()
        self.memo = memo
        self.mrrg = MRRG(cgra, ii, config.xbar_capacity)
        self.placements: dict[int, Placement] = {}
        self.routes: dict[int, Route] = {}
        self.island_levels: dict[int, DVFSLevel] = {}
        if not config.dvfs_aware:
            for island in cgra.islands:
                self.island_levels[island.id] = cgra.dvfs.normal
        # CONST nodes are not mapped: a constant is an immediate operand
        # baked into the consumer tile's configuration word, so neither
        # the node nor its edges consume fabric resources.
        self.immediates = {
            n.id for n in dfg.nodes() if n.opcode is Opcode.CONST
        }
        self.edges = [
            (idx, edge) for idx, edge in enumerate(dfg.edges())
            if edge.src not in self.immediates
            and edge.dst not in self.immediates
        ]
        self._in: dict[int, list[tuple[int, DFGEdge]]] = {
            n: [] for n in dfg.node_ids()
        }
        self._out: dict[int, list[tuple[int, DFGEdge]]] = {
            n: [] for n in dfg.node_ids()
        }
        for idx, edge in self.edges:
            self._in[edge.dst].append((idx, edge))
            self._out[edge.src].append((idx, edge))
        # Cached per-tile slowdown vectors (see _slow_vector). Island
        # levels are only ever added, never changed, so the dict length
        # is a valid version stamp.
        self._slow_version = -1
        self._slow_base: tuple[int, ...] = ()
        self._slow_variants: dict[tuple, tuple[int, ...]] = {}
        # Opcode/tile latencies are static for the lifetime of a run.
        self._op_cycles_cache: dict[int, int] = {}
        # Opcode -> allowed tiles whose FU supports it (static too).
        self._support_cache: dict[Opcode, list[int]] = {}
        # (label, island-count) -> per-island options; island levels
        # are only ever added, so the dict length versions the cache
        # (same trick as _slow_vector).
        self._island_options_cache: dict[tuple, list] = {}
        # A placed node's ready time never changes while it stays
        # placed (its island's level is fixed at commit); any caller
        # that *removes* a placement must drop the cache entry.
        self._ready_cache: dict[int, int] = {}

    # -- helpers ------------------------------------------------------------

    def _slowdown_fn(self, candidate_island: int | None,
                     candidate_level: DVFSLevel | None):
        levels = self.island_levels

        def slowdown_of(tile: int) -> int:
            island = self.cgra.island_of(tile).id
            level = levels.get(island)
            if level is None and island == candidate_island:
                level = candidate_level
            if level is None or level.is_gated:
                return 1  # routing through it will assign it normal
            return level.slowdown

        return slowdown_of

    def _slow_vector(self, candidate_island: int | None,
                     candidate_level: DVFSLevel | None) -> tuple[int, ...]:
        """The per-tile values of :meth:`_slowdown_fn`, as a tuple.

        Rebuilt only when an island gains a level; the per-candidate
        variant (one fresh island hypothetically opened at
        ``candidate_level``) is a cached copy-and-patch of the base.
        """
        version = len(self.island_levels)
        if version != self._slow_version:
            fn = self._slowdown_fn(None, None)
            self._slow_base = tuple(
                fn(t) for t in range(self.cgra.num_tiles)
            )
            self._slow_version = version
            self._slow_variants = {}
        if candidate_island is None or candidate_island in self.island_levels:
            return self._slow_base
        key = (candidate_island, candidate_level)
        vec = self._slow_variants.get(key)
        if vec is None:
            s = 1 if (candidate_level is None or candidate_level.is_gated) \
                else candidate_level.slowdown
            if s == 1:
                vec = self._slow_base
            else:
                patched = list(self._slow_base)
                for t in self.cgra.islands[candidate_island].tile_ids:
                    patched[t] = s
                vec = tuple(patched)
            self._slow_variants[key] = vec
        return vec

    def _tile_level(self, tile: int, candidate_island: int | None,
                    candidate_level: DVFSLevel | None) -> DVFSLevel | None:
        island = self.cgra.island_of(tile).id
        level = self.island_levels.get(island)
        if level is None and island == candidate_island:
            level = candidate_level
        return level

    def _op_cycles(self, node: int, tile: int) -> int:
        """Own-clock latency of ``node`` on ``tile``'s FU (memoized)."""
        key = (node << 16) | tile
        cycles = self._op_cycles_cache.get(key)
        if cycles is None:
            cycles = self.cgra.op_latency(tile, self.dfg.node(node).opcode)
            self._op_cycles_cache[key] = cycles
        return cycles

    def _ready(self, node: int) -> int:
        ready = self._ready_cache.get(node)
        if ready is None:
            p = self.placements[node]
            level = self.island_levels[self.cgra.island_of(p.tile).id]
            ready = p.time + self._op_cycles(node, p.tile) * level.slowdown
            self._ready_cache[node] = ready
        return ready

    # -- main loop ------------------------------------------------------------

    def run(self) -> Mapping:
        self.asap = modulo_schedule_times(
            self.dfg, self.ii,
            latency_of=lambda n: (
                0 if n in self.immediates
                else self._base_latency(n) * self.labels[n].slowdown
            ),
            floor=self.floors,
        )
        if self.asap is None:
            raise _AttemptFailed(
                f"II={self.ii}: recurrence cycles cannot absorb the "
                "labeled slowdowns"
            )
        if self.order is None:
            self.order = _schedule_order(self.dfg, analyze_dfg(self.dfg))
        for node in self.order:
            candidate = self._best_candidate(node)
            if candidate is None:
                raise _AttemptFailed(
                    f"II={self.ii}: no feasible tile for node "
                    f"{self.dfg.node(node).label}",
                    suggestion=self._failure_suggestion(node),
                )
            self._commit(node, candidate)
        return self._finish()

    # -- candidate search ----------------------------------------------------

    def _best_candidate(self, node: int) -> _Candidate | None:
        if self.config.vectorize:
            return self._best_candidate_vec(node)
        return self._best_candidate_ref(node)

    def _best_candidate_ref(self, node: int) -> _Candidate | None:
        """Scalar reference scorer. ``_best_candidate_vec`` must agree
        with this loop bit-for-bit — mapping, cost tuples and stats
        counters alike (pinned by the differential suite); any change
        here must be mirrored there."""
        label = self.labels[node]
        opcode = self.dfg.node(node).opcode
        tiles = self._candidate_tiles(node, opcode)
        best: _Candidate | None = None
        feasible = 0
        for tile in tiles:
            if feasible >= self.config.max_good_candidates:
                break
            island = self.cgra.island_of(tile).id
            assigned = self.island_levels.get(island)
            if assigned is None:
                # A fresh island could be opened at the label's level or
                # at normal; evaluate both (a too-slow label must not
                # sink the node — Alg. 1 falls back to normal for the
                # same reason).
                allowed_names = self.config.allowed_level_names
                option_levels = {label, self.cgra.dvfs.normal}
                options = [
                    (level, True) for level in self.cgra.dvfs.levels
                    if level in option_levels
                    and (allowed_names is None or level.name in allowed_names)
                ]
            else:
                if not assigned.at_least_as_fast_as(label):
                    continue  # Alg. 2 line 17: never onto a slower island
                options = [(assigned, False)]
            if not options:
                continue
            # Oracle pruning: the issue-time window only shrinks as the
            # op slows down, so an empty window at the fastest available
            # level means every option would fail its first feasibility
            # check — skip the tile without probing.
            s_best = self._op_cycles(node, tile) * min(
                level.slowdown for level, _fresh in options
            )
            earliest, latest = self._time_window(node, tile, s_best)
            if earliest > latest:
                self.stats.candidates_pruned += len(options)
                continue
            for level, fresh in options:
                self.stats.candidates_probed += 1
                result = self._try_tile(node, tile, level, island,
                                        s_hint=s_best,
                                        window=(earliest, latest))
                if result is None:
                    continue
                feasible += 1
                time, route_latency = result
                pressure = self.mrrg.tile_busy_slots(tile) / self.ii
                cost = (
                    self.config.w_time * time
                    + self.config.w_route * route_latency
                    + self.config.w_pressure * pressure
                )
                if self.config.dvfs_aware:
                    mismatch = abs(
                        self.cgra.dvfs.index_of(level)
                        - self.cgra.dvfs.index_of(label)
                    )
                    cost += self.config.w_mismatch * mismatch
                    cost += self.config.w_new_island * (1 if fresh else 0)
                if best is None or (cost, tile, time) < (
                    best.cost, best.tile, best.time
                ):
                    best = _Candidate(cost, tile, time, level)
        return best

    def _best_candidate_vec(self, node: int) -> _Candidate | None:
        """Vectorized scorer: one numpy pass computes every candidate
        tile's issue window, prune verdict and (lazily) the claim-pool
        pressure, replacing the per-tile python loops of
        ``_best_candidate_ref``. The router probes themselves stay
        sequential — they mutate the pool — but they consume the
        precomputed windows, so the per-candidate python work collapses
        to the probe call.

        Bit-identity with the reference loop is by construction: all
        precomputed quantities are integers (numpy int64 == python int
        arithmetic), they are converted back to python scalars before
        entering any cost expression, and the visit order, beam break
        and counter updates replicate the scalar control flow exactly.
        """
        label = self.labels[node]
        opcode = self.dfg.node(node).opcode
        placements = self.placements
        in_placed = [
            e for _i, e in self._in[node] if e.src in placements
        ]
        out_placed = [
            e for _i, e in self._out[node]
            if e.dst != node and e.dst in placements
        ]
        tiles, np_tiles = self._candidate_tiles_vec(
            node, opcode, in_placed, out_placed
        )
        if not tiles:
            return None
        island_ids = _island_ids(self.cgra)
        by_island = self._island_options(label)
        num = len(tiles)
        min_slow = [1] * num
        live = [False] * num
        for k, tile in enumerate(tiles):
            opts = by_island[island_ids[tile]]
            if opts is not None:
                live[k] = True
                min_slow[k] = opts[1]
        if out_placed:
            s_vec = np.asarray(
                [self._op_cycles(node, t) for t in tiles], dtype=np.int64
            ) * np.asarray(min_slow, dtype=np.int64)
        else:
            # No placed consumer constrains ``latest``, so the per-tile
            # op duration never enters the window math; compute it
            # lazily per visited tile instead.
            s_vec = None
        earliest, latest = self._windows_vec(
            node, np_tiles, s_vec, in_placed, out_placed
        )
        # Back to python scalars in one pass each — per-element numpy
        # indexing in the visit loop would cost more than it saves.
        s_list = None if s_vec is None else s_vec.tolist()
        earliest = earliest.tolist()
        latest = latest.tolist()
        busy: dict[int, float] = {}
        best: _Candidate | None = None
        feasible = 0
        ii = self.ii
        for k, tile in enumerate(tiles):
            if feasible >= self.config.max_good_candidates:
                break
            if not live[k]:
                continue
            island = island_ids[tile]
            options = by_island[island][0]
            if earliest[k] > latest[k]:
                self.stats.candidates_pruned += len(options)
                continue
            s_best = (s_list[k] if s_list is not None
                      else self._op_cycles(node, tile) * min_slow[k])
            window = (earliest[k], latest[k])
            for level, fresh in options:
                self.stats.candidates_probed += 1
                result = self._try_tile(node, tile, level, island,
                                        s_hint=s_best, window=window)
                if result is None:
                    continue
                feasible += 1
                time, route_latency = result
                # Probes roll the pool back, so occupancy is invariant
                # across this node's whole candidate loop: each tile's
                # busy count is read from the claim pool at most once.
                pressure = busy.get(tile)
                if pressure is None:
                    pressure = self.mrrg.tile_busy_slots(tile) / ii
                    busy[tile] = pressure
                cost = (
                    self.config.w_time * time
                    + self.config.w_route * route_latency
                    + self.config.w_pressure * pressure
                )
                if self.config.dvfs_aware:
                    mismatch = abs(
                        self.cgra.dvfs.index_of(level)
                        - self.cgra.dvfs.index_of(label)
                    )
                    cost += self.config.w_mismatch * mismatch
                    cost += self.config.w_new_island * (1 if fresh else 0)
                if best is None or (cost, tile, time) < (
                    best.cost, best.tile, best.time
                ):
                    best = _Candidate(cost, tile, time, level)
        return best

    def _island_options(self, label: DVFSLevel) -> list:
        """Per-island placement options for a node labeled ``label``:
        ``None`` when the island must be skipped (assigned slower than
        the label, or no admissible fresh level), else
        ``(options, min_slowdown)`` with options exactly as the
        reference loop builds them."""
        cache_key = (label, len(self.island_levels))
        cached = self._island_options_cache.get(cache_key)
        if cached is not None:
            return cached
        allowed_names = self.config.allowed_level_names
        normal = self.cgra.dvfs.normal
        out: list = [None] * len(self.cgra.islands)
        for island in self.cgra.islands:
            assigned = self.island_levels.get(island.id)
            if assigned is None:
                option_levels = {label, normal}
                options = [
                    (level, True) for level in self.cgra.dvfs.levels
                    if level in option_levels
                    and (allowed_names is None
                         or level.name in allowed_names)
                ]
                if options:
                    out[island.id] = (
                        options,
                        min(lv.slowdown for lv, _fresh in options),
                    )
            elif assigned.at_least_as_fast_as(label):
                out[island.id] = ([(assigned, False)], assigned.slowdown)
        self._island_options_cache[cache_key] = out
        return out

    def _candidate_tiles_vec(self, node: int, opcode: Opcode,
                             in_placed: list[DFGEdge],
                             out_placed: list[DFGEdge]):
        """``_candidate_tiles`` with the anchor-distance sort done as a
        stable numpy argsort (ties keep ascending tile id, matching the
        reference ``(sum, t)`` key) and the opcode-support filter cached
        per attempt. Returns ``(tiles, int64 array of tiles)``.

        ``in_placed``/``out_placed`` are the node's edges to already
        placed neighbours; they coincide with the reference anchor scan
        because the node being placed is never in ``placements`` (so a
        self-loop can't contribute an anchor there either).
        """
        supported = self._support_cache.get(opcode)
        if supported is None:
            supported = [
                t for t in self.tiles if self.cgra.tile(t).supports(opcode)
            ]
            self._support_cache[opcode] = supported
        tiles = supported
        placements = self.placements
        anchors = [placements[e.src].tile for e in in_placed] + [
            placements[e.dst].tile for e in out_placed
        ]
        if anchors and len(tiles) > 1:
            dist = _distance_np(self.cgra)
            sums = dist[np.ix_(tiles, anchors)].sum(axis=1)
            order = np.argsort(sums, kind="stable")
            np_tiles = np.asarray(tiles, dtype=np.int64)[order]
            if self.config.beam_width and \
                    len(tiles) > self.config.beam_width:
                np_tiles = np_tiles[: self.config.beam_width]
            return np_tiles.tolist(), np_tiles
        if self.config.beam_width and len(tiles) > self.config.beam_width:
            tiles = tiles[: self.config.beam_width]
        return list(tiles), np.asarray(tiles, dtype=np.int64)

    def _windows_vec(self, node: int, np_tiles, s_vec,
                     in_placed: list[DFGEdge],
                     out_placed: list[DFGEdge]):
        """``_time_window`` for every candidate tile at once; the edge
        loops run once over numpy vectors instead of once per tile."""
        dist = _distance_np(self.cgra)
        placements = self.placements
        earliest = np.full(len(np_tiles), self.asap[node], dtype=np.int64)
        for edge in in_placed:
            src = placements[edge.src]
            base = self._ready(edge.src) - edge.dist * self.ii
            np.maximum(earliest, base + dist[src.tile, np_tiles],
                       out=earliest)
        latest = earliest + (self.ii - 1 + self.config.extra_window)
        for edge in out_placed:
            dst = placements[edge.dst]
            base = dst.time + edge.dist * self.ii
            np.minimum(latest, base - s_vec - dist[np_tiles, dst.tile],
                       out=latest)
        return earliest, latest

    def _base_latency(self, node: int) -> int:
        """Latency of ``node`` on a representative capable tile (FUs are
        homogeneous per opcode across the fabric)."""
        opcode = self.dfg.node(node).opcode
        for tile in self.tiles:
            if self.cgra.tile(tile).supports(opcode):
                return self.cgra.op_latency(tile, opcode)
        return 1

    def _failure_suggestion(self, node: int) -> dict[int, int] | None:
        """Raised floors that could make ``node`` placeable next retry.

        When the node's earliest feasible start overran the deadline a
        placed back-edge consumer imposes, sliding that consumer later
        by the shortfall re-opens the window. Resource-only failures
        (no placed consumer) produce no suggestion.
        """
        consumers = [
            (idx, edge) for idx, edge in self._out[node]
            if edge.dst in self.placements and edge.dst != node
        ]
        if not consumers:
            return None
        opcode = self.dfg.node(node).opcode
        slowdown = self._base_latency(node) * self.labels[node].slowdown
        best: tuple[int, int] | None = None  # (shortfall, consumer)
        for tile in self.tiles:
            if not self.cgra.tile(tile).supports(opcode):
                continue
            earliest, latest = self._time_window(node, tile, slowdown)
            shortfall = max(1, earliest - latest)
            binding, bound = None, None
            for _idx, edge in consumers:
                dst = self.placements[edge.dst]
                b = (dst.time + edge.dist * self.ii - slowdown
                     - self.cgra.distance(tile, dst.tile))
                if bound is None or b < bound:
                    binding, bound = edge.dst, b
            if binding is None:
                continue
            if best is None or shortfall < best[0]:
                best = (shortfall, binding)
        if best is None:
            return None
        shortfall, consumer = best
        return {consumer: self.placements[consumer].time + shortfall}

    def _candidate_tiles(self, node: int, opcode: Opcode) -> list[int]:
        tiles = [
            t for t in self.tiles if self.cgra.tile(t).supports(opcode)
        ]
        anchors = [
            self.placements[e.src].tile
            for _i, e in self._in[node] if e.src in self.placements
        ] + [
            self.placements[e.dst].tile
            for _i, e in self._out[node] if e.dst in self.placements
        ]
        if anchors:
            dist = self.cgra._distance
            tiles.sort(key=lambda t: (
                sum(dist[t][a] for a in anchors), t
            ))
        if self.config.beam_width and len(tiles) > self.config.beam_width:
            tiles = tiles[: self.config.beam_width]
        return tiles

    def _time_window(self, node: int, tile: int,
                     slowdown: int) -> tuple[int, int]:
        dist = self.cgra._distance
        placements = self.placements
        earliest = self.asap[node]
        for _idx, edge in self._in[node]:
            src = placements.get(edge.src)
            if src is None:
                continue
            bound = (
                self._ready(edge.src)
                + dist[src.tile][tile]
                - edge.dist * self.ii
            )
            if bound > earliest:
                earliest = bound
        latest = earliest + self.ii - 1 + self.config.extra_window
        tile_row = dist[tile]
        for _idx, edge in self._out[node]:
            if edge.dst == node:
                continue
            dst = placements.get(edge.dst)
            if dst is None:
                continue
            bound = (
                dst.time + edge.dist * self.ii
                - slowdown - tile_row[dst.tile]
            )
            if bound < latest:
                latest = bound
        return earliest, latest

    def _try_tile(self, node: int, tile: int, level: DVFSLevel,
                  island: int, s_hint: int | None = None,
                  window: tuple[int, int] | None = None,
                  ) -> tuple[int, int] | None:
        """First issue time in the window at which all adjacent edges
        route; returns (time, total route latency) or None.

        ``window`` optionally carries a precomputed ``_time_window``
        result for op duration ``s_hint`` (the candidate loop already
        computed it for its pruning check); it is used only when the
        durations actually agree.
        """
        s = self._op_cycles(node, tile) * level.slowdown
        if window is not None and s == s_hint:
            earliest, latest = window
        else:
            earliest, latest = self._time_window(node, tile, s)
        slowdown_of = self._slowdown_fn(island, level)
        slow = self._slow_vector(island, level)
        t = earliest
        while t <= latest:
            outcome = self._probe(node, tile, t, s, slowdown_of, slow)
            if isinstance(outcome, tuple):
                return t, outcome[1]
            if outcome is _BREAK:
                return None
            t += outcome  # jump forward by the observed shortfall
        return None

    def _probe(self, node: int, tile: int, t: int, s: int, slowdown_of,
               slow: tuple[int, ...]):
        """Try one (tile, t); returns (routes, latency), a forward jump
        (int >= 1), or _BREAK when larger t cannot help."""
        # The op claim is a single FU interval whose flat resource id is
        # the tile id itself; probing it read-only first skips the
        # checkpoint/raise/rollback round-trip of a doomed claim.
        pool = self.mrrg.pool
        if not pool.interval_free(tile, t, s):
            return 1
        token = pool.checkpoint()
        pool.claim_rid(tile, t, s)  # the FU rid is the tile id
        outcome = self._route_adjacent(node, tile, t, s, slowdown_of, slow)
        pool.rollback(token)
        return outcome

    def _route_adjacent(self, node: int, tile: int, t: int, s: int,
                        slowdown_of, slow: tuple[int, ...]):
        """Route every edge between ``node`` and already-placed nodes,
        claiming as it goes (caller owns rollback).

        Returns (routes, total latency) on success; an int jump >= 1
        when issuing later could succeed (sized from the router's
        earliest-arrival probe); or _BREAK when later issue times cannot
        help (an out-edge deadline was already overrun).
        """
        routes: dict[int, Route] = {}
        latency = 0

        for idx, edge in self._in[node]:
            if edge.src == node:
                continue  # self-loop handled below
            if edge.src not in self.placements:
                continue
            src = self.placements[edge.src]
            ready = self._ready(edge.src)
            deadline = t + edge.dist * self.ii
            route, probe = self._route_one(
                idx, edge, src.tile, ready, tile, deadline, slowdown_of,
                slow, horizon=deadline + self.ii,
            )
            if route is None:
                if probe is not None and probe > deadline:
                    return probe - deadline  # issue late enough to catch it
                return 1
            routes[idx] = route
            latency += route.arrival - ready

        for idx, edge in self._out[node]:
            if edge.dst == node:
                # Self-loop: value waits on this tile across iterations.
                ready = t + s
                deadline = t + edge.dist * self.ii
                route, probe = self._route_one(idx, edge, tile, ready,
                                               tile, deadline, slowdown_of,
                                               slow)
                if route is None:
                    if probe is not None and probe > deadline:
                        # The wait starts after the op retires; issuing
                        # later cannot shrink it, so the shortfall is
                        # constant — jump straight past the hopeless
                        # issue times instead of crawling.
                        return probe - deadline
                    return 1
                routes[idx] = route
                continue
            if edge.dst not in self.placements:
                continue
            dst = self.placements[edge.dst]
            ready = t + s
            deadline = dst.time + edge.dist * self.ii
            route, probe = self._route_one(idx, edge, tile, ready,
                                           dst.tile, deadline, slowdown_of,
                                           slow)
            if route is None:
                # The consumer's deadline is fixed; issuing this node
                # later only makes it worse.
                return _BREAK
            routes[idx] = route
            latency += route.arrival - ready
        return routes, latency

    def _route_one(self, idx: int, edge: DFGEdge, src_tile: int, ready: int,
                   dst_tile: int, deadline: int, slowdown_of,
                   slow: tuple[int, ...], horizon: int | None = None,
                   ) -> tuple[Route | None, int | None]:
        self.stats.routes_searched += 1
        found, probe = find_route(self.mrrg, slowdown_of, src_tile, ready,
                                  dst_tile, deadline, horizon=horizon,
                                  memo=self.memo, slow=slow)
        if found is None:
            return None, probe
        try:
            self.mrrg.pool.claim_route(found.path, ready, found.depart,
                                       deadline, slow)
        except MappingError:
            return None, probe
        route = Route(
            edge_index=idx,
            src_node=edge.src,
            dst_node=edge.dst,
            path=found.path,
            depart=found.depart,
            arrival=found.arrival,
            deadline=deadline,
        )
        return route, probe

    # -- commit -----------------------------------------------------------

    def _commit(self, node: int, candidate: _Candidate) -> None:
        tile, t, level = candidate.tile, candidate.time, candidate.level
        island = self.cgra.island_of(tile).id
        if self.island_levels.get(island) is None:
            self.island_levels[island] = level
        slowdown_of = self._slowdown_fn(None, None)
        slow = self._slow_vector(None, None)
        duration = self._op_cycles(node, tile) * level.slowdown
        self.mrrg.claim_all(op_claims(tile, t, duration))
        routed = self._route_adjacent(node, tile, t, duration, slowdown_of,
                                      slow)
        if not isinstance(routed, tuple):
            raise MappingError(
                f"commit failed for node {node} on tile {tile} at t={t}; "
                "engine invariant violated"
            )
        routes, _latency = routed
        self.routes.update(routes)
        self.placements[node] = Placement(node, tile, t)
        self.stats.placements_committed += 1
        # Any island a committed route passes through must be powered;
        # unassigned transit islands are pinned to normal (the slowdown
        # the route was timed with).
        for route in routes.values():
            for hop_tile in route.path:
                hop_island = self.cgra.island_of(hop_tile).id
                if self.island_levels.get(hop_island) is None:
                    self.island_levels[hop_island] = self.cgra.dvfs.normal

    def _finish(self) -> Mapping:
        tile_levels: dict[int, DVFSLevel] = {}
        island_levels: dict[int, DVFSLevel] = {}
        for isl in self.cgra.islands:
            level = self.island_levels.get(isl.id)
            if level is None:
                level = (
                    self.cgra.dvfs.power_gated if self.config.dvfs_aware
                    else self.cgra.dvfs.normal
                )
            island_levels[isl.id] = level
            for tile in isl.tile_ids:
                tile_levels[tile] = level
        return Mapping(
            dfg=self.dfg,
            cgra=self.cgra,
            ii=self.ii,
            placements=self.placements,
            routes=self.routes,
            tile_levels=tile_levels,
            island_levels=island_levels,
            labels=dict(self.labels),
            strategy="iced" if self.config.dvfs_aware else "baseline",
            xbar_capacity=self.config.xbar_capacity,
        )
