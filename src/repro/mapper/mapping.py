"""Mapping result objects: placements, routes and DVFS level assignment."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arch.cgra import CGRA
from repro.arch.dvfs import DVFSLevel
from repro.dfg.graph import DFG
from repro.errors import ValidationError


@dataclass(frozen=True)
class Placement:
    """A DFG node bound to a tile at a schedule time.

    ``time`` is the node's issue time in the absolute (non-modulo)
    schedule frame of one loop iteration; resource slots are its value
    modulo II.
    """

    node: int
    tile: int
    time: int


@dataclass(frozen=True)
class Route:
    """One routed DFG edge.

    The producer's value waits in the source tile's registers during
    ``[ready, depart)``, traverses ``path`` with back-to-back hops, and
    waits in the destination tile's registers until the consumer reads
    it at ``deadline`` (= consumer issue time + dist * II).

    ``path`` lists tiles from producer to consumer inclusive; a
    single-element path means producer and consumer share a tile.
    """

    edge_index: int
    src_node: int
    dst_node: int
    path: tuple[int, ...]
    depart: int
    arrival: int
    deadline: int

    @property
    def num_hops(self) -> int:
        return len(self.path) - 1


@dataclass
class Mapping:
    """A complete mapping of a DFG onto a CGRA at initiation interval II."""

    dfg: DFG
    cgra: CGRA
    ii: int
    placements: dict[int, Placement]
    routes: dict[int, Route]
    tile_levels: dict[int, DVFSLevel]
    island_levels: dict[int, DVFSLevel] = field(default_factory=dict)
    labels: dict[int, DVFSLevel] = field(default_factory=dict)
    strategy: str = "baseline"
    xbar_capacity: int = 4

    # -- levels ------------------------------------------------------------

    def level_of(self, tile: int) -> DVFSLevel:
        try:
            return self.tile_levels[tile]
        except KeyError:
            raise ValidationError(f"tile {tile} has no DVFS level") from None

    def slowdown(self, tile: int) -> int:
        level = self.level_of(tile)
        if level.is_gated:
            raise ValidationError(f"tile {tile} is power gated but queried")
        return level.slowdown

    def with_tile_levels(self, tile_levels: dict[int, DVFSLevel],
                         strategy: str | None = None) -> "Mapping":
        """A copy with different per-tile levels (per-tile DVFS post-pass)."""
        return replace(
            self,
            tile_levels=dict(tile_levels),
            island_levels={},
            strategy=strategy if strategy is not None else self.strategy,
        )

    # -- occupancy ----------------------------------------------------------

    def tiles_used(self) -> set[int]:
        """Tiles hosting at least one op or touched by at least one route."""
        used = {p.tile for p in self.placements.values()}
        for route in self.routes.values():
            used.update(route.path)
        return used

    def gated_tiles(self) -> set[int]:
        return {
            t for t, level in self.tile_levels.items() if level.is_gated
        }

    def ops_on_tile(self, tile: int) -> list[Placement]:
        return sorted(
            (p for p in self.placements.values() if p.tile == tile),
            key=lambda p: p.time,
        )

    # -- reporting ------------------------------------------------------------

    def schedule_depth(self) -> int:
        """Latest event time — the pipeline fill depth in base cycles."""
        depth = 0
        for node, placement in self.placements.items():
            duration = self.cgra.op_latency(
                placement.tile, self.dfg.node(node).opcode
            ) * self.slowdown(placement.tile)
            depth = max(depth, placement.time + duration)
        for route in self.routes.values():
            depth = max(depth, route.arrival)
        return depth

    def summary(self) -> str:
        used = len(self.tiles_used())
        gated = len(self.gated_tiles())
        return (
            f"{self.dfg.name} on {self.cgra.name} [{self.strategy}]: "
            f"II={self.ii}, {len(self.placements)} ops on {used} tiles, "
            f"{gated} gated"
        )

    def to_dict(self) -> dict:
        # Dict keys are strings so the payload is a JSON fixpoint:
        # dump -> parse -> dump is byte-identical, which the on-disk
        # artifact cache's byte-stability contract depends on.
        return {
            "kernel": self.dfg.name,
            "cgra": self.cgra.name,
            "strategy": self.strategy,
            "ii": self.ii,
            "xbar_capacity": self.xbar_capacity,
            "placements": {
                str(n): {"tile": p.tile, "time": p.time}
                for n, p in self.placements.items()
            },
            "routes": {
                str(i): {
                    "src": r.src_node,
                    "dst": r.dst_node,
                    "path": list(r.path),
                    "depart": r.depart,
                    "arrival": r.arrival,
                    "deadline": r.deadline,
                }
                for i, r in self.routes.items()
            },
            "tile_levels": {
                str(t): level.name for t, level in self.tile_levels.items()
            },
            "island_levels": {
                str(i): level.name
                for i, level in self.island_levels.items()
            },
            "labels": {
                str(n): level.name for n, level in self.labels.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict, dfg: DFG, cgra: CGRA) -> "Mapping":
        """Rebuild a mapping from :meth:`to_dict` output.

        The DFG and fabric are not serialized (they are reproducible
        from the kernel name and fabric parameters); callers supply
        matching instances. The result should be re-validated with
        :func:`repro.mapper.validation.validate_mapping` — deserialized
        artifacts are untrusted by convention.
        """
        if data["kernel"] != dfg.name:
            raise ValidationError(
                f"mapping is for kernel {data['kernel']!r}, got "
                f"{dfg.name!r}"
            )
        level = cgra.dvfs.level_named
        placements = {
            int(n): Placement(int(n), p["tile"], p["time"])
            for n, p in data["placements"].items()
        }
        routes = {
            int(i): Route(
                edge_index=int(i),
                src_node=r["src"],
                dst_node=r["dst"],
                path=tuple(r["path"]),
                depart=r["depart"],
                arrival=r["arrival"],
                deadline=r["deadline"],
            )
            for i, r in data["routes"].items()
        }
        return cls(
            dfg=dfg,
            cgra=cgra,
            ii=data["ii"],
            placements=placements,
            routes=routes,
            tile_levels={
                int(t): level(name)
                for t, name in data["tile_levels"].items()
            },
            island_levels={
                int(i): level(name)
                for i, name in data.get("island_levels", {}).items()
            },
            labels={
                int(n): level(name)
                for n, name in data.get("labels", {}).items()
            },
            strategy=data.get("strategy", "baseline"),
            xbar_capacity=data.get("xbar_capacity", 4),
        )
