"""Configuration-word (bitstream) generation from a mapping.

A spatio-temporal CGRA executes a modulo schedule by replaying, every II
cycles, one configuration word per tile per slot. This module lowers a
validated :class:`~repro.mapper.mapping.Mapping` into a complete,
*executable* configuration image — the artifact a DMA engine would load
into each tile's control memory (Fig 5's "control memory" path), and
the input of the machine-level simulator (:mod:`repro.machine`).

Encoding model (elastic, tag-indexed — UE-CGRA-lineage buffers):

* every in-flight value lives in a per-edge FIFO queue on some tile;
* an FU issue word names its opcode, one *operand selector* per input
  port (an edge queue to pop, or an immediate), and the list of edge
  queues its result fans out into;
* a *send* word pops an edge queue and injects the value into a mesh
  link, which delivers it to the neighbour's matching queue after the
  receiving tile's clock-domain delay;
* LOAD/STORE words carry their array's base address, CMP words their
  comparison operator, PHI words their initialization immediate.

The generator is strict: it re-derives everything from the mapping's
placements, routes and timing reconstruction, and refuses to emit
colliding control words — one more independent consistency check on
the mapper.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.dfg.ops import Opcode
from repro.errors import ValidationError
from repro.frontend.lower import LoweredKernel
from repro.mapper.mapping import Mapping
from repro.mapper.timing import compute_timing


class PortName(enum.Enum):
    """Mesh directions a tile's crossbar can drive."""

    NORTH = "N"
    WEST = "W"
    EAST = "E"
    SOUTH = "S"
    NORTHWEST = "NW"
    NORTHEAST = "NE"
    SOUTHWEST = "SW"
    SOUTHEAST = "SE"


def _direction(cgra, src: int, dst: int) -> PortName:
    """The output port of ``src`` that reaches neighbour ``dst``."""
    a, b = cgra.tile(src), cgra.tile(dst)
    dx = b.x - a.x
    dy = b.y - a.y
    # Torus wrap: a +/-(n-1) offset is a single wrapped hop.
    if abs(dx) > 1:
        dx = -1 if dx > 0 else 1
    if abs(dy) > 1:
        dy = -1 if dy > 0 else 1
    name = {(0, 1): "S", (0, -1): "N", (1, 0): "E", (-1, 0): "W",
            (-1, -1): "NW", (1, -1): "NE", (-1, 1): "SW",
            (1, 1): "SE"}.get((dx, dy))
    if name is None:
        raise ValidationError(
            f"tiles {src} and {dst} are not neighbours"
        )
    return PortName(name)


@dataclass
class OperandSel:
    """One FU input-port selector.

    ``phi`` selectors additionally carry the loop-carried distance: the
    first ``dist`` firings consume the initialization immediate, every
    later one must wait for the back-edge queue.
    """

    kind: str          # "edge" | "imm" | "phi"
    edge: int | None = None
    value: float | None = None   # immediate / PHI init
    dist: int = 0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "edge": self.edge, "value": self.value,
                "dist": self.dist}


@dataclass
class Send:
    """Pop an edge queue and inject its value into a mesh link."""

    edge: int
    to_port: str
    to_tile: int
    delay: int  # base cycles until delivery (receiver's clock domain)

    def to_dict(self) -> dict:
        return {"edge": self.edge, "to": self.to_port,
                "to_tile": self.to_tile, "delay": self.delay}


@dataclass
class ConfigWord:
    """One tile's control word for one slot of the II."""

    opcode: Opcode | None = None
    node: int | None = None
    operands: list[OperandSel] = field(default_factory=list)
    out_edges: list[int] = field(default_factory=list)
    sends: list[Send] = field(default_factory=list)
    latency: int = 1           # base cycles the issue takes
    mem_base: int | None = None
    mem_index_const: int | None = None
    array: str | None = None
    cmp_op: str | None = None

    @property
    def is_idle(self) -> bool:
        return self.opcode is None and not self.sends

    def to_dict(self) -> dict:
        return {
            "opcode": self.opcode.name if self.opcode else None,
            "node": self.node,
            "operands": [op.to_dict() for op in self.operands],
            "out_edges": list(self.out_edges),
            "sends": [s.to_dict() for s in self.sends],
            "latency": self.latency,
            "mem_base": self.mem_base,
            "mem_index_const": self.mem_index_const,
            "array": self.array,
            "cmp_op": self.cmp_op,
        }


@dataclass
class Bitstream:
    """The full configuration image of a mapping."""

    kernel: str
    fabric: str
    ii: int
    words: dict[int, list[ConfigWord]]
    levels: dict[int, str]
    memory_layout: dict[str, int] = field(default_factory=dict)

    def words_used(self) -> int:
        """Non-idle configuration words (control-memory pressure)."""
        return sum(
            1 for slots in self.words.values()
            for word in slots if not word.is_idle
        )

    def to_json(self, indent: int | None = None) -> str:
        payload = {
            "kernel": self.kernel,
            "fabric": self.fabric,
            "ii": self.ii,
            "islands": self.levels,
            "memory_layout": self.memory_layout,
            "tiles": {
                str(tile): [w.to_dict() for w in slots]
                for tile, slots in self.words.items()
            },
        }
        return json.dumps(payload, indent=indent)


def memory_layout_of(lowered: LoweredKernel) -> dict[str, int]:
    """Array -> base word address: arrays packed in declaration order."""
    layout: dict[str, int] = {}
    offset = 0
    for array, size in lowered.kernel.arrays.items():
        layout[array] = offset
        offset += size
    return layout


def immediates_from_lowered(
    lowered: LoweredKernel,
    externals: dict[str, float] | None = None,
) -> dict[int, float]:
    """CONST-node values (and resolved externals) for the generator."""
    externals = externals or {}
    values: dict[int, float] = {}
    for node_id, info in lowered.meta.items():
        if "value" in info:
            values[node_id] = float(info["value"])
        elif "external" in info:
            values[node_id] = float(externals.get(info["external"], 0.0))
    return values


def phi_inits_from_lowered(
    lowered: LoweredKernel,
    externals: dict[str, float] | None = None,
) -> dict[int, float]:
    """PHI-node initialization values for the generator."""
    externals = externals or {}
    inits: dict[int, float] = {}
    for node_id, info in lowered.meta.items():
        if "init" in info:
            inits[node_id] = float(info["init"])
        elif "init_external" in info:
            inits[node_id] = float(
                externals.get(info["init_external"], 0.0)
            )
    return inits


def generate_bitstream(mapping: Mapping,
                       immediates: dict[int, float] | None = None,
                       phi_inits: dict[int, float] | None = None,
                       memory_layout: dict[str, int] | None = None,
                       node_meta: dict[int, dict] | None = None,
                       ) -> Bitstream:
    """Lower a validated mapping into per-tile configuration words.

    ``immediates``/``phi_inits``/``memory_layout``/``node_meta`` carry
    the semantic annotations of frontend-lowered kernels (use the
    ``*_from_lowered`` helpers); purely structural kernels (the Table I
    suite) can omit them — the bitstream is then schedule-complete but
    executes on zero-valued immediates.
    """
    report = compute_timing(mapping)  # refuses inconsistent mappings
    cgra, dfg, ii = mapping.cgra, mapping.dfg, mapping.ii
    immediates = immediates or {}
    phi_inits = phi_inits or {}
    node_meta = node_meta or {}
    memory_layout = memory_layout or {}
    edges = dfg.edges()
    words: dict[int, list[ConfigWord]] = {
        tile.id: [ConfigWord() for _ in range(ii)] for tile in cgra.tiles
    }

    # -- FU issue words -----------------------------------------------------
    for node_id, placement in mapping.placements.items():
        node = dfg.node(node_id)
        slot = placement.time % ii
        word = words[placement.tile][slot]
        if word.opcode is not None:
            raise ValidationError(
                f"bitstream collision: tile {placement.tile} slot {slot} "
                f"already issues {word.opcode.name}"
            )
        word.opcode = node.opcode
        word.node = node_id
        word.latency = (
            cgra.op_latency(placement.tile, node.opcode)
            * mapping.slowdown(placement.tile)
        )
        word.operands = _operand_selectors(
            dfg, mapping, node_id, immediates, phi_inits,
        )
        word.out_edges = [
            idx for idx, edge in enumerate(edges)
            if edge.src == node_id and idx in mapping.routes
        ]
        info = node_meta.get(node_id, {})
        if node.opcode is Opcode.CMP:
            word.cmp_op = info.get("op", "<")
        if node.opcode in (Opcode.LOAD, Opcode.STORE):
            word.array = info.get("array")
            if word.array is not None:
                word.mem_base = memory_layout.get(word.array, 0)
            if info.get("index_const") is not None:
                word.mem_index_const = int(info["index_const"])

    # -- send words: one per link traversal ---------------------------------
    for idx, route in mapping.routes.items():
        timing = report.edge_timings[idx]
        t = timing.depart
        for hop_src, hop_dst in zip(route.path, route.path[1:]):
            delay = mapping.slowdown(hop_dst)
            words[hop_src][t % ii].sends.append(Send(
                edge=idx,
                to_port=_direction(cgra, hop_src, hop_dst).value,
                to_tile=hop_dst,
                delay=delay,
            ))
            t += delay

    levels = {
        island.id: mapping.tile_levels[island.tile_ids[0]].name
        for island in cgra.islands
    }
    return Bitstream(
        kernel=dfg.name,
        fabric=cgra.name,
        ii=ii,
        words=words,
        levels=levels,
        memory_layout=dict(memory_layout),
    )


def bitstream_for_lowered(mapping: Mapping, lowered: LoweredKernel,
                          externals: dict[str, float] | None = None,
                          ) -> Bitstream:
    """Convenience: a fully annotated, machine-executable bitstream."""
    return generate_bitstream(
        mapping,
        immediates=immediates_from_lowered(lowered, externals),
        phi_inits=phi_inits_from_lowered(lowered, externals),
        memory_layout=memory_layout_of(lowered),
        node_meta=lowered.meta,
    )


def _operand_selectors(dfg, mapping: Mapping, node_id: int,
                       immediates: dict[int, float],
                       phi_inits: dict[int, float]) -> list[OperandSel]:
    """One selector per input port, in port order."""
    selectors: list[tuple[int, OperandSel]] = []
    for idx, edge in enumerate(dfg.edges()):
        if edge.dst != node_id:
            continue
        if idx in mapping.routes:
            init = phi_inits.get(node_id)
            if edge.dist >= 1:
                selectors.append((edge.port, OperandSel(
                    "phi", edge=idx,
                    value=init if init is not None else 0.0,
                    dist=edge.dist,
                )))
            else:
                selectors.append((edge.port, OperandSel("edge", edge=idx)))
        else:  # immediate (CONST) operand
            value = immediates.get(edge.src, 0.0)
            selectors.append((edge.port, OperandSel("imm", value=value)))
    selectors.sort(key=lambda pair: pair[0])
    return [sel for _port, sel in selectors]
