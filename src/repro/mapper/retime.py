"""Re-timing a finished mapping under different per-tile DVFS levels.

Slowing a tile stretches its operations and routing hops; downstream
issue times must slip to compensate. Placements (node -> tile) and route
paths are kept; issue times are recomputed as the modulo-ASAP fixpoint
of the stretched latencies and transits, and route timings are rebuilt
from them. The result is either a consistent mapping at the *same* II
(performance preserved) or ``None`` when some recurrence cycle cannot
absorb the stretch — in which case the caller must keep a faster level.
"""

from __future__ import annotations

from dataclasses import replace

from repro.arch.dvfs import DVFSLevel
from repro.mapper.mapping import Mapping, Placement, Route
from repro.mapper.routing import route_arrival
from repro.mapper.schedule import modulo_schedule_times


def retime_with_levels(mapping: Mapping,
                       tile_levels: dict[int, DVFSLevel],
                       strategy: str | None = None) -> Mapping | None:
    """Recompute issue times under ``tile_levels``; None if infeasible."""
    dfg = mapping.dfg
    edges = dfg.edges()

    def slowdown(tile: int) -> int:
        level = tile_levels[tile]
        return 0 if level.is_gated else level.slowdown

    for placement in mapping.placements.values():
        if tile_levels[placement.tile].is_gated:
            return None
    for route in mapping.routes.values():
        if any(tile_levels[t].is_gated for t in route.path):
            return None

    def latency_of(node: int) -> int:
        placement = mapping.placements.get(node)
        if placement is None:
            return 0  # immediate (CONST) operand: no fabric latency
        op_latency = mapping.cgra.op_latency(
            placement.tile, dfg.node(node).opcode
        )
        return op_latency * slowdown(placement.tile)

    def transit_of(idx: int) -> int:
        route = mapping.routes.get(idx)
        if route is None:
            return 0  # immediate edge: value comes from the config word
        edge = edges[idx]
        src_placement = mapping.placements[edge.src]
        original_ready = (
            src_placement.time
            + mapping.cgra.op_latency(src_placement.tile,
                                      dfg.node(edge.src).opcode)
            * mapping.slowdown(src_placement.tile)
        )
        # The route may have waited at the source to dodge busy links;
        # keep that wait as a conservative part of the transit.
        wait = max(0, route.depart - original_ready)
        return wait + sum(slowdown(t) for t in route.path[1:])

    floor = {n: p.time for n, p in mapping.placements.items()}
    times = modulo_schedule_times(dfg, mapping.ii, latency_of, transit_of,
                                  floor=floor)
    if times is None:
        return None

    placements = {
        n: Placement(n, p.tile, times[n])
        for n, p in mapping.placements.items()
    }
    routes: dict[int, Route] = {}
    for idx, route in mapping.routes.items():
        edge = edges[idx]
        ready = times[edge.src] + latency_of(edge.src)
        depart = max(route.depart, ready)
        arrival = route_arrival(route.path, depart, slowdown)
        deadline = times[edge.dst] + edge.dist * mapping.ii
        if arrival > deadline:
            return None  # should not happen: transit_of fed the solver
        routes[idx] = replace(route, depart=depart, arrival=arrival,
                              deadline=deadline)
    return replace(
        mapping,
        placements=placements,
        routes=routes,
        tile_levels=dict(tile_levels),
        island_levels={},
        strategy=strategy if strategy is not None else mapping.strategy,
    )
