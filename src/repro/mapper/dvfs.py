"""ICED's DVFS-aware mapper (Algorithm 2 with Algorithm 1 labels).

Compared to the baseline, the DVFS-aware run labels every node with a
preferred level, assigns island levels greedily as placement proceeds
(first node in an island decides), refuses to put a node on an island
slower than its label, and charges label mismatch plus fresh-island
activation in the cost — which concentrates the kernel into few islands
and leaves the rest power gated.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.dfg.graph import DFG
from repro.mapper.engine import EngineConfig
from repro.mapper.mapping import Mapping


def map_dvfs_aware(dfg: DFG, cgra: CGRA,
                   config: EngineConfig | None = None,
                   refine: bool = True) -> Mapping:
    """Map ``dfg`` with island-level DVFS awareness (the ICED strategy).

    ``refine`` runs the post-mapping island refinement (gate untouched
    islands, slow the rest as far as the schedule provably tolerates);
    disable it to inspect Algorithm 2's raw greedy assignment.

    Thin wrapper over :func:`repro.compile.compile_dfg` — the engine
    placement is served from the mapping cache on repeated compiles.
    """
    from repro.compile import compile_dfg  # lazy: breaks import cycle

    return compile_dfg(dfg, cgra, "iced", config, refine=refine).mapping
