"""Modulo-schedule time assignment via difference constraints.

For an initiation interval II, a dependence u -> v with iteration
distance d and total producer latency + transit L imposes

    t(v) + d * II >= t(u) + L        i.e.        t(v) >= t(u) + L - d * II.

The earliest consistent assignment (modulo-ASAP) is the longest-path
fixpoint of these constraints, computed Bellman-Ford style. It is what
lets a PHI at the head of a recurrence issue *late* enough that the
cycle closes within the II — the classic reason naive ASAP-from-sources
scheduling cannot reach RecMII.

The same routine re-times a finished mapping after per-tile DVFS
changes: latencies become the tiles' slowdowns and transits the
committed routes' hop times.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.dfg.graph import DFG


def modulo_schedule_times(
    dfg: DFG,
    ii: int,
    latency_of: Callable[[int], int],
    transit_of: Callable[[int], int] | None = None,
    floor: dict[int, int] | None = None,
) -> dict[int, int] | None:
    """Earliest consistent issue times, or ``None`` if none exist.

    Args:
        dfg: The dataflow graph.
        ii: Initiation interval.
        latency_of: Node id -> execution latency in base cycles.
        transit_of: Edge index -> routing transit in base cycles
            (defaults to 0, the pre-placement estimate).
        floor: Optional per-node lower bounds. Re-timing an existing
            mapping anchors here (its original issue times) so nodes
            only ever slip *later* — collapsing to plain ASAP would
            resurrect the FU conflicts the original schedule dodged.

    Returns ``None`` when the constraints diverge, i.e. some recurrence
    cycle's total latency exceeds ``distance * ii``.
    """
    times = {n: (floor.get(n, 0) if floor else 0) for n in dfg.node_ids()}
    edges = list(enumerate(dfg.edges()))
    num_nodes = dfg.num_nodes
    for _ in range(num_nodes + 1):
        changed = False
        for idx, edge in edges:
            transit = transit_of(idx) if transit_of is not None else 0
            bound = (
                times[edge.src] + latency_of(edge.src) + transit
                - edge.dist * ii
            )
            if bound > times[edge.dst]:
                times[edge.dst] = bound
                changed = True
        if not changed:
            return times
    return None  # still relaxing after |V| passes: positive cycle
