"""The conventional (DVFS-oblivious) mapper — the paper's **Baseline**.

A standard II-minimizing modulo-scheduling heuristic: topological
placement over the MRRG with Dijkstra routing, every tile at the nominal
level. Utilization and energy are whatever falls out; no labeling, no
islands, no gating.
"""

from __future__ import annotations

from dataclasses import replace

from repro.arch.cgra import CGRA
from repro.dfg.graph import DFG
from repro.mapper.engine import EngineConfig, map_dfg
from repro.mapper.mapping import Mapping


def map_baseline(dfg: DFG, cgra: CGRA,
                 config: EngineConfig | None = None) -> Mapping:
    """Map ``dfg`` with the conventional strategy (all tiles at normal)."""
    config = config or EngineConfig()
    if config.dvfs_aware:
        config = replace(config, dvfs_aware=False)
    return map_dfg(dfg, cgra, config)
