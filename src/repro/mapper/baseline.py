"""The conventional (DVFS-oblivious) mapper — the paper's **Baseline**.

A standard II-minimizing modulo-scheduling heuristic: topological
placement over the MRRG with Dijkstra routing, every tile at the nominal
level. Utilization and energy are whatever falls out; no labeling, no
islands, no gating.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.dfg.graph import DFG
from repro.mapper.engine import EngineConfig
from repro.mapper.mapping import Mapping


def map_baseline(dfg: DFG, cgra: CGRA,
                 config: EngineConfig | None = None) -> Mapping:
    """Map ``dfg`` with the conventional strategy (all tiles at normal).

    Thin wrapper over :func:`repro.compile.compile_dfg` — the pipeline
    forces the engine DVFS-oblivious and serves repeated compiles from
    the mapping cache.
    """
    from repro.compile import compile_dfg  # lazy: breaks import cycle

    return compile_dfg(dfg, cgra, "baseline", config).mapping
