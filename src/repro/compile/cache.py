"""The content-addressed mapping cache.

Artifacts are stored as canonical JSON strings of
:meth:`repro.mapper.mapping.Mapping.to_dict` keyed by
:func:`repro.compile.fingerprint.mapping_cache_key`. Storing the
serialized form (rather than the live object) buys three things:

* **isolation** — every hit rehydrates a fresh ``Mapping``, so no two
  callers can corrupt each other through a shared mutable artifact;
* **byte-stability** — the determinism tests compare the cached bytes
  directly across fresh pipelines;
* **honesty** — rehydrated artifacts are untrusted by convention and
  re-validated by the pipeline before being returned, exactly like any
  other deserialized mapping.

The cache is bounded (LRU) and thread-safe; one process-wide instance
serves every entry point so experiment harnesses, the streaming
partitioner and the CLI all share work.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.arch.cgra import CGRA
from repro.dfg.graph import DFG
from repro.mapper.mapping import Mapping

#: Default entry bound: a full figure sweep uses a few hundred entries;
#: the cap only matters for very long-lived server processes.
DEFAULT_MAX_ENTRIES = 4096


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`MappingCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }


@dataclass
class MappingCache:
    """Bounded, thread-safe, content-addressed store of mappings."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict)
    _meta: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def lookup(self, key: str, dfg: DFG, cgra: CGRA,
               backend: str | None = None) -> Mapping | None:
        """Rehydrate the artifact under ``key`` against the caller's DFG
        and fabric instances; ``None`` on miss. The caller must still
        validate the result before trusting it. When ``backend`` is
        named and the entry's recorded provenance names a *different*
        backend, the entry is not served (a keying bug must surface as
        a miss, never as a wrong artifact)."""
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None and backend is not None:
                tagged = self._meta.get(key, {}).get("backend")
                if tagged is not None and tagged != backend:
                    blob = None
            if blob is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return Mapping.from_dict(json.loads(blob), dfg, cgra)

    def meta(self, key: str) -> dict:
        """Provenance recorded with the entry (empty when unknown)."""
        with self._lock:
            return dict(self._meta.get(key, {}))

    def store(self, key: str, mapping: Mapping, *,
              engine_stats: dict[str, int] | None = None,
              backend: str | None = None,
              meta: dict | None = None) -> None:
        """Store a mapping (``engine_stats`` is accepted for protocol
        compatibility with :class:`DiskCache`; the memory tier has no
        envelope to embed it in)."""
        blob = json.dumps(mapping.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        self.store_serialized(key, blob, backend=backend, meta=meta)

    def store_serialized(self, key: str, blob: str,
                         backend: str | None = None,
                         meta: dict | None = None) -> None:
        """Insert a pre-serialized canonical artifact (promotion from a
        disk tier or a pool worker's returned blob)."""
        with self._lock:
            self._entries[key] = blob
            self._entries.move_to_end(key)
            record = dict(meta or {})
            if backend is not None:
                record.setdefault("backend", backend)
            if record:
                self._meta[key] = record
            else:
                self._meta.pop(key, None)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._meta.pop(evicted, None)
                self.stats.evictions += 1

    def upgrade_best(self, key: str, blob: str, *, backend: str,
                     ii: int, cost: float, kernel: str = "",
                     optimal: bool = False) -> bool:
        """Replace the entry under ``key`` only by a strictly better
        (II, cost) mapping; provenance of the displaced entry is kept
        under ``upgraded_from``. Returns True when stored."""
        with self._lock:
            incumbent = self._meta.get(key, {})
        provenance = None
        old_ii = incumbent.get("ii")
        if isinstance(old_ii, int):
            old_cost = incumbent.get("cost")
            old_rank = (old_ii, old_cost if isinstance(
                old_cost, (int, float)) else float("inf"))
            if (ii, cost) >= old_rank:
                return False
            provenance = {
                "backend": incumbent.get("backend", "engine"),
                "ii": old_ii,
                "cost": old_cost,
            }
        meta = {"backend": backend, "optimal": bool(optimal),
                "cost": cost, "ii": int(ii)}
        if provenance is not None:
            meta["upgraded_from"] = provenance
        self.store_serialized(key, blob, meta=meta)
        return True

    def serialized(self, key: str) -> str | None:
        """The raw cached bytes (for byte-identity tests)."""
        with self._lock:
            return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._meta.clear()
            self.stats = CacheStats()

    def stats_dict(self) -> dict[str, int]:
        with self._lock:
            d = self.stats.to_dict()
            d["entries"] = len(self._entries)
        return d


_GLOBAL_CACHE = MappingCache()


def get_cache() -> MappingCache:
    """The process-wide cache every pipeline entry point defaults to."""
    return _GLOBAL_CACHE
