"""The persistent on-disk mapping cache.

The in-memory :class:`~repro.compile.cache.MappingCache` dies with its
process; figure sweeps and CI jobs recompile everything from scratch on
every invocation. This module adds the layer below it: a directory of
JSON artifacts keyed by the same SHA-256 fingerprints, so a *fresh
process* (or a pool worker) can rehydrate mappings its predecessors
compiled.

Design rules, in order of importance:

* **never serve garbage** — every artifact carries a schema tag, its
  own key and the kernel name; anything that fails to parse or
  disagrees with its envelope is *quarantined* (moved aside, counted,
  reported) and treated as a miss, never raised to the compile;
* **never tear** — writers dump to a private temp file in the artifact's
  directory and publish with :func:`os.replace`, which is atomic on
  POSIX and Windows, so concurrent writers (pool workers racing on the
  same key) can interleave freely: readers see either a complete old
  artifact or a complete new one;
* **byte-stability** — artifacts are canonical JSON (sorted keys,
  compact separators) of :meth:`Mapping.to_dict`, exactly like the
  memory cache's blobs, so save -> load -> save is byte-identical and
  the determinism tests can compare files across processes.

:class:`TieredCache` stacks the memory cache in front of a
:class:`DiskCache` behind the same ``lookup``/``store`` protocol the
pipeline's ``place_route`` pass speaks, so any entry point can be
pointed at the tiered store without code changes.

Layout on disk (``SCHEMA_VERSION`` bumps orphan old trees wholesale)::

    .repro-cache/
      v1/
        ab/abcdef....json      # artifact, fanned out by key prefix
        ...
      quarantine/              # corrupt artifacts, moved aside
      shards/                  # per-server cache shards (repro serve)
        api-0/
          v1/ab/abcdef....json
          quarantine/

**Cache shards.** A ``DiskCache(root, shard="api-0")`` *writes* only
under its private ``shards/api-0/`` subtree but *reads* through every
sibling shard (and the unsharded tree) on a local miss — so N daemons
pointed at one artifact store share each other's compiles without ever
contending on the same artifact files, and without trusting them: a
peer's artifact passes exactly the same envelope validation, except
that a corrupt peer file is skipped rather than quarantined (it is not
ours to move).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.arch.cgra import CGRA
from repro.compile.cache import MappingCache
from repro.dfg.graph import DFG
from repro.mapper.mapping import Mapping

#: Bump when the artifact envelope changes incompatibly; old version
#: directories are simply ignored (and reclaimed by ``gc``/``clear``).
SCHEMA_VERSION = 1

#: Default cache root, relative to the working directory.
DEFAULT_ROOT = ".repro-cache"

#: Environment override for the cache root (CLI and CI use it).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_root() -> str:
    """The cache root the CLIs default to: ``$REPRO_CACHE_DIR`` or
    ``.repro-cache`` under the current directory."""
    return os.environ.get(ENV_CACHE_DIR) or DEFAULT_ROOT


@dataclass
class DiskCacheStats:
    """Hit/miss/housekeeping accounting of one :class:`DiskCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0
    evictions: int = 0
    peer_hits: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
            "peer_hits": self.peer_hits,
        }


class DiskCache:
    """Content-addressed mapping artifacts persisted under ``root``.

    Speaks the same ``lookup(key, dfg, cgra)`` / ``store(key, mapping)``
    protocol as :class:`~repro.compile.cache.MappingCache`, so the
    pipeline can use either interchangeably. All failure modes on the
    read path degrade to a miss.
    """

    def __init__(self, root: str | Path | None = None,
                 shard: str | None = None):
        self.root = Path(root) if root is not None else Path(default_cache_root())
        self.shard = str(shard) if shard else None
        base = (self.root / "shards" / self.shard if self.shard
                else self.root)
        self.version_dir = base / f"v{SCHEMA_VERSION}"
        self.quarantine_dir = base / "quarantine"
        self.stats = DiskCacheStats()
        self._peers_epoch = 0
        self._peers_cache: tuple[int, list[Path]] | None = None

    # -- paths --------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.version_dir / key[:2] / f"{key}.json"

    def invalidate_peers(self) -> None:
        """Drop the memoized peer-shard listing.

        Called on every own write (a writer knows the topology may have
        changed — not least because its *own* first write creates a
        shard) and from ``stats_dict`` (the natural refresh point:
        servers poll ``/cache/stats``, so a long-lived daemon picks up
        newly joined peer shards without rescanning per miss).
        """
        self._peers_epoch += 1

    def _peer_version_dirs(self) -> list[Path]:
        """Version dirs of every *other* writer over the same root:
        the unsharded tree (when we are a shard) plus each sibling
        shard, in sorted order for deterministic read preference.

        The listing is memoized per :meth:`invalidate_peers` epoch: a
        burst of misses (a cold sweep probing hundreds of keys) costs
        one ``os.scandir`` of the shards directory, not one per miss —
        the peer *artifact* probes are exact-path reads and stay
        per-key.
        """
        cached = self._peers_cache
        if cached is not None and cached[0] == self._peers_epoch:
            return cached[1]
        epoch = self._peers_epoch
        peers: list[Path] = []
        unsharded = self.root / f"v{SCHEMA_VERSION}"
        if self.shard and unsharded.is_dir():
            peers.append(unsharded)
        shards_dir = self.root / "shards"
        try:
            with os.scandir(shards_dir) as entries:
                names = sorted(
                    entry.name for entry in entries if entry.is_dir()
                )
        except OSError:
            names = []
        for name in names:
            if self.shard is not None and name == self.shard:
                continue
            version_dir = shards_dir / name / f"v{SCHEMA_VERSION}"
            if version_dir.is_dir():
                peers.append(version_dir)
        self._peers_cache = (epoch, peers)
        return peers

    def _peer_path(self, version_dir: Path, key: str) -> Path:
        return version_dir / key[:2] / f"{key}.json"

    def artifact_paths(self) -> list[Path]:
        """Every *own* artifact file currently on disk, sorted by name
        (peer shards are read-through only — housekeeping never
        crosses a shard boundary)."""
        if not self.version_dir.is_dir():
            return []
        return sorted(self.version_dir.glob("*/*.json"))

    # -- read path ----------------------------------------------------------

    def load_blob(self, key: str, backend: str | None = None) -> str | None:
        """The canonical mapping JSON under ``key``; ``None`` on miss.

        Any artifact that fails to parse or whose envelope disagrees
        with ``key`` is quarantined and reported as a miss. When the
        caller names the ``backend`` it expects, the envelope's
        ``backend`` tag must agree: a mismatch is quarantined too.
        Artifacts written before the backend tag existed carry no tag;
        they are servable only for the default ``engine`` backend
        (whose keys they were computed under — the pipeline still
        revalidates them), and quarantined for any other expectation.

        A miss in the own tree falls through to peer shards (other
        servers over the same root); a peer's artifact is validated
        identically, but a corrupt one is *skipped*, never quarantined.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            data = None
        if data is not None:
            try:
                blob = self._validated_blob(data, key, backend)
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                self._quarantine(path)
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return blob
        for version_dir in self._peer_version_dirs():
            try:
                data = self._peer_path(version_dir, key).read_bytes()
            except OSError:
                continue
            try:
                blob = self._validated_blob(data, key, backend)
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                continue  # a peer's corrupt artifact is not ours to move
            self.stats.hits += 1
            self.stats.peer_hits += 1
            return blob
        self.stats.misses += 1
        return None

    @staticmethod
    def _validated_blob(data: bytes, key: str,
                        backend: str | None) -> str:
        """Envelope validation; raises ``ValueError`` family on any
        disagreement, returns the canonical mapping blob."""
        envelope = json.loads(data.decode("utf-8"))
        if not isinstance(envelope, dict):
            raise ValueError("artifact is not a JSON object")
        if envelope.get("schema") != SCHEMA_VERSION:
            raise ValueError("schema tag mismatch")
        if envelope.get("key") != key:
            raise ValueError("key mismatch (misfiled artifact)")
        if backend is not None:
            tagged = envelope.get("backend", "engine")
            if tagged != backend:
                raise ValueError(
                    f"backend mismatch: artifact is {tagged!r}, "
                    f"caller expects {backend!r}"
                )
        mapping_dict = envelope["mapping"]
        if not isinstance(mapping_dict, dict):
            raise ValueError("mapping payload is not an object")
        return json.dumps(mapping_dict, sort_keys=True,
                          separators=(",", ":"))

    def _envelope(self, key: str) -> dict | None:
        """The raw envelope under ``key``, own tree first, then peers."""
        paths = [self._path(key)] + [
            self._peer_path(d, key) for d in self._peer_version_dirs()
        ]
        for path in paths:
            try:
                envelope = json.loads(path.read_bytes().decode("utf-8"))
            except (OSError, ValueError, UnicodeDecodeError):
                continue
            if isinstance(envelope, dict):
                return envelope
        return None

    def meta(self, key: str) -> dict:
        """Provenance of the artifact under ``key`` (empty on miss):
        the producing ``backend``, its ``optimal`` proof flag, the
        mapping ``cost`` and any ``upgraded_from`` history. Peer
        shards are consulted on an own-tree miss, matching
        :meth:`load_blob`."""
        envelope = self._envelope(key)
        if envelope is None:
            return {}
        out = {}
        for field_name in ("backend", "optimal", "cost", "ii",
                           "upgraded_from", "sweep"):
            if field_name in envelope:
                out[field_name] = envelope[field_name]
        return out

    def lookup(self, key: str, dfg: DFG, cgra: CGRA,
               backend: str | None = None) -> Mapping | None:
        """Rehydrate the artifact under ``key``; ``None`` on miss.

        A blob that parses but does not revalidate against the caller's
        DFG/fabric (e.g. a kernel-name mismatch) is quarantined too: it
        can never become servable again under this key.
        """
        blob = self.load_blob(key, backend)
        if blob is None:
            return None
        try:
            return Mapping.from_dict(json.loads(blob), dfg, cgra)
        except Exception:
            self._quarantine(self._path(key))
            self.stats.hits -= 1
            self.stats.misses += 1
            return None

    # -- write path ---------------------------------------------------------

    def store(self, key: str, mapping: Mapping, *,
              engine_stats: dict[str, int] | None = None,
              backend: str | None = None,
              meta: dict | None = None) -> None:
        blob = json.dumps(mapping.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        self.store_serialized(key, blob, kernel=mapping.dfg.name,
                              engine_stats=engine_stats, backend=backend,
                              meta=meta)

    def store_serialized(self, key: str, blob: str,
                         kernel: str = "",
                         engine_stats: dict[str, int] | None = None,
                         backend: str | None = None,
                         meta: dict | None = None) -> None:
        """Publish a pre-serialized canonical mapping blob atomically.

        ``engine_stats`` optionally embeds the search-effort counters of
        the compile that produced the artifact; ``backend`` tags which
        mapper backend produced it and ``meta`` adds provenance fields
        (``optimal``, ``cost``, ``ii``, ``upgraded_from``, and for DSE
        artifacts ``sweep`` — the design-space hash and point index that
        first produced the blob). All are additive envelope fields:
        readers that don't know them ignore them, so the schema version
        is unchanged and cache keys are unaffected — but a reader that
        *names* its expected backend is refused a mismatching artifact
        (see :meth:`load_blob`).
        """
        envelope = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "kernel": kernel or json.loads(blob).get("kernel", ""),
            "mapping": json.loads(blob),
        }
        if engine_stats:
            envelope["engine_stats"] = dict(engine_stats)
        if backend is not None:
            envelope["backend"] = backend
        for field_name in ("optimal", "cost", "ii", "upgraded_from",
                           "sweep"):
            if meta and field_name in meta:
                envelope[field_name] = meta[field_name]
        payload = json.dumps(envelope, sort_keys=True,
                             separators=(",", ":"))
        path = self._path(key)
        # os.makedirs(exist_ok=True) end to end: two processes
        # initializing the same cache root simultaneously must both
        # succeed (the EEXIST race is swallowed at every level).
        os.makedirs(path.parent, exist_ok=True)
        # Private temp name (pid + monotonic ns) in the same directory,
        # then an atomic rename: a concurrent reader sees old-or-new,
        # never a prefix; a concurrent writer's replace simply wins.
        tmp = path.parent / f".{key}.{os.getpid()}.{time.monotonic_ns()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # replace failed midway: don't leak temps
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.stats.stores += 1
        self.invalidate_peers()

    def tag_sweep(self, key: str, space_hash: str,
                  point_index: int) -> bool:
        """Stamp first-producer sweep provenance onto the artifact
        under ``key``: which design-space hash and point index caused
        it to be compiled. Rewrites the envelope in place (atomically,
        preserving every other field, ``engine_stats`` included); an
        artifact that already carries a ``sweep`` tag keeps its
        original producer. Returns True when the tag was written.
        """
        path = self._path(key)
        try:
            envelope = json.loads(path.read_bytes().decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return False
        if not isinstance(envelope, dict) or "sweep" in envelope:
            return False
        envelope["sweep"] = {"space_hash": str(space_hash),
                             "point": int(point_index)}
        payload = json.dumps(envelope, sort_keys=True,
                             separators=(",", ":"))
        tmp = path.parent / f".{key}.{os.getpid()}.{time.monotonic_ns()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            return False
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.invalidate_peers()
        return True

    def upgrade_best(self, key: str, blob: str, *, backend: str,
                     ii: int, cost: float, kernel: str = "",
                     optimal: bool = False) -> bool:
        """Best-known-artifact upgrade: replace the artifact under
        ``key`` only by a *strictly better* mapping.

        "Better" is lexicographic (II, cost). On replacement the new
        envelope records where the old artifact came from
        (``upgraded_from``), so provenance survives the upgrade; on a
        tie or a worse candidate the incumbent is left untouched.
        Returns True when the candidate was stored.
        """
        incumbent = self.meta(key)
        provenance = None
        if incumbent:
            old_ii = incumbent.get("ii")
            old_cost = incumbent.get("cost")
            if isinstance(old_ii, int):
                old_rank = (old_ii, old_cost if isinstance(
                    old_cost, (int, float)) else float("inf"))
                if (ii, cost) >= old_rank:
                    return False
                provenance = {
                    "backend": incumbent.get("backend", "engine"),
                    "ii": old_ii,
                    "cost": old_cost,
                }
        meta = {"optimal": bool(optimal), "cost": cost, "ii": int(ii)}
        if provenance is not None:
            meta["upgraded_from"] = provenance
        self.store_serialized(key, blob, kernel=kernel, backend=backend,
                              meta=meta)
        return True

    # -- housekeeping -------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt artifact aside (best effort, never raises)."""
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            target = self.quarantine_dir / (
                f"{path.name}.{os.getpid()}.{time.monotonic_ns()}.bad"
            )
            os.replace(path, target)
            self.stats.quarantined += 1
        except OSError:
            pass

    def __contains__(self, key: str) -> bool:
        if self._path(key).is_file():
            return True
        return any(self._peer_path(d, key).is_file()
                   for d in self._peer_version_dirs())

    def __len__(self) -> int:
        return len(self.artifact_paths())

    def size_bytes(self) -> int:
        total = 0
        for path in self.artifact_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def quarantined_count(self) -> int:
        if not self.quarantine_dir.is_dir():
            return 0
        return sum(1 for _ in self.quarantine_dir.iterdir())

    def clear(self) -> int:
        """Delete every artifact (and the quarantine); returns count."""
        removed = 0
        for path in self.artifact_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.quarantine_dir.is_dir():
            for path in list(self.quarantine_dir.iterdir()):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def gc(self, max_entries: int | None = None,
           max_age_s: float | None = None) -> int:
        """Evict artifacts least-recently-*written* first.

        ``max_age_s`` drops anything older than the horizon;
        ``max_entries`` then trims the survivors to the newest N. The
        eviction policy is mtime-ordered (writes refresh an artifact's
        clock via the atomic replace), which for a content-addressed
        store is the honest notion of "still in use": sweeps re-store on
        every miss and leave hits untouched.
        """
        paths = self.artifact_paths()
        stamped = []
        for path in paths:
            try:
                stamped.append((path.stat().st_mtime, path))
            except OSError:
                continue
        stamped.sort()  # oldest first
        doomed: list[Path] = []
        if max_age_s is not None:
            horizon = time.time() - max_age_s
            doomed.extend(p for mtime, p in stamped if mtime < horizon)
        if max_entries is not None:
            survivors = [p for _, p in stamped if p not in set(doomed)]
            if len(survivors) > max_entries:
                doomed.extend(survivors[: len(survivors) - max_entries])
        removed = 0
        for path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.stats.evictions += removed
        return removed

    def stats_dict(self) -> dict[str, int]:
        self.invalidate_peers()
        d = self.stats.to_dict()
        d["entries"] = len(self)
        d["bytes"] = self.size_bytes()
        d["quarantine_files"] = self.quarantined_count()
        return d

    def engine_effort(self) -> dict[str, int]:
        """Aggregate engine search-effort counters across artifacts.

        Sums the ``engine_stats`` embedded by cold compiles (artifacts
        written before that field existed simply don't contribute), so
        ``repro cache stats`` can show what the cached mappings cost to
        produce — memo hits, pruned candidates, routes searched.
        """
        totals: dict[str, int] = {}
        counted = 0
        for path in self.artifact_paths():
            try:
                envelope = json.loads(path.read_bytes().decode("utf-8"))
            except (OSError, ValueError, UnicodeDecodeError):
                continue
            if not isinstance(envelope, dict):
                continue
            stats = envelope.get("engine_stats")
            if not isinstance(stats, dict):
                continue
            counted += 1
            for name, value in stats.items():
                if isinstance(value, int):
                    totals[name] = totals.get(name, 0) + value
        totals["artifacts_with_stats"] = counted
        return totals

    def sweep_footprint(self) -> dict[str, dict[str, int]]:
        """Per-sweep cache footprint: artifact count and bytes, grouped
        by the ``sweep`` provenance tag (design-space hash) stamped by
        ``repro dse``. Artifacts without the tag are grouped under
        ``"(untagged)"`` so the report always accounts for the whole
        store. Powers ``repro cache stats`` and lets ``gc`` answer
        "which sweep owns the disk I'm about to reclaim".
        """
        groups: dict[str, dict[str, int]] = {}
        for path in self.artifact_paths():
            try:
                data = path.read_bytes()
                envelope = json.loads(data.decode("utf-8"))
            except (OSError, ValueError, UnicodeDecodeError):
                continue
            if not isinstance(envelope, dict):
                continue
            sweep = envelope.get("sweep")
            label = "(untagged)"
            if isinstance(sweep, dict) and sweep.get("space_hash"):
                label = str(sweep["space_hash"])
            row = groups.setdefault(label, {"artifacts": 0, "bytes": 0})
            row["artifacts"] += 1
            row["bytes"] += len(data)
        return groups


@dataclass
class TieredCache:
    """Memory cache in front, disk cache behind, one protocol.

    ``lookup`` promotes disk hits into the memory tier so repeated
    intra-process compiles skip the filesystem; ``store`` writes
    through to both tiers. Safe to share across threads (each tier is
    independently safe; the composition adds no shared state).
    """

    memory: MappingCache = field(default_factory=MappingCache)
    disk: DiskCache = field(default_factory=DiskCache)

    def lookup(self, key: str, dfg: DFG, cgra: CGRA,
               backend: str | None = None) -> Mapping | None:
        hit = self.memory.lookup(key, dfg, cgra, backend)
        if hit is not None:
            return hit
        blob = self.disk.load_blob(key, backend)
        if blob is None:
            return None
        try:
            mapping = Mapping.from_dict(json.loads(blob), dfg, cgra)
        except Exception:
            return None
        self.memory.store_serialized(key, blob, meta=self.disk.meta(key))
        return mapping

    def meta(self, key: str) -> dict:
        found = self.memory.meta(key)
        return found if found else self.disk.meta(key)

    def store(self, key: str, mapping: Mapping, *,
              engine_stats: dict[str, int] | None = None,
              backend: str | None = None,
              meta: dict | None = None) -> None:
        self.memory.store(key, mapping, backend=backend, meta=meta)
        blob = self.memory.serialized(key)
        if blob is not None:
            self.disk.store_serialized(key, blob, kernel=mapping.dfg.name,
                                       engine_stats=engine_stats,
                                       backend=backend, meta=meta)

    def store_serialized(self, key: str, blob: str,
                         kernel: str = "",
                         engine_stats: dict[str, int] | None = None,
                         backend: str | None = None,
                         meta: dict | None = None) -> None:
        self.memory.store_serialized(key, blob, backend=backend, meta=meta)
        self.disk.store_serialized(key, blob, kernel=kernel,
                                   engine_stats=engine_stats,
                                   backend=backend, meta=meta)

    def upgrade_best(self, key: str, blob: str, *, backend: str,
                     ii: int, cost: float, kernel: str = "",
                     optimal: bool = False) -> bool:
        stored = self.disk.upgrade_best(key, blob, backend=backend, ii=ii,
                                        cost=cost, kernel=kernel,
                                        optimal=optimal)
        if stored:
            self.memory.store_serialized(key, blob,
                                         meta=self.disk.meta(key))
        return stored

    def serialized(self, key: str) -> str | None:
        blob = self.memory.serialized(key)
        if blob is not None:
            return blob
        return self.disk.load_blob(key)

    def __contains__(self, key: str) -> bool:
        return key in self.memory or key in self.disk

    def stats_dict(self) -> dict[str, int]:
        d = {f"memory_{k}": v for k, v in self.memory.stats_dict().items()}
        d.update(
            {f"disk_{k}": v for k, v in self.disk.stats_dict().items()}
        )
        # The headline numbers --stats reports: a tier-crossing lookup
        # counts as one logical hit/miss.
        d["hits"] = self.memory.stats.hits + self.disk.stats.hits
        d["misses"] = self.disk.stats.misses
        d["entries"] = d["disk_entries"]
        return d
