"""Parallel sweep execution over a process pool.

CGRA mapping experiments are embarrassingly parallel: a figure sweep is
a list of independent (kernel, strategy, unroll) compiles, each
seconds-long and CPU-bound. :class:`SweepExecutor` fans such a work
list out across a ``ProcessPoolExecutor`` and merges the results back
**deterministically**:

* results come back in work-list order, never completion order;
* per-item seeds are derived in the *parent* from (sweep seed, item
  index) via :func:`repro.utils.rng.derive_worker_seed`, so a
  ``--jobs N`` sweep is bit-identical to ``--jobs 1`` no matter how
  items land on workers;
* every worker's :class:`PassEvent` stream is carried home and merged
  into the parent's :class:`Instrumentation` in item order, so the
  ``--stats`` table of a parallel sweep aggregates exactly the passes
  that ran, wherever they ran;
* when tracing is on (:func:`repro.obs.current_tracer` returns a
  tracer in the parent), each worker records its item under a fresh
  tracer and metrics registry; the parent *adopts* the span stream
  (ids remapped into its own space) and merges the metric snapshot, in
  item order — so a ``--jobs N`` trace carries exactly the span
  content of a serial one;
* workers share one :class:`~repro.compile.diskcache.DiskCache`
  directory (when configured), so a warm sweep — even from a fresh
  process — rehydrates artifacts instead of recompiling, and the
  parent promotes each worker's engine artifact into its own cache.

Workers return *serialized* mappings (the cache's canonical JSON), not
live objects; the parent rehydrates against its own DFG/fabric
instances and **re-validates every artifact** before handing it out —
a parallel result is held to exactly the cache-hit standard.

``MappingError`` is the one expected per-item failure (a kernel too
large for its fabric); it is captured per outcome so sweeps with
``skip_unmappable`` semantics keep working. Any other exception
propagates: a crash is a bug, not a data point.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace

from repro import obs
from repro.arch.cgra import CGRA
from repro.compile.cache import MappingCache
from repro.compile.diskcache import DiskCache, TieredCache
from repro.compile.instrument import Instrumentation, PassEvent
from repro.compile.pipeline import CompileResult, compile_dfg, compile_kernel
from repro.dfg.graph import DFG
from repro.errors import MappingError
from repro.mapper.engine import EngineConfig
from repro.mapper.mapping import Mapping
from repro.mapper.validation import validate_mapping
from repro.utils.rng import derive_worker_seed

#: Environment override for the default worker count.
ENV_JOBS = "REPRO_JOBS"


def default_jobs() -> int:
    """``$REPRO_JOBS`` if set, else the number of usable cores."""
    env = os.environ.get(ENV_JOBS)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class SweepItem:
    """One declarative, picklable compile work item.

    Either ``kernel`` (a Table I name, lowered in the worker) or
    ``dfg`` (an explicit graph, e.g. a streaming kernel) names the
    input; ``seed=None`` means "derive from the sweep seed + my index"
    (the reproducible default for stochastic strategies like anneal).
    """

    kernel: str = ""
    dfg: DFG | None = None
    unroll: int = 1
    strategy: str = "iced"
    config: EngineConfig | None = None
    backend: str = "engine"
    #: Backend constructor options as sorted (key, value) pairs —
    #: tuples keep the item frozen/hashable; use ``backend_kwargs``.
    backend_options: tuple = ()
    #: Racing: a cancellable item may be abandoned once an earlier-
    #: precedence item proves optimality (see ``cancel_on_optimal``).
    cancellable: bool = False
    refine: bool = True
    anneal_moves: int = 800
    seed: int | None = None
    tag: str = ""

    def __post_init__(self):
        if bool(self.kernel) == (self.dfg is not None):
            raise ValueError(
                "a SweepItem names exactly one of kernel= or dfg="
            )

    @property
    def name(self) -> str:
        return self.kernel or self.dfg.name

    def backend_kwargs(self) -> dict:
        return dict(self.backend_options)


@dataclass
class SweepOutcome:
    """One work item's result, in deterministic work-list order."""

    index: int
    item: SweepItem
    result: CompileResult | None = None
    error: MappingError | None = None
    worker_pid: int = 0
    #: Abandoned by ``cancel_on_optimal`` racing before it finished —
    #: not a failure, just work that a proof made redundant.
    cancelled: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.cancelled

    @property
    def mapping(self) -> Mapping:
        if self.error is not None:
            raise self.error
        if self.cancelled:
            raise MappingError(
                f"item {self.index} ({self.item.name}) was cancelled by "
                "portfolio racing"
            )
        return self.result.mapping


# -- worker side -------------------------------------------------------------

#: Built once per worker by the pool initializer.
_WORKER_CACHE: MappingCache | TieredCache | None = None


def _worker_init(cache_dir: str | None) -> None:
    global _WORKER_CACHE
    memory = MappingCache()
    _WORKER_CACHE = (
        TieredCache(memory, DiskCache(cache_dir)) if cache_dir else memory
    )


def _compile_item(payload: tuple) -> tuple:
    """Compile one item; returns only picklable, order-independent data.

    The compile runs under a per-item metrics registry (and, when the
    parent traces, a per-item tracer): the snapshots travel home in
    the result tuple and the parent merges them in item order, so the
    observability stream of a pool sweep is independent of how items
    landed on workers.
    """
    index, item, cgra, trace_on = payload
    cache = _WORKER_CACHE if _WORKER_CACHE is not None else MappingCache()
    instrument = Instrumentation()
    tracer = obs.install_tracer() if trace_on else None
    saved_registry = obs.set_metrics(obs.MetricsRegistry())
    try:
        try:
            if item.dfg is not None:
                result = compile_dfg(
                    item.dfg, cgra, item.strategy, item.config,
                    backend=item.backend,
                    backend_options=item.backend_kwargs(),
                    refine=item.refine, anneal_moves=item.anneal_moves,
                    seed=item.seed or 0, cache=cache,
                    instrument=instrument,
                )
            else:
                result = compile_kernel(
                    item.kernel, cgra, item.strategy, item.config,
                    backend=item.backend,
                    backend_options=item.backend_kwargs(),
                    unroll=item.unroll, refine=item.refine,
                    anneal_moves=item.anneal_moves, seed=item.seed or 0,
                    cache=cache, instrument=instrument,
                )
        except MappingError as exc:
            return (index, None, None, "", False, instrument.to_dicts(),
                    (str(exc), exc.last_ii), os.getpid(),
                    tracer.to_dicts() if tracer else [],
                    obs.metrics().snapshot(), None)
        blob = json.dumps(result.mapping.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        engine_blob = cache.serialized(result.cache_key)
        meta = {
            "backend": result.backend,
            "optimal": result.optimal,
            "cost": result.cost,
            "ii": result.report.ii,
            "backend_stats": result.backend_stats,
        }
        return (index, blob, engine_blob, result.cache_key,
                result.cache_hit, instrument.to_dicts(), None, os.getpid(),
                tracer.to_dicts() if tracer else [],
                obs.metrics().snapshot(), meta)
    finally:
        if tracer is not None:
            obs.uninstall_tracer()
        obs.set_metrics(saved_registry)


# -- parent side -------------------------------------------------------------


@dataclass
class SweepExecutor:
    """Deterministic fan-out of compile work items across processes.

    ``jobs=1`` runs inline (no pool, no pickling) through exactly the
    same code path the experiment harnesses always used — the parallel
    path must reproduce its results bit for bit. ``cache_dir`` points
    workers *and* the parent at one shared on-disk artifact store.
    """

    jobs: int = 1
    cache: object | None = None
    cache_dir: str | None = None
    seed: int = 0
    instrument: Instrumentation | None = None
    mp_context: str | None = None
    _outcomes: list = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.jobs = max(1, int(self.jobs))
        self.instrument = self.instrument or Instrumentation()
        if self.cache is None:
            memory = MappingCache()
            self.cache = (
                TieredCache(memory, DiskCache(self.cache_dir))
                if self.cache_dir else memory
            )

    def run(self, items, cgra: CGRA, *,
            cancel_on_optimal: bool = False) -> list[SweepOutcome]:
        """Compile every item; outcomes come back in work-list order.

        ``cancel_on_optimal`` enables portfolio racing: once an item
        completes with a *proven-optimal* result, later-indexed items
        marked ``cancellable`` are abandoned (serial path) or cancelled
        best-effort (pool path). An already-running pool item may still
        complete — selection rules must truncate at the first proof
        (see :func:`repro.mapper.backends.select_best`), which keeps
        the chosen result independent of cancellation timing.
        """
        seeded = [
            item if item.seed is not None
            else replace(item, seed=derive_worker_seed(self.seed, i))
            for i, item in enumerate(items)
        ]
        if self.jobs == 1 or len(seeded) <= 1:
            outcomes: list[SweepOutcome] = []
            proof_at: int | None = None
            for i, item in enumerate(seeded):
                if (cancel_on_optimal and proof_at is not None
                        and i > proof_at and item.cancellable):
                    outcomes.append(SweepOutcome(i, item, cancelled=True))
                    continue
                outcome = self._run_inline(i, item, cgra)
                outcomes.append(outcome)
                if (cancel_on_optimal and proof_at is None
                        and outcome.ok and outcome.result.optimal):
                    proof_at = i
            return outcomes
        return self._run_pool(seeded, cgra,
                              cancel_on_optimal=cancel_on_optimal)

    # -- serial path --------------------------------------------------------

    def _run_inline(self, index: int, item: SweepItem,
                    cgra: CGRA) -> SweepOutcome:
        try:
            if item.dfg is not None:
                result = compile_dfg(
                    item.dfg, cgra, item.strategy, item.config,
                    backend=item.backend,
                    backend_options=item.backend_kwargs(),
                    refine=item.refine, anneal_moves=item.anneal_moves,
                    seed=item.seed or 0, cache=self.cache,
                    instrument=self.instrument,
                )
            else:
                result = compile_kernel(
                    item.kernel, cgra, item.strategy, item.config,
                    backend=item.backend,
                    backend_options=item.backend_kwargs(),
                    unroll=item.unroll, refine=item.refine,
                    anneal_moves=item.anneal_moves, seed=item.seed or 0,
                    cache=self.cache, instrument=self.instrument,
                )
        except MappingError as exc:
            return SweepOutcome(index, item, error=exc,
                                worker_pid=os.getpid())
        return SweepOutcome(index, item, result=result,
                            worker_pid=os.getpid())

    # -- pool path ----------------------------------------------------------

    def _pool_context(self):
        if self.mp_context:
            return multiprocessing.get_context(self.mp_context)
        methods = multiprocessing.get_all_start_methods()
        # fork reuses the parent's loaded modules — pool start-up is
        # milliseconds instead of a fresh interpreter + numpy import.
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def _run_pool(self, items: list[SweepItem], cgra: CGRA, *,
                  cancel_on_optimal: bool = False) -> list[SweepOutcome]:
        raw: list[tuple | None] = [None] * len(items)
        trace_on = obs.current_tracer() is not None
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(items)),
            mp_context=self._pool_context(),
            initializer=_worker_init,
            initargs=(self.cache_dir,),
        ) as pool:
            futures = [
                pool.submit(_compile_item, (i, item, cgra, trace_on))
                for i, item in enumerate(items)
            ]
            if not cancel_on_optimal:
                for future in futures:
                    tup = future.result()  # re-raises worker crashes
                    raw[tup[0]] = tup
            else:
                self._race(futures, items, raw)
        return [
            self._merge(tup, items[i], cgra) if tup is not None
            else SweepOutcome(i, items[i], cancelled=True)
            for i, tup in enumerate(raw)
        ]

    @staticmethod
    def _race(futures: list, items: list[SweepItem],
              raw: list[tuple | None]) -> None:
        """Collect completions, cancelling doomed cancellable items.

        Once the lowest-indexed proven-optimal result is known, every
        *pending* cancellable item behind it is cancelled best-effort.
        Items that slip through and complete anyway are kept — the
        caller's selection rule truncates at the first proof, so the
        chosen result never depends on cancellation timing.
        """
        pending = set(futures)
        proof_at: int | None = None
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                if future.cancelled():
                    continue  # raw stays None -> cancelled outcome
                tup = future.result()  # re-raises worker crashes
                raw[tup[0]] = tup
                meta = tup[10]
                if meta and meta.get("optimal"):
                    proof_at = (tup[0] if proof_at is None
                                else min(proof_at, tup[0]))
            if proof_at is None:
                continue
            for index, future in enumerate(futures):
                if (index > proof_at and items[index].cancellable
                        and future in pending and future.cancel()):
                    pending.discard(future)

    def _merge(self, tup: tuple, item: SweepItem,
               cgra: CGRA) -> SweepOutcome:
        """Rehydrate, re-validate and account one worker result."""
        (index, blob, engine_blob, cache_key, cache_hit, event_dicts,
         error, pid, span_dicts, metric_snapshot, meta) = tup
        events = [
            PassEvent(d["pass"], d["wall_ms"], dict(d["counters"]),
                      d["kernel"])
            for d in event_dicts
        ]
        self.instrument.extend(events)
        tracer = obs.current_tracer()
        if tracer is not None and span_dicts:
            tracer.adopt(span_dicts)
        if metric_snapshot:
            obs.metrics().merge(metric_snapshot)
        if error is not None:
            message, last_ii = error
            return SweepOutcome(index, item,
                                error=MappingError(message, last_ii),
                                worker_pid=pid)
        if item.dfg is not None:
            dfg = item.dfg
        else:
            from repro.kernels.suite import load_kernel

            dfg = load_kernel(item.kernel, item.unroll)
        mapping = Mapping.from_dict(json.loads(blob), dfg, cgra)
        with self.instrument.measure("revalidate", dfg.name,
                                     category="executor") as counters:
            report = validate_mapping(mapping)
            counters["ii"] = report.ii
        # Promote the worker's backend artifact so later serial compiles
        # (e.g. derived strategies over the same placement) hit warm.
        # The backend tag and provenance ride along so the promoted
        # artifact stays servable under backend-checked lookups. Only
        # promote *absent* keys: a worker cache hit returns the same
        # bytes that are already stored, and an unconditional rewrite
        # would strip additive envelope fields a previous producer
        # attached (e.g. the DSE driver's `sweep` provenance tag).
        meta = meta or {}
        if (engine_blob is not None
                and hasattr(self.cache, "store_serialized")
                and cache_key not in self.cache):
            self.cache.store_serialized(
                cache_key, engine_blob, backend=item.backend,
                meta={k: meta[k] for k in ("optimal", "cost", "ii")
                      if k in meta},
            )
        result = CompileResult(
            mapping=mapping,
            report=report,
            events=events,
            cache_key=cache_key,
            cache_hit=cache_hit,
            backend=meta.get("backend", item.backend),
            backend_stats=meta.get("backend_stats"),
            optimal=bool(meta.get("optimal", False)),
            cost=float(meta.get("cost", 0.0)),
        )
        return SweepOutcome(index, item, result=result, worker_pid=pid)
