"""Per-pass instrumentation of the compile pipeline.

Every pass emits one :class:`PassEvent` — pass name, wall time and a
dict of counters (engine search effort, cache hit/miss, graph sizes).
Events are plain structured data: the experiment harnesses can persist
them as JSON artifacts, and :func:`render_report` turns an event stream
into the per-pass timing table ``python -m repro map --stats`` prints.

Since the :mod:`repro.obs` layer landed, every measured pass is also a
span view: when a tracer is installed, :meth:`Instrumentation.measure`
opens a span (category ``pipeline`` by default) whose attributes are
the pass's final counters, and the pass's call count and wall time are
absorbed into the process metrics registry. ``PassEvent`` and its
consumers (``--stats``, cache envelopes, the experiment harnesses) are
unchanged — the span is a *view*, not a replacement.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import obs
from repro.utils.tables import TextTable


@dataclass
class PassEvent:
    """One pass execution inside one compile."""

    pass_name: str
    wall_ms: float
    counters: dict[str, float] = field(default_factory=dict)
    kernel: str = ""

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "wall_ms": round(self.wall_ms, 3),
            "kernel": self.kernel,
            "counters": dict(self.counters),
        }


class Instrumentation:
    """Collects :class:`PassEvent` streams across one or many compiles."""

    def __init__(self) -> None:
        self.events: list[PassEvent] = []

    @contextmanager
    def measure(self, pass_name: str, kernel: str = "",
                category: str = "pipeline"):
        """Time one pass; yields the event's mutable counter dict.

        When a tracer is installed the pass is also recorded as a span
        under ``category``, carrying the final counters as attributes;
        either way its call count and wall time feed the metrics
        registry.
        """
        counters: dict[str, float] = {}
        span_cm = obs.span(pass_name, category=category, kernel=kernel)
        start = time.perf_counter()
        with span_cm as span:
            try:
                yield counters
            finally:
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                self.events.append(
                    PassEvent(pass_name, elapsed_ms, counters, kernel)
                )
                span.set(**counters)
                registry = obs.metrics()
                registry.counter(f"{category}.{pass_name}.calls").inc()
                registry.histogram(f"{category}.pass_wall_ms").observe(
                    elapsed_ms
                )
                registry.absorb(f"{category}.{pass_name}", counters)

    def extend(self, events: list[PassEvent]) -> None:
        self.events.extend(events)

    def total_ms(self) -> float:
        return sum(e.wall_ms for e in self.events)

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]


def summarize(events: list[PassEvent]) -> dict[str, dict[str, float]]:
    """Aggregate an event stream per pass: calls, total/mean wall time,
    summed counters. Insertion order of first appearance is kept, which
    matches pipeline pass order."""
    summary: dict[str, dict[str, float]] = {}
    for event in events:
        row = summary.setdefault(
            event.pass_name, {"calls": 0, "wall_ms": 0.0}
        )
        row["calls"] += 1
        row["wall_ms"] += event.wall_ms
        for key, value in event.counters.items():
            row[key] = row.get(key, 0) + value
    return summary


def render_report(events: list[PassEvent],
                  cache_stats: dict[str, int] | None = None) -> str:
    """The ``--stats`` text report: per-pass timings plus cache totals."""
    if not events:
        return "no compile passes recorded"
    summary = summarize(events)
    total = sum(row["wall_ms"] for row in summary.values())
    table = TextTable(["pass", "calls", "total ms", "mean ms", "share",
                       "counters"])
    for name, row in summary.items():
        calls = int(row["calls"])
        extras = ", ".join(
            f"{k}={int(v) if float(v).is_integer() else round(v, 3)}"
            for k, v in row.items() if k not in ("calls", "wall_ms")
        )
        table.add_row([
            name,
            calls,
            round(row["wall_ms"], 1),
            round(row["wall_ms"] / calls, 2),
            f"{100.0 * row['wall_ms'] / total:.0f}%" if total else "-",
            extras or "-",
        ])
    lines = [table.render()]
    if cache_stats is not None:
        hits = cache_stats.get("hits", 0)
        misses = cache_stats.get("misses", 0)
        looked = hits + misses
        rate = f"{100.0 * hits / looked:.0f}%" if looked else "n/a"
        lines.append(
            f"mapping cache: {hits} hits / {misses} misses "
            f"({rate} hit rate, {cache_stats.get('entries', 0)} entries)"
        )
    return "\n".join(lines)


def render_per_ii(per_ii: list[dict]) -> str:
    """The per-II-attempt effort table (``map --stats`` / ``profile``).

    One row per II the deepening loop tried, with that II's *own*
    probe/prune counts and route-memo hit rate — the aggregated
    counters hide which II actually burned the search effort, which is
    exactly what one needs when debugging a DSE hot spot.
    """
    if not per_ii:
        return "no per-II engine effort recorded"
    table = TextTable(["II", "outcome", "attempts", "probed", "pruned",
                       "routes", "memo hit rate"])
    for row in per_ii:
        hits = row.get("route_memo_hits", 0)
        misses = row.get("route_memo_misses", 0)
        looked = hits + misses
        rate = f"{100.0 * hits / looked:.0f}%" if looked else "n/a"
        table.add_row([
            row.get("ii", "?"),
            row.get("outcome", "?"),
            row.get("attempts", 0),
            row.get("candidates_probed", 0),
            row.get("candidates_pruned", 0),
            row.get("routes_searched", 0),
            rate,
        ])
    return table.render()
