"""Stable content fingerprints for the mapping cache.

A cached mapping may be served only when *everything* that influenced
the engine's search is identical: the DFG structure, the fabric (tiles,
islands, interconnect, FU capabilities, DVFS levels) and the full
:class:`~repro.mapper.engine.EngineConfig` — including
``allowed_tiles``, so a partition-restricted mapping is never served a
whole-fabric cached result (and vice versa). The key is the SHA-256 of
a canonical JSON encoding of all of it, plus the compile kind and any
post-pass options.

Fingerprints are pure functions of value semantics — two independently
built but identical objects hash equal, which is what lets repeated
experiment sweeps share work across fresh ``CGRA.build`` calls.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.arch.cgra import CGRA
from repro.dfg.graph import DFG
from repro.mapper.engine import ACCEL_FIELDS, EngineConfig

#: Bump when the engine's search semantics change incompatibly: old
#: cached artifacts keep validating but would mask behaviour changes.
KEY_VERSION = 1


def dfg_fingerprint(dfg: DFG) -> dict[str, Any]:
    """Structure of ``dfg`` as far as the mapper can observe it."""
    return {
        "name": dfg.name,
        "nodes": [[n.id, n.opcode.name] for n in dfg.nodes()],
        "edges": [[e.src, e.dst, e.dist] for e in dfg.edges()],
    }


def cgra_fingerprint(cgra: CGRA) -> dict[str, Any]:
    """Every fabric parameter the engine's search depends on."""
    return {
        "rows": cgra.rows,
        "cols": cgra.cols,
        "topology": cgra.topology,
        "islands": [sorted(isl.tile_ids) for isl in cgra.islands],
        "levels": [
            [lv.name, lv.voltage, lv.frequency_mhz, lv.slowdown]
            for lv in (*cgra.dvfs.levels, cgra.dvfs.power_gated)
        ],
        "tiles": [
            [
                t.id,
                t.config_depth,
                sorted(op.name for op in t.fu.supported),
                [[op.name, cycles] for op, cycles in t.fu.latencies],
            ]
            for t in cgra.tiles
        ],
    }


def config_fingerprint(config: EngineConfig) -> dict[str, Any]:
    """All engine tunables, with unordered fields canonicalized."""
    d = dataclasses.asdict(config)
    if d["allowed_tiles"] is not None:
        d["allowed_tiles"] = sorted(d["allowed_tiles"])
    if d["allowed_level_names"] is not None:
        d["allowed_level_names"] = list(d["allowed_level_names"])
    # Acceleration-only knobs (vectorized scoring, sound II warm
    # starts) are proven result-neutral by the differential suites, so
    # toggling them must hit the same cache entries.
    for field_name in ACCEL_FIELDS:
        d.pop(field_name, None)
    return d


def mapping_cache_key(dfg: DFG, cgra: CGRA, config: EngineConfig,
                      kind: str, options: dict[str, Any] | None = None,
                      ) -> str:
    """Content-addressed key of one (DFG, fabric, config, kind) compile."""
    payload = {
        "v": KEY_VERSION,
        "kind": kind,
        "dfg": dfg_fingerprint(dfg),
        "cgra": cgra_fingerprint(cgra),
        "config": config_fingerprint(config),
        "options": options or {},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
