"""Portfolio racing: the best mapping any registered backend can produce.

:func:`compile_portfolio` fans one (input, strategy) compile out across
several mapper backends on the :class:`~repro.compile.parallel.
SweepExecutor`, applies the registry's deterministic selection rule
(:func:`repro.mapper.backends.select_best`) and returns the winner with
a per-member score board and the optimality gap whenever a
proof-capable member closed one.

Determinism: member precedence is the caller's ``members`` order; the
executor derives per-item seeds in the parent; selection truncates at
the lowest-precedence proven-optimal member. ``--jobs N`` therefore
returns the *same winner mapping, gap and score board entries for
every non-cancelled member* as ``--jobs 1`` — only which doomed
members got cancelled before finishing may differ, and those never
participate in selection.

The winner is also published to the cache under a ``portfolio``-kind
key via the best-known-artifact rule: an existing artifact is replaced
only by a strictly better (II, cost) mapping, and the displaced
artifact's provenance is recorded in the new envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.arch.cgra import CGRA
from repro.compile.fingerprint import mapping_cache_key
from repro.compile.instrument import Instrumentation
from repro.compile.parallel import SweepExecutor, SweepItem
from repro.compile.pipeline import CompileResult, resolve_config, resolve_strategy
from repro.dfg.graph import DFG
from repro.errors import MappingError
from repro.mapper.backends import (
    DEFAULT_PORTFOLIO,
    MappingResult,
    get_backend,
    select_best,
)
from repro.mapper.engine import EngineConfig


@dataclass
class PortfolioEntry:
    """One member backend's line on the score board."""

    backend: str
    ii: int | None = None
    cost: float | None = None
    optimal: bool = False
    cancelled: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.ii is not None


@dataclass
class PortfolioReport:
    """The outcome of one portfolio race."""

    name: str
    strategy: str
    winner: CompileResult
    winner_backend: str
    entries: list[PortfolioEntry] = field(default_factory=list)
    #: Winner II minus the proven-optimal II; 0 whenever any member
    #: proved optimality (selection can then never do worse), ``None``
    #: when no proof landed within budget.
    optimality_gap: int | None = None
    proven_optimal: bool = False

    def gap_of(self, backend: str) -> int | None:
        """A member's II distance from the proven optimum (``None``
        without a proof or when the member failed)."""
        if not self.proven_optimal:
            return None
        optimum = self.winner.report.ii
        for entry in self.entries:
            if entry.backend == backend and entry.ii is not None:
                return entry.ii - optimum
        return None


def _member_options(member: str, member_options: dict[str, dict] | None,
                    budget_s: float | None, seed: int) -> tuple:
    options = dict((member_options or {}).get(member, {}))
    cls = get_backend(member)
    if (budget_s is not None and getattr(cls, "proves_optimality", False)
            and member != "exhaustive" and "budget_s" not in options):
        options["budget_s"] = budget_s
    if member == "anneal" and "seed" not in options:
        options["seed"] = seed
    return tuple(sorted(options.items()))


def compile_portfolio(dfg: DFG | str, cgra: CGRA, strategy: str = "iced",
                      config: EngineConfig | None = None, *,
                      members: tuple[str, ...] = DEFAULT_PORTFOLIO,
                      member_options: dict[str, dict] | None = None,
                      budget_s: float | None = None,
                      unroll: int = 1, jobs: int = 1, seed: int = 0,
                      cache: object | None = None,
                      cache_dir: str | None = None,
                      instrument: Instrumentation | None = None,
                      ) -> PortfolioReport:
    """Race ``members`` on one input and keep the best mapping.

    ``dfg`` is either a DFG instance or a Table I kernel name.
    ``budget_s`` forwards a wall-clock budget to proof-capable members
    (at the price of run-to-run reproducibility of *timeouts*; results
    that complete are unaffected). Raises :class:`MappingError` when
    every member fails.
    """
    strategy = resolve_strategy(strategy)
    members = tuple(members)
    if not members:
        raise ValueError("portfolio needs at least one member")
    for member in members:
        get_backend(member)  # fail fast on unknown names
    items = [
        SweepItem(
            kernel=dfg if isinstance(dfg, str) else "",
            dfg=None if isinstance(dfg, str) else dfg,
            unroll=unroll, strategy=strategy, config=config,
            backend=member,
            backend_options=_member_options(member, member_options,
                                            budget_s, seed),
            cancellable=True, seed=seed,
        )
        for member in members
    ]
    executor = SweepExecutor(jobs=jobs, cache=cache, cache_dir=cache_dir,
                             seed=seed, instrument=instrument)
    outcomes = executor.run(items, cgra, cancel_on_optimal=True)

    entries: list[PortfolioEntry] = []
    scored: list[tuple[int, MappingResult, object]] = []
    for idx, outcome in enumerate(outcomes):
        member = members[idx]
        if outcome.cancelled:
            entries.append(PortfolioEntry(member, cancelled=True))
            continue
        if outcome.error is not None:
            entries.append(PortfolioEntry(member,
                                          error=str(outcome.error)))
            continue
        result = outcome.result
        record = MappingResult(
            mapping=result.mapping, backend=member, ii=result.report.ii,
            cost=result.cost, optimal=result.optimal,
        )
        entries.append(PortfolioEntry(member, ii=record.ii,
                                      cost=record.cost,
                                      optimal=record.optimal))
        scored.append((idx, record, result))
    if not scored:
        raise MappingError(
            f"every portfolio member failed on {items[0].name!r}: "
            + "; ".join(f"{e.backend}: {e.error}" for e in entries
                        if e.error)
        )
    best = select_best([(idx, record) for idx, record, _ in scored])
    winner_idx, _, winner = next(
        (idx, record, result) for idx, record, result in scored
        if record is best
    )
    winner_backend = members[winner_idx]

    proven = [record.ii for _, record, _ in scored if record.optimal]
    proven_optimal = bool(proven) and best.ii == min(proven)
    gap = (best.ii - min(proven)) if proven else None
    obs.metrics().counter(
        f"mapper.backend.{winner_backend}.portfolio_wins").inc()
    if gap is not None:
        obs.metrics().histogram("mapper.optimality_gap").observe(float(gap))

    # Best-known-artifact upgrade under the portfolio identity: only a
    # strictly better (II, cost) mapping may displace the incumbent.
    upgrade = getattr(executor.cache, "upgrade_best", None)
    blob = (executor.cache.serialized(winner.cache_key)
            if hasattr(executor.cache, "serialized") else None)
    if upgrade is not None and blob is not None:
        portfolio_key = mapping_cache_key(
            winner.mapping.dfg, cgra, resolve_config(strategy, config),
            "portfolio", options={"members": list(members)},
        )
        upgrade(portfolio_key, blob, backend=winner_backend, ii=best.ii,
                cost=best.cost, kernel=winner.mapping.dfg.name,
                optimal=proven_optimal)

    return PortfolioReport(
        name=items[0].name, strategy=strategy, winner=winner,
        winner_backend=winner_backend, entries=entries,
        optimality_gap=gap, proven_optimal=proven_optimal,
    )
