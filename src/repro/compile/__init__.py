"""`repro.compile` — the unified compilation pipeline.

One explicit pass sequence (lower -> analyze -> place_route ->
post -> validate [-> bitstream]) behind every mapper entry point,
with a content-addressed mapping cache and per-pass instrumentation.
See :mod:`repro.compile.pipeline` for the pass definitions and
``docs/compilation_pipeline.md`` for the design.
"""

from repro.compile.cache import (
    CacheStats,
    MappingCache,
    get_cache,
)
from repro.compile.diskcache import (
    SCHEMA_VERSION,
    DiskCache,
    DiskCacheStats,
    TieredCache,
    default_cache_root,
)
from repro.compile.fingerprint import (
    KEY_VERSION,
    cgra_fingerprint,
    config_fingerprint,
    dfg_fingerprint,
    mapping_cache_key,
)
from repro.compile.instrument import (
    Instrumentation,
    PassEvent,
    render_per_ii,
    render_report,
    summarize,
)
from repro.compile.parallel import (
    SweepExecutor,
    SweepItem,
    SweepOutcome,
    default_jobs,
)
from repro.compile.pipeline import (
    KNOWN_STRATEGIES,
    CompileContext,
    CompileResult,
    compile_annealed,
    compile_dfg,
    compile_exhaustive,
    compile_kernel,
    resolve_config,
    resolve_strategy,
)
from repro.compile.portfolio import (
    PortfolioEntry,
    PortfolioReport,
    compile_portfolio,
)

__all__ = [
    "PortfolioEntry",
    "PortfolioReport",
    "compile_portfolio",
    "KEY_VERSION",
    "KNOWN_STRATEGIES",
    "SCHEMA_VERSION",
    "CacheStats",
    "CompileContext",
    "CompileResult",
    "DiskCache",
    "DiskCacheStats",
    "Instrumentation",
    "MappingCache",
    "PassEvent",
    "SweepExecutor",
    "SweepItem",
    "SweepOutcome",
    "TieredCache",
    "cgra_fingerprint",
    "compile_annealed",
    "compile_dfg",
    "compile_exhaustive",
    "compile_kernel",
    "config_fingerprint",
    "default_cache_root",
    "default_jobs",
    "dfg_fingerprint",
    "get_cache",
    "mapping_cache_key",
    "render_per_ii",
    "render_report",
    "resolve_config",
    "resolve_strategy",
    "summarize",
]
