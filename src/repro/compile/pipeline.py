"""The unified compilation pipeline.

Every mapping in the repository — baseline, ICED, per-tile, gating,
anneal-refined, exhaustive-bounded, partition-restricted streaming —
is produced by this module's pass sequence:

    lower -> analyze -> place_route -> <strategy post-pass> ->
    validate [-> bitstream]

threaded through one :class:`CompileContext`. The ``place_route`` pass
is backed by the content-addressed mapping cache
(:mod:`repro.compile.cache`): a repeated (DFG, fabric, engine config)
compile rehydrates the cached artifact instead of re-running the
engine, and the pipeline re-validates it before returning — a cache
hit is never trusted unchecked. Each pass emits a structured
:class:`~repro.compile.instrument.PassEvent`; ``--stats`` renders the
stream as a timing table.

Entry points:

* :func:`compile_kernel` — by Table I kernel name (adds the *lower*
  pass).
* :func:`compile_dfg` — from an existing DFG.
* :func:`compile_annealed` — heuristic seed from the cache, then
  simulated-annealing refinement.
* :func:`compile_exhaustive` — exhaustive search bounded above by the
  cached heuristic's II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.arch.cgra import CGRA
from repro.compile.cache import MappingCache, get_cache
from repro.compile.fingerprint import mapping_cache_key
from repro.compile.instrument import Instrumentation, PassEvent
from repro.dfg.analysis import DFGAnalysis, analyze_dfg
from repro.dfg.graph import DFG
from repro.errors import MappingError
from repro.mapper.anneal import AnnealStats, anneal_mapping
# The strategy vocabulary lives in the backend registry (single source
# of truth for the CLI, experiments and benchmarks); re-exported here
# for compatibility with historical imports.
from repro.mapper.backends import (  # noqa: F401  (re-exports)
    KNOWN_STRATEGIES,
    STRATEGY_ALIASES,
    MappingResult,
    backend_names,
    make_backend,
    mapping_cost,
    resolve_strategy,
    strategy_choices,
)
from repro.mapper.bitstream import Bitstream, generate_bitstream
from repro.mapper.engine import EngineConfig, EngineStats
from repro.mapper.exhaustive import SearchStats, map_exhaustive
from repro.mapper.island_refine import refine_island_levels
from repro.mapper.mapping import Mapping
from repro.mapper.per_tile import assign_per_tile_dvfs, gate_unused_tiles
from repro.mapper.timing import TimingReport
from repro.mapper.validation import validate_mapping

#: Sentinel: the refinement pass inherits ``config.allowed_level_names``.
_FROM_CONFIG = object()


@dataclass
class CompileContext:
    """Everything a pass may read or produce, threaded pass to pass."""

    cgra: CGRA
    strategy: str
    config: EngineConfig
    dfg: DFG | None = None
    kernel: str = ""
    unroll: int = 1
    seed: int = 0
    use_cache: bool = True
    cache: MappingCache | None = None
    instrument: Instrumentation | None = None
    backend: str = "engine"
    backend_options: dict = field(default_factory=dict)
    # -- produced by passes -------------------------------------------------
    analysis: DFGAnalysis | None = None
    mapping: Mapping | None = None
    report: TimingReport | None = None
    bitstream: Bitstream | None = None
    engine_stats: EngineStats | None = None
    anneal_stats: AnnealStats | None = None
    backend_stats: dict | None = None
    optimal: bool = False
    cost: float = 0.0
    cache_key: str = ""
    cache_hit: bool = False
    # -- options ------------------------------------------------------------
    refine: bool = True
    refine_level_names: object = _FROM_CONFIG
    anneal_moves: int = 800


@dataclass
class CompileResult:
    """The pipeline's output artifact bundle."""

    mapping: Mapping
    report: TimingReport
    events: list[PassEvent] = field(default_factory=list)
    cache_key: str = ""
    cache_hit: bool = False
    engine_stats: EngineStats | None = None
    anneal_stats: AnnealStats | None = None
    bitstream: Bitstream | None = None
    backend: str = "engine"
    backend_stats: dict | None = None
    optimal: bool = False
    cost: float = 0.0

    @property
    def wall_ms(self) -> float:
        return sum(e.wall_ms for e in self.events)


def resolve_config(strategy: str,
                   config: EngineConfig | None) -> EngineConfig:
    """The engine configuration a strategy's placement actually runs
    with. Derived strategies (gating, per-tile, anneal) post-process a
    *baseline* placement, so their engine runs DVFS-oblivious whatever
    the caller passed — mirroring the historical entry points."""
    from dataclasses import replace

    if config is None:
        config = EngineConfig.for_strategy(strategy)
    want_dvfs = strategy == "iced"
    if config.dvfs_aware != want_dvfs:
        config = replace(config, dvfs_aware=want_dvfs)
    return config


# -- passes -----------------------------------------------------------------


def _pass_lower(ctx: CompileContext) -> None:
    from repro.kernels.suite import load_kernel

    with ctx.instrument.measure("lower", ctx.kernel) as counters:
        ctx.dfg = load_kernel(ctx.kernel, ctx.unroll)
        counters["nodes"] = ctx.dfg.num_nodes
        counters["edges"] = ctx.dfg.num_edges


def _pass_analyze(ctx: CompileContext) -> None:
    with ctx.instrument.measure("analyze", ctx.dfg.name) as counters:
        ctx.analysis = analyze_dfg(ctx.dfg)
        counters["rec_mii"] = ctx.analysis.rec_mii
        counters["nodes"] = ctx.dfg.num_nodes


def _namespaced(backend: str, counters: dict[str, int]) -> dict[str, int]:
    """Backend counters as they appear in merged snapshots.

    The default engine keeps its historical bare names (benchmark
    artifacts, cache envelopes and tests all consume them); every other
    backend is prefixed ``{backend}.`` so heterogeneous sweeps never
    collide counters from different backends under one name.
    """
    if backend == "engine":
        return dict(counters)
    return {f"{backend}.{k}": v for k, v in counters.items()}


def _pass_place_route(ctx: CompileContext) -> None:
    """Label + place + route through the selected backend, cache-backed.

    The cache key's ``kind`` is the backend name (and its options ride
    in the key's option payload), so artifacts produced by different
    backends can never shadow one another; the disk tier additionally
    refuses to serve an artifact whose envelope names a different
    backend (see :meth:`DiskCache.load_blob`).
    """
    cache = ctx.cache if ctx.cache is not None else get_cache()
    ctx.cache_key = mapping_cache_key(
        ctx.dfg, ctx.cgra, ctx.config, ctx.backend,
        options=dict(sorted(ctx.backend_options.items()))
        if ctx.backend_options else None,
    )
    with ctx.instrument.measure("place_route", ctx.dfg.name) as counters:
        if ctx.use_cache:
            try:
                cached = cache.lookup(ctx.cache_key, ctx.dfg, ctx.cgra,
                                      ctx.backend)
            except Exception:
                cached = None  # corrupt artifact: recompile cold
            if cached is not None:
                ctx.mapping = cached
                ctx.cache_hit = True
                ctx.cost = mapping_cost(cached)
                meta_of = getattr(cache, "meta", None)
                if meta_of is not None:
                    ctx.optimal = bool(meta_of(ctx.cache_key)
                                       .get("optimal", False))
                counters["cache_hit"] = 1
                counters["ii"] = cached.ii
                return
        backend = make_backend(ctx.backend, **ctx.backend_options)
        with obs.span(f"backend:{ctx.backend}", category="mapper",
                      kernel=ctx.dfg.name) as span:
            result = backend.map(ctx.dfg, ctx.cgra, ctx.config,
                                 analysis=ctx.analysis)
            if span:
                span.set(ii=result.ii, optimal=result.optimal)
        obs.metrics().counter(
            f"mapper.backend.{ctx.backend}.compiles").inc()
        if result.optimal:
            obs.metrics().counter(
                f"mapper.backend.{ctx.backend}.proofs").inc()
        ctx.mapping = result.mapping
        ctx.optimal = result.optimal
        ctx.cost = result.cost
        ctx.backend_stats = dict(result.stats)
        if ctx.backend == "engine":
            # Engine counter keys equal EngineStats field names, so the
            # historical stats object survives the dispatch refactor.
            ctx.engine_stats = EngineStats(**result.stats)
            if result.detail:
                # Per-II effort rows ride outside the flat counter dict
                # (they are per-run diagnostics, never cached).
                ctx.engine_stats.per_ii = list(
                    result.detail.get("per_ii", ())
                )
        namespaced = _namespaced(ctx.backend, result.stats)
        counters.update(namespaced)
        if ctx.backend != "engine":
            counters[f"{ctx.backend}.optimal"] = int(result.optimal)
        counters["cache_hit"] = 0
        counters["ii"] = result.ii
        if ctx.use_cache:
            cache.store(ctx.cache_key, ctx.mapping,
                        engine_stats=namespaced, backend=ctx.backend,
                        meta={"optimal": result.optimal,
                              "cost": result.cost, "ii": result.ii})


def _pass_post(ctx: CompileContext) -> None:
    """The strategy's post-pass over the engine placement (if any)."""
    if ctx.strategy == "baseline":
        return
    name = {
        "iced": "refine_islands",
        "baseline+gating": "gate_unused",
        "per_tile_dvfs": "per_tile_dvfs",
        "anneal": "anneal",
    }[ctx.strategy]
    if ctx.strategy == "iced" and not ctx.refine:
        return
    with ctx.instrument.measure(name, ctx.dfg.name) as counters:
        if ctx.strategy == "iced":
            names = (
                ctx.config.allowed_level_names
                if ctx.refine_level_names is _FROM_CONFIG
                else ctx.refine_level_names
            )
            ctx.mapping = refine_island_levels(ctx.mapping, names)
        elif ctx.strategy == "baseline+gating":
            ctx.mapping = gate_unused_tiles(ctx.mapping)
        elif ctx.strategy == "per_tile_dvfs":
            ctx.mapping = assign_per_tile_dvfs(ctx.mapping)
        else:  # anneal
            ctx.mapping, ctx.anneal_stats = anneal_mapping(
                ctx.mapping, moves=ctx.anneal_moves, seed=ctx.seed,
            )
            counters["moves_tried"] = ctx.anneal_stats.moves_tried
            counters["moves_accepted"] = ctx.anneal_stats.moves_accepted
        counters["gated_tiles"] = len(ctx.mapping.gated_tiles())


def _pass_validate(ctx: CompileContext) -> None:
    """Full structural + timing revalidation — cache hits included, so
    a rehydrated artifact is provably as good as a cold compile."""
    with ctx.instrument.measure("validate", ctx.dfg.name) as counters:
        ctx.report = validate_mapping(ctx.mapping)
        counters["ii"] = ctx.report.ii
        counters["cache_hit"] = 1 if ctx.cache_hit else 0


def _pass_bitstream(ctx: CompileContext) -> None:
    with ctx.instrument.measure("bitstream", ctx.dfg.name) as counters:
        ctx.bitstream = generate_bitstream(ctx.mapping)
        counters["words"] = ctx.bitstream.words_used()


# -- entry points -----------------------------------------------------------


def _run(ctx: CompileContext, want_bitstream: bool) -> CompileResult:
    ctx.instrument = ctx.instrument or Instrumentation()
    first_event = len(ctx.instrument.events)
    if ctx.dfg is None:
        _pass_lower(ctx)
    _pass_analyze(ctx)
    _pass_place_route(ctx)
    _pass_post(ctx)
    _pass_validate(ctx)
    if want_bitstream:
        _pass_bitstream(ctx)
    return CompileResult(
        mapping=ctx.mapping,
        report=ctx.report,
        events=ctx.instrument.events[first_event:],
        cache_key=ctx.cache_key,
        cache_hit=ctx.cache_hit,
        engine_stats=ctx.engine_stats,
        anneal_stats=ctx.anneal_stats,
        bitstream=ctx.bitstream,
        backend=ctx.backend,
        backend_stats=ctx.backend_stats,
        optimal=ctx.optimal,
        cost=ctx.cost,
    )


def compile_dfg(dfg: DFG, cgra: CGRA, strategy: str = "iced",
                config: EngineConfig | None = None, *,
                backend: str = "engine",
                backend_options: dict | None = None,
                refine: bool = True,
                refine_level_names: object = _FROM_CONFIG,
                anneal_moves: int = 800, seed: int = 0,
                use_cache: bool = True, cache: MappingCache | None = None,
                instrument: Instrumentation | None = None,
                want_bitstream: bool = False) -> CompileResult:
    """Compile an existing DFG onto ``cgra`` under ``strategy``,
    producing the placement with the named mapper ``backend``."""
    strategy = resolve_strategy(strategy)
    ctx = CompileContext(
        cgra=cgra, strategy=strategy,
        config=resolve_config(strategy, config), dfg=dfg,
        seed=seed, use_cache=use_cache, cache=cache,
        instrument=instrument, backend=backend,
        backend_options=dict(backend_options or {}), refine=refine,
        refine_level_names=refine_level_names, anneal_moves=anneal_moves,
    )
    return _run(ctx, want_bitstream)


def compile_kernel(name: str, cgra: CGRA, strategy: str = "iced",
                   config: EngineConfig | None = None, *,
                   backend: str = "engine",
                   backend_options: dict | None = None,
                   unroll: int = 1, refine: bool = True,
                   anneal_moves: int = 800, seed: int = 0,
                   use_cache: bool = True,
                   cache: MappingCache | None = None,
                   instrument: Instrumentation | None = None,
                   want_bitstream: bool = False) -> CompileResult:
    """Compile a Table I kernel by name (runs the *lower* pass too)."""
    strategy = resolve_strategy(strategy)
    ctx = CompileContext(
        cgra=cgra, strategy=strategy,
        config=resolve_config(strategy, config),
        kernel=name, unroll=unroll, seed=seed,
        use_cache=use_cache, cache=cache, instrument=instrument,
        backend=backend, backend_options=dict(backend_options or {}),
        refine=refine, anneal_moves=anneal_moves,
    )
    return _run(ctx, want_bitstream)


def compile_annealed(dfg: DFG, cgra: CGRA,
                     config: EngineConfig | None = None, *,
                     moves: int = 800, seed: int = 0,
                     use_cache: bool = True,
                     cache: MappingCache | None = None,
                     instrument: Instrumentation | None = None,
                     ) -> tuple[CompileResult, CompileResult]:
    """The annealing comparison pair: (heuristic seed, refined result).

    The seed mapping comes through the cache, so sweeping anneal
    parameters (moves, seed) never re-runs the constructive engine.
    """
    base = compile_dfg(dfg, cgra, "baseline", config,
                       use_cache=use_cache, cache=cache,
                       instrument=instrument)
    refined = compile_dfg(dfg, cgra, "anneal", config,
                          anneal_moves=moves, seed=seed,
                          use_cache=use_cache, cache=cache,
                          instrument=instrument)
    return base, refined


def compile_exhaustive(dfg: DFG, cgra: CGRA, *, max_ii: int = 8,
                       max_probes: int = 400_000, use_cache: bool = True,
                       cache: MappingCache | None = None,
                       instrument: Instrumentation | None = None,
                       ) -> tuple[Mapping, SearchStats]:
    """Exhaustive minimum-II search, bounded by the cached heuristic.

    The heuristic's II is a sound upper bound on the optimum (the
    exhaustive search uses the same feasibility rules), so the search
    never deepens past it — and the heuristic mapping itself comes from
    the cache when available.
    """
    instrument = instrument or Instrumentation()
    bound = max_ii
    try:
        heuristic = compile_dfg(dfg, cgra, "baseline",
                                use_cache=use_cache, cache=cache,
                                instrument=instrument)
        bound = min(max_ii, heuristic.mapping.ii)
    except MappingError:
        pass  # heuristic gave up; search the caller's full range
    with instrument.measure("exhaustive", dfg.name) as counters:
        mapping, stats = map_exhaustive(dfg, cgra, max_ii=bound,
                                        max_probes=max_probes)
        counters["probes"] = stats.probes
        counters["backtracks"] = stats.backtracks
        counters["ii"] = mapping.ii
    return mapping, stats
