"""Dataflow graph (DFG) intermediate representation.

A DFG's nodes are single-cycle operations and its edges are data
dependences. Loop-carried dependences carry an iteration ``dist`` >= 1;
the maximum cycle-length/distance ratio over all recurrence cycles gives
the recurrence-constrained minimum initiation interval (RecMII).
"""

from repro.dfg.ops import Opcode, MEMORY_OPS, is_memory_op
from repro.dfg.graph import DFG, DFGNode, DFGEdge
from repro.dfg.builder import DFGBuilder
from repro.dfg.analysis import (
    DFGAnalysis,
    RecurrenceCycle,
    analyze_dfg,
    recurrence_cycles,
    rec_mii,
    res_mii,
    min_ii,
    critical_cycle_nodes,
    topo_order,
    asap_levels,
    dfg_stats,
)
from repro.dfg.transforms import unroll, remove_dead_nodes

__all__ = [
    "Opcode",
    "MEMORY_OPS",
    "is_memory_op",
    "DFG",
    "DFGNode",
    "DFGEdge",
    "DFGBuilder",
    "DFGAnalysis",
    "RecurrenceCycle",
    "analyze_dfg",
    "recurrence_cycles",
    "rec_mii",
    "res_mii",
    "min_ii",
    "critical_cycle_nodes",
    "topo_order",
    "asap_levels",
    "dfg_stats",
    "unroll",
    "remove_dead_nodes",
]
