"""DFG-level loop transforms: unrolling and dead-node elimination.

Unrolling replicates the loop body ``factor`` times inside the graph.
A loop-carried edge with distance ``d`` from producer copy ``k`` lands on
consumer copy ``(k + d) % factor`` with a new distance ``(k + d) //
factor``: dependences that stay inside the unrolled super-iteration
become intra-iteration edges, which is exactly why unrolling lengthens
the recurrence cycles (and hence RecMII) of kernels like spmv and gemm
(section II-A of the paper).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.dfg.graph import DFG
from repro.errors import DFGError


def unroll(dfg: DFG, factor: int) -> DFG:
    """Return a new DFG with the loop body unrolled ``factor`` times."""
    if factor < 1:
        raise DFGError("unroll factor must be >= 1")
    if factor == 1:
        return dfg.copy()

    unrolled = DFG(name=f"{dfg.name}_u{factor}")
    copies: dict[tuple[int, int], int] = {}
    for k in range(factor):
        for node in dfg.nodes():
            name = f"{node.label}.{k}"
            copies[(node.id, k)] = unrolled.add_node(node.opcode, name)
    for k in range(factor):
        for edge in dfg.edges():
            target_copy = (k + edge.dist) % factor
            new_dist = (k + edge.dist) // factor
            unrolled.add_edge(
                copies[(edge.src, k)],
                copies[(edge.dst, target_copy)],
                dist=new_dist,
                port=edge.port,
            )
    unrolled.validate()
    return unrolled


def remove_dead_nodes(dfg: DFG, live: Iterable[int] | None = None) -> DFG:
    """Drop nodes from which no live node is reachable.

    ``live`` defaults to the STORE nodes (a loop's only side effects).
    Liveness follows edges backward, including loop-carried ones.
    """
    from repro.dfg.ops import Opcode

    if live is None:
        roots = [n.id for n in dfg.nodes() if n.opcode is Opcode.STORE]
    else:
        roots = list(live)
    if not roots:
        return dfg.copy()

    alive: set[int] = set()
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        if node in alive:
            continue
        alive.add(node)
        frontier.extend(dfg.predecessors(node))

    pruned = dfg.copy()
    for node_id in dfg.node_ids():
        if node_id not in alive:
            pruned.remove_node(node_id)
    return pruned
