"""A small fluent builder for dataflow graphs.

The builder wires operands in one call per operation and validates the
finished graph, which keeps kernel definitions readable:

>>> from repro.dfg import DFGBuilder, Opcode
>>> b = DFGBuilder("axpy")
>>> a = b.op(Opcode.LOAD, name="a")
>>> x = b.op(Opcode.LOAD, name="x")
>>> ax = b.op(Opcode.MUL, a, x)
>>> y = b.op(Opcode.LOAD, name="y")
>>> s = b.op(Opcode.ADD, ax, y)
>>> _ = b.op(Opcode.STORE, s)
>>> dfg = b.build()
>>> dfg.num_nodes, dfg.num_edges
(6, 5)
"""

from __future__ import annotations

from repro.dfg.graph import DFG
from repro.dfg.ops import Opcode


class DFGBuilder:
    """Accumulates nodes and edges, then emits a validated :class:`DFG`."""

    def __init__(self, name: str = "dfg"):
        self._dfg = DFG(name=name)
        self._built = False

    def op(self, opcode: Opcode, *inputs: int, name: str = "") -> int:
        """Add an operation fed by ``inputs`` (same-iteration edges)."""
        node = self._dfg.add_node(opcode, name)
        for port, src in enumerate(inputs):
            self._dfg.add_edge(src, node, dist=0, port=port)
        return node

    def edge(self, src: int, dst: int, dist: int = 0, port: int = 0) -> None:
        """Add an explicit edge; use ``dist >= 1`` for loop-carried deps."""
        self._dfg.add_edge(src, dst, dist=dist, port=port)

    def back_edge(self, src: int, dst: int, dist: int = 1, port: int = 0) -> None:
        """Add a loop-carried dependence (defaults to distance 1)."""
        if dist < 1:
            raise ValueError("a back edge needs dist >= 1")
        self._dfg.add_edge(src, dst, dist=dist, port=port)

    def recurrence(self, opcodes: list[Opcode], dist: int = 1,
                   names: list[str] | None = None) -> list[int]:
        """Add a simple recurrence cycle through ``opcodes``.

        Creates a chain n0 -> n1 -> ... -> nk and closes it with a
        ``dist``-distance back edge nk -> n0, modeling a loop-carried
        serial dependence of length ``len(opcodes)``.
        """
        if not opcodes:
            raise ValueError("a recurrence needs at least one opcode")
        names = names or [""] * len(opcodes)
        nodes = [self._dfg.add_node(op, nm) for op, nm in zip(opcodes, names)]
        for u, v in zip(nodes, nodes[1:]):
            self._dfg.add_edge(u, v, dist=0)
        self._dfg.add_edge(nodes[-1], nodes[0], dist=dist)
        return nodes

    def build(self) -> DFG:
        """Validate and return the graph. The builder is single-use."""
        if self._built:
            raise RuntimeError("this builder has already produced its DFG")
        self._dfg.validate()
        self._built = True
        return self._dfg
