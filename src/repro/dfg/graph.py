"""The dataflow graph container.

Nodes are single-cycle operations; directed edges are data dependences.
An edge with ``dist == 0`` is an intra-iteration dependence; ``dist >= 1``
is a loop-carried dependence spanning that many iterations. Parallel
edges between the same node pair are allowed (``x * x``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.dfg.ops import Opcode, arity, is_memory_op
from repro.errors import DFGError


@dataclass(frozen=True)
class DFGNode:
    """One operation in the dataflow graph."""

    id: int
    opcode: Opcode
    name: str = ""

    @property
    def label(self) -> str:
        return self.name or f"n{self.id}"

    def __repr__(self) -> str:
        return f"DFGNode({self.label}:{self.opcode.name.lower()})"


@dataclass(frozen=True)
class DFGEdge:
    """A data dependence from ``src`` to ``dst``.

    Attributes:
        dist: Iteration distance (0 = same iteration).
        port: Operand slot on the consumer, for documentation/debugging.
    """

    src: int
    dst: int
    dist: int = 0
    port: int = 0

    def __post_init__(self) -> None:
        if self.dist < 0:
            raise DFGError(f"negative iteration distance on edge {self}")

    def __repr__(self) -> str:
        tag = f" dist={self.dist}" if self.dist else ""
        return f"DFGEdge({self.src}->{self.dst}{tag})"


@dataclass
class DFG:
    """A mutable dataflow graph.

    Build one with :class:`~repro.dfg.builder.DFGBuilder` or the
    ``add_node``/``add_edge`` methods, then call :meth:`validate` before
    handing it to a mapper.
    """

    name: str = "dfg"
    _nodes: dict[int, DFGNode] = field(default_factory=dict)
    _edges: list[DFGEdge] = field(default_factory=list)
    _out: dict[int, list[DFGEdge]] = field(default_factory=dict)
    _in: dict[int, list[DFGEdge]] = field(default_factory=dict)
    _next_id: int = 0

    # -- construction -----------------------------------------------------

    def add_node(self, opcode: Opcode, name: str = "") -> int:
        """Add an operation and return its node id."""
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = DFGNode(node_id, opcode, name)
        self._out[node_id] = []
        self._in[node_id] = []
        return node_id

    def add_edge(self, src: int, dst: int, dist: int = 0, port: int = 0) -> DFGEdge:
        """Add a data dependence from ``src`` to ``dst``."""
        if src not in self._nodes:
            raise DFGError(f"edge source {src} is not a node")
        if dst not in self._nodes:
            raise DFGError(f"edge target {dst} is not a node")
        edge = DFGEdge(src, dst, dist, port)
        self._edges.append(edge)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        return edge

    def remove_node(self, node_id: int) -> None:
        """Remove a node and every edge touching it."""
        if node_id not in self._nodes:
            raise DFGError(f"{node_id} is not a node")
        touching = set(self._out[node_id]) | set(self._in[node_id])
        self._edges = [e for e in self._edges if e not in touching]
        for edge in self._out.pop(node_id):
            self._in[edge.dst] = [e for e in self._in[edge.dst] if e not in touching]
        for edge in self._in.pop(node_id):
            self._out[edge.src] = [e for e in self._out[edge.src] if e not in touching]
        del self._nodes[node_id]

    # -- accessors --------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node(self, node_id: int) -> DFGNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise DFGError(f"{node_id} is not a node") from None

    def nodes(self) -> list[DFGNode]:
        """All nodes, in id order."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    def edges(self) -> list[DFGEdge]:
        return list(self._edges)

    def out_edges(self, node_id: int) -> list[DFGEdge]:
        return list(self._out[node_id])

    def in_edges(self, node_id: int) -> list[DFGEdge]:
        return list(self._in[node_id])

    def successors(self, node_id: int) -> list[int]:
        return [e.dst for e in self._out[node_id]]

    def predecessors(self, node_id: int) -> list[int]:
        return [e.src for e in self._in[node_id]]

    def memory_nodes(self) -> list[int]:
        """Ids of LOAD/STORE nodes (placement-constrained to the SPM column)."""
        return [n.id for n in self.nodes() if is_memory_op(n.opcode)]

    # -- structure --------------------------------------------------------

    def copy(self, name: str | None = None) -> "DFG":
        """A deep, independent copy (nodes/edges are immutable values)."""
        other = DFG(name=name if name is not None else self.name)
        other._nodes = dict(self._nodes)
        other._edges = list(self._edges)
        other._out = {k: list(v) for k, v in self._out.items()}
        other._in = {k: list(v) for k, v in self._in.items()}
        other._next_id = self._next_id
        return other

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to a networkx multigraph (edge attr ``dist``)."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes():
            graph.add_node(node.id, opcode=node.opcode)
        for edge in self._edges:
            graph.add_edge(edge.src, edge.dst, dist=edge.dist)
        return graph

    def validate(self) -> None:
        """Check structural invariants; raise :class:`DFGError` on failure.

        Invariants: arity limits respected, no dist-0 cycles (an
        intra-iteration dependence cycle is not executable), graph is
        non-empty.
        """
        if not self._nodes:
            raise DFGError(f"DFG {self.name!r} has no nodes")
        for node in self.nodes():
            n_in = len(self._in[node.id])
            if n_in > arity(node.opcode):
                raise DFGError(
                    f"node {node.label} ({node.opcode.name}) has {n_in} inputs, "
                    f"max is {arity(node.opcode)}"
                )
        forward = nx.DiGraph()
        forward.add_nodes_from(self._nodes)
        forward.add_edges_from(
            (e.src, e.dst) for e in self._edges if e.dist == 0
        )
        if not nx.is_directed_acyclic_graph(forward):
            cycle = nx.find_cycle(forward)
            raise DFGError(
                f"DFG {self.name!r} has an intra-iteration dependence cycle: {cycle}"
            )

    def __repr__(self) -> str:
        return f"DFG({self.name!r}, {self.num_nodes} nodes, {self.num_edges} edges)"
