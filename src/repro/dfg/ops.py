"""Operation codes executed by CGRA functional units.

Every opcode executes in one cycle on the tile's own clock (the ICED
prototype targets single-cycle FUs; section IV-A). ``LOAD``/``STORE``
access the scratchpad and may only be placed on SPM-connected tiles.
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """The instruction set a tile's functional units implement."""

    # arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    SQRT = "sqrt"
    MAC = "mac"
    # bitwise / shifts
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # comparison and predication (control flow converted to data flow)
    CMP = "cmp"
    SELECT = "select"
    PHI = "phi"
    # data movement
    CONST = "const"
    MOV = "mov"
    # scratchpad access
    LOAD = "load"
    STORE = "store"

    def __repr__(self) -> str:
        return f"Opcode.{self.name}"


MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.STORE})

COMPUTE_OPS = frozenset(op for op in Opcode if op not in MEMORY_OPS)

#: Opcodes whose result does not depend on input order; used by unrolling
#: to decide whether an accumulation chain may be re-associated.
ASSOCIATIVE_OPS = frozenset(
    {Opcode.ADD, Opcode.MUL, Opcode.MIN, Opcode.MAX, Opcode.AND, Opcode.OR, Opcode.XOR}
)

#: Maximum number of data operands per opcode (SELECT takes predicate +
#: two values). Extra inputs are rejected by DFG validation.
ARITY: dict[Opcode, int] = {
    Opcode.NOT: 1,
    Opcode.ABS: 1,
    Opcode.SQRT: 1,
    Opcode.MOV: 1,
    Opcode.CONST: 0,
    Opcode.LOAD: 2,
    Opcode.STORE: 3,
    Opcode.SELECT: 3,
    Opcode.MAC: 3,
    Opcode.PHI: 4,
}
DEFAULT_ARITY = 2


def arity(op: Opcode) -> int:
    """Maximum number of incoming data edges allowed for ``op``."""
    return ARITY.get(op, DEFAULT_ARITY)


def is_memory_op(op: Opcode) -> bool:
    """True for opcodes that must sit on an SPM-connected tile."""
    return op in MEMORY_OPS
