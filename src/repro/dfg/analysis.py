"""DFG analyses: recurrence cycles, MII bounds, orders and levels.

The initiation interval of a modulo-scheduled loop is bounded below by

* ``RecMII`` — for every recurrence cycle, ceil(total latency / total
  iteration distance); with single-cycle operations the latency of a
  cycle is its node count;
* ``ResMII`` — ceil(#operations / #tiles).

These are the quantities Table I reports per kernel and that
Algorithm 2 of the paper seeds its II search with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.dfg.graph import DFG
from repro.errors import DFGError

#: Safety cap: synthesized and frontend DFGs close only a handful of
#: recurrence cycles; hitting this cap indicates a degenerate graph.
MAX_CYCLES = 50_000


@dataclass(frozen=True)
class RecurrenceCycle:
    """One elementary recurrence cycle of a DFG.

    Attributes:
        nodes: The node ids around the cycle, in traversal order.
        distance: Minimal total iteration distance around the cycle.
        mii: ceil(len(nodes) / distance) — this cycle's II lower bound.
    """

    nodes: tuple[int, ...]
    distance: int

    @property
    def length(self) -> int:
        return len(self.nodes)

    @property
    def mii(self) -> int:
        return math.ceil(self.length / self.distance)


def recurrence_cycles(dfg: DFG, max_cycles: int = MAX_CYCLES) -> list[RecurrenceCycle]:
    """Enumerate the elementary recurrence cycles of ``dfg``.

    For parallel edges between the same node pair, the minimum distance
    is used (it yields the tightest II bound). Cycles are returned
    longest first, then by node ids, so callers iterate deterministically.
    """
    # Collapse parallel edges to their minimum distance.
    min_dist: dict[tuple[int, int], int] = {}
    for edge in dfg.edges():
        key = (edge.src, edge.dst)
        if key not in min_dist or edge.dist < min_dist[key]:
            min_dist[key] = edge.dist
    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.node_ids())
    graph.add_edges_from(min_dist)

    cycles: list[RecurrenceCycle] = []
    for node_cycle in nx.simple_cycles(graph):
        distance = 0
        ordered = list(node_cycle)
        for u, v in zip(ordered, ordered[1:] + ordered[:1]):
            distance += min_dist[(u, v)]
        if distance == 0:
            raise DFGError(
                f"DFG {dfg.name!r} has a zero-distance dependence cycle "
                f"through nodes {ordered}"
            )
        cycles.append(RecurrenceCycle(tuple(ordered), distance))
        if len(cycles) > max_cycles:
            raise DFGError(
                f"DFG {dfg.name!r} has more than {max_cycles} recurrence "
                "cycles; refusing to enumerate"
            )
    cycles.sort(key=lambda c: (-c.mii, -c.length, c.nodes))
    return cycles


def rec_mii(dfg: DFG) -> int:
    """Recurrence-constrained minimum II (1 when the DFG is acyclic)."""
    cycles = recurrence_cycles(dfg)
    if not cycles:
        return 1
    return max(cycle.mii for cycle in cycles)


def res_mii(dfg: DFG, num_tiles: int) -> int:
    """Resource-constrained minimum II for a fabric with ``num_tiles``."""
    if num_tiles <= 0:
        raise ValueError("num_tiles must be positive")
    return math.ceil(dfg.num_nodes / num_tiles)


def min_ii(dfg: DFG, num_tiles: int) -> int:
    """max(RecMII, ResMII) — Algorithm 2's starting II."""
    return max(rec_mii(dfg), res_mii(dfg, num_tiles))


def critical_cycle_nodes(dfg: DFG) -> set[int]:
    """Nodes on any recurrence cycle that achieves RecMII.

    These are the green nodes of Fig 1: slowing any of them down would
    lengthen the II, so the DVFS labeler pins them to the normal level.
    """
    cycles = recurrence_cycles(dfg)
    if not cycles:
        return set()
    bound = max(cycle.mii for cycle in cycles)
    critical: set[int] = set()
    for cycle in cycles:
        if cycle.mii == bound:
            critical.update(cycle.nodes)
    return critical


def topo_order(dfg: DFG) -> list[int]:
    """A deterministic topological order over intra-iteration edges.

    Loop-carried edges are ignored (they point backward in iteration
    space); ties are broken by node id.
    """
    indegree = {n: 0 for n in dfg.node_ids()}
    for edge in dfg.edges():
        if edge.dist == 0:
            indegree[edge.dst] += 1
    ready = sorted(n for n, d in indegree.items() if d == 0)
    order: list[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        changed = False
        for edge in dfg.out_edges(node):
            if edge.dist == 0:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
                    changed = True
        if changed:
            ready.sort()
    if len(order) != dfg.num_nodes:
        raise DFGError(f"DFG {dfg.name!r} has an intra-iteration cycle")
    return order


def asap_levels(dfg: DFG) -> dict[int, int]:
    """Longest intra-iteration path from any source to each node."""
    levels = {n: 0 for n in dfg.node_ids()}
    for node in topo_order(dfg):
        for edge in dfg.out_edges(node):
            if edge.dist == 0:
                levels[edge.dst] = max(levels[edge.dst], levels[node] + 1)
    return levels


def height_levels(dfg: DFG) -> dict[int, int]:
    """Longest intra-iteration path from each node to any sink.

    Used as the scheduling priority: deeper nodes are placed first.
    """
    heights = {n: 0 for n in dfg.node_ids()}
    for node in reversed(topo_order(dfg)):
        for edge in dfg.out_edges(node):
            if edge.dist == 0:
                heights[node] = max(heights[node], heights[edge.dst] + 1)
    return heights


@dataclass(frozen=True)
class DFGAnalysis:
    """The analysis bundle the placement engine consumes.

    Computed once per DFG by the compile pipeline's *analyze* pass and
    threaded through every II retry of the engine's deepening loop —
    the quantities are invariant across retries, so recomputing them
    per attempt (as the engine historically did) is pure waste.
    """

    rec_mii: int
    topo: tuple[int, ...]
    heights: dict[int, int]


def analyze_dfg(dfg: DFG) -> DFGAnalysis:
    """Validate ``dfg`` and compute the engine's per-DFG analyses."""
    dfg.validate()
    return DFGAnalysis(
        rec_mii=rec_mii(dfg),
        topo=tuple(topo_order(dfg)),
        heights=height_levels(dfg),
    )


@dataclass(frozen=True)
class DFGStats:
    """The per-kernel characterization Table I reports."""

    name: str
    nodes: int
    edges: int
    rec_mii: int


def dfg_stats(dfg: DFG) -> DFGStats:
    """Compute Table I's (nodes, edges, RecMII) row for ``dfg``."""
    return DFGStats(dfg.name, dfg.num_nodes, dfg.num_edges, rec_mii(dfg))
