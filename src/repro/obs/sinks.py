"""Trace and metric exporters: newline-JSONL and Chrome ``trace_event``.

The Chrome format is the ``chrome://tracing`` / Perfetto JSON object
form (``{"traceEvents": [...]}``) using complete ("X") events. Two
process rows separate the timebases: wall-clock spans land on the
"wall clock" row (perf_counter nanoseconds, rebased so the earliest
span starts at t=0), logical spans (streaming windows, simulator
replay batches) land on the "simulated cycles" row where one trace
microsecond equals one base cycle. Metric counters append as Chrome
counter ("C") events so Perfetto plots them as tracks.
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SIM_TRACK, Span, Tracer

#: Chrome pids for the two timebase rows.
WALL_PID = 1
SIM_PID = 2

#: The four span categories a full ICED run produces.
CORE_CATEGORIES = ("pipeline", "mapper", "sim", "streaming")


def _spans_of(source) -> list[Span]:
    if isinstance(source, Tracer):
        with source._lock:
            return list(source.spans)
    return [s if isinstance(s, Span) else Span.from_dict(s) for s in source]


def normalize_spans(source, categories: tuple[str, ...] | None = None,
                    ) -> list[dict]:
    """Span *content* with ids, times and process/thread stamps erased.

    Returns one dict per span — (name, category, attrs, depth) in
    recording order — the representation under which a ``--jobs N``
    sweep's trace must equal a serial one's. ``depth`` is the distance
    to the span's root, which pins the tree shape without exposing the
    (run-specific) id numbering. ``categories`` optionally restricts
    the view (e.g. to :data:`CORE_CATEGORIES`, excluding
    executor-internal bookkeeping spans).
    """
    spans = _spans_of(source)
    by_id = {s.span_id: s for s in spans}
    out = []
    for s in spans:
        if categories is not None and s.category not in categories:
            continue
        depth = 0
        parent = s.parent_id
        seen = set()
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            depth += 1
            parent = by_id[parent].parent_id
        out.append({
            "name": s.name,
            "category": s.category,
            "attrs": dict(s.attrs),
            "depth": depth,
            "track": s.track,
        })
    return out


def write_jsonl(path: str, tracer: Tracer,
                registry: MetricsRegistry | None = None) -> int:
    """One JSON object per line: spans first, then metric snapshots.

    Returns the number of lines written.
    """
    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in _spans_of(tracer):
            record = {"type": "span"} | span.to_dict()
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            lines += 1
        if registry is not None:
            for record in registry.snapshot().values():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                lines += 1
    return lines


def chrome_trace_events(tracer: Tracer,
                        registry: MetricsRegistry | None = None) -> list[dict]:
    """The ``traceEvents`` list for one trace (see module docstring)."""
    spans = _spans_of(tracer)
    wall_starts = [s.start_ns for s in spans if s.track != SIM_TRACK]
    epoch_ns = min(wall_starts) if wall_starts else 0

    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": WALL_PID, "tid": 0,
         "args": {"name": "wall clock"}},
        {"ph": "M", "name": "process_name", "pid": SIM_PID, "tid": 0,
         "args": {"name": "simulated cycles"}},
    ]
    last_wall_us = 0.0
    for span in spans:
        if span.track == SIM_TRACK:
            pid, ts_ns = SIM_PID, span.start_ns
        else:
            pid, ts_ns = WALL_PID, span.start_ns - epoch_ns
        ts_us = ts_ns / 1000.0
        dur_us = span.dur_ns / 1000.0
        if pid == WALL_PID:
            last_wall_us = max(last_wall_us, ts_us + dur_us)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category or "uncategorized",
            "ts": round(ts_us, 3),
            "dur": round(dur_us, 3),
            "pid": pid,
            "tid": 1,
            "args": dict(span.attrs) | {"span_id": span.span_id},
        })
    if registry is not None:
        for name, record in sorted(registry.snapshot().items()):
            if record["type"] not in ("counter", "gauge"):
                continue
            events.append({
                "ph": "C",
                "name": name,
                "cat": "metrics",
                "ts": round(last_wall_us, 3),
                "pid": WALL_PID,
                "tid": 1,
                "args": {"value": record["value"]},
            })
    return events


def write_chrome_trace(path: str, tracer: Tracer,
                       registry: MetricsRegistry | None = None) -> int:
    """Write a Chrome/Perfetto-loadable trace; returns the event count."""
    events = chrome_trace_events(tracer, registry)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    return len(events)


def write_trace(path: str, tracer: Tracer,
                registry: MetricsRegistry | None = None) -> int:
    """Format by extension: ``.jsonl`` -> JSONL, else Chrome JSON."""
    if path.endswith(".jsonl"):
        return write_jsonl(path, tracer, registry)
    return write_chrome_trace(path, tracer, registry)
