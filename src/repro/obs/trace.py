"""Nested-span tracing with process/thread-safe ids.

The tracer is the substrate every subsystem reports into: compile
pipeline passes, mapper per-II attempts, cycle-simulator replay
batches and streaming DVFS windows all become :class:`Span` records in
one stream, renderable as a single timeline (see
:mod:`repro.obs.sinks` for the Chrome ``trace_event`` exporter).

Design rules:

* **disabled is free** — no tracer installed means
  :func:`span` returns one shared no-op context manager; instrumented
  hot paths pay a global read and a call, nothing else;
* **ids merge cleanly** — span ids are allocated under a lock and
  remapped on :meth:`Tracer.adopt`, so a ``SweepExecutor`` worker's
  span stream folds into the parent trace deterministically (worker
  streams are adopted in work-list order, and content never depends on
  which process recorded it);
* **two timebases** — spans default to wall-clock nanoseconds, but a
  producer may record *logical* spans on the ``sim`` track (cycle
  time), which the Chrome sink renders as a separate process row.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

#: Track names: wall-clock spans vs. simulated-cycle spans.
WALL_TRACK = "wall"
SIM_TRACK = "sim"


@dataclass
class Span:
    """One completed (or logical) span in a trace."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_ns: int
    dur_ns: int
    attrs: dict = field(default_factory=dict)
    pid: int = 0
    tid: int = 0
    track: str = WALL_TRACK

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
            "track": self.track,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
            name=d["name"],
            category=d.get("category", ""),
            start_ns=d.get("start_ns", 0),
            dur_ns=d.get("dur_ns", 0),
            attrs=dict(d.get("attrs", {})),
            pid=d.get("pid", 0),
            tid=d.get("tid", 0),
            track=d.get("track", WALL_TRACK),
        )

    def set(self, **attrs) -> None:
        """Attach attributes (typically at exit, once counters exist)."""
        self.attrs.update(attrs)

    def __bool__(self) -> bool:
        return True


class _NullSpan:
    """The no-op span: accepts attributes, records nothing."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __bool__(self) -> bool:
        return False


class _NullSpanContext:
    """Shared, stateless no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager for one live span on one tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects spans from any thread of one process.

    Nesting is tracked per thread (a thread-local stack); ids are
    allocated under a lock so concurrent threads never collide. Spans
    are appended to :attr:`spans` when they *finish*, so children
    precede their parents in the list — consumers that want tree order
    sort by ``start_ns`` or follow ``parent_id``.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()

    # -- id allocation ------------------------------------------------------

    def _alloc_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> int | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "", **attrs) -> _SpanContext:
        """A context manager timing one wall-clock span."""
        span = Span(
            span_id=self._alloc_id(),
            parent_id=self.current_span_id(),
            name=name,
            category=category,
            start_ns=0,
            dur_ns=0,
            attrs=dict(attrs),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        return _SpanContext(self, span)

    def _push(self, span: Span) -> None:
        span.start_ns = time.perf_counter_ns()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.dur_ns = time.perf_counter_ns() - span.start_ns
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self.spans.append(span)

    def add_span(self, name: str, category: str = "", *,
                 start_ns: int = 0, dur_ns: int = 0,
                 track: str = WALL_TRACK, **attrs) -> Span:
        """Record a completed span directly (used for logical-time
        spans, e.g. streaming windows measured in simulated cycles)."""
        span = Span(
            span_id=self._alloc_id(),
            parent_id=self.current_span_id(),
            name=name,
            category=category,
            start_ns=start_ns,
            dur_ns=dur_ns,
            attrs=dict(attrs),
            pid=os.getpid(),
            tid=threading.get_ident(),
            track=track,
        )
        with self._lock:
            self.spans.append(span)
        return span

    # -- merging ------------------------------------------------------------

    def adopt(self, span_dicts: list[dict],
              parent_id: int | None = None) -> list[Span]:
        """Fold a serialized span stream (e.g. a pool worker's) into
        this trace.

        Every adopted span gets a fresh id from this tracer's space;
        parent references *within* the stream are remapped, and spans
        whose parent is not in the stream are attached to ``parent_id``
        (defaulting to the caller's current span). Adoption order is
        the caller's responsibility — adopting worker streams in
        work-list order keeps a parallel trace deterministic.
        """
        if parent_id is None:
            parent_id = self.current_span_id()
        remap: dict[int, int] = {}
        adopted: list[Span] = []
        for d in span_dicts:
            span = Span.from_dict(d)
            remap[span.span_id] = span.span_id = self._alloc_id()
            adopted.append(span)
        for span in adopted:
            if span.parent_id in remap:
                span.parent_id = remap[span.parent_id]
            else:
                span.parent_id = parent_id
        with self._lock:
            self.spans.extend(adopted)
        return adopted

    # -- inspection ---------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        with self._lock:
            return [s.to_dict() for s in self.spans]

    def categories(self) -> set[str]:
        with self._lock:
            return {s.category for s in self.spans}

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)


#: The process-wide tracer; ``None`` means tracing is disabled.
_ACTIVE: Tracer | None = None


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def uninstall_tracer() -> Tracer | None:
    """Disable tracing; returns the tracer that was active (if any)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def current_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def span(name: str, category: str = "", **attrs):
    """Open a span on the installed tracer; free no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, category, **attrs)
