"""`repro.obs` — the unified observability layer.

Zero-dependency tracing (nested spans, two timebases) and metrics
(counters, gauges, histograms) used by every subsystem: compile
pipeline passes, mapper per-II attempts, the cycle simulator and the
streaming runtime's DVFS windows all report here, and the sinks render
one run as one timeline (Chrome ``trace_event`` JSON for Perfetto, or
newline-JSONL). See ``docs/observability.md``.

Tracing is **off by default**: instrumented code calls
:func:`span`, which is a shared no-op until :func:`install_tracer`
turns recording on (the ``repro trace`` subcommand and the ``--trace``
flags do). The metrics registry is always on — recording a counter is
a dict lookup and an add.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    set_metrics,
)
from repro.obs.sinks import (
    CORE_CATEGORIES,
    chrome_trace_events,
    normalize_spans,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.trace import (
    NULL_SPAN,
    SIM_TRACK,
    WALL_TRACK,
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    span,
    uninstall_tracer,
)

__all__ = [
    "CORE_CATEGORIES",
    "DEFAULT_BUCKETS",
    "NULL_SPAN",
    "SIM_TRACK",
    "WALL_TRACK",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "current_tracer",
    "install_tracer",
    "metrics",
    "normalize_spans",
    "set_metrics",
    "span",
    "uninstall_tracer",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
