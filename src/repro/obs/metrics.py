"""Counters, gauges and fixed-bucket histograms.

The registry is the numeric side of the observability layer: the
compile pipeline absorbs each pass's ``PassEvent`` counters (including
the engine's :class:`~repro.mapper.engine.EngineStats`) into it, the
streaming runtime counts windows and level switches, and sinks export
a snapshot alongside the span stream. It deliberately mirrors the
shape (not the wire format) of Prometheus-style registries while
staying zero-dependency and cheap enough to leave always on.

All instruments are thread-safe; pool workers snapshot their registry
per work item and the parent merges the snapshots in work-list order,
so a ``--jobs N`` sweep accumulates exactly the counters a serial one
does.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default histogram buckets: wall milliseconds, log-ish spaced.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                   500.0, 1000.0, 2000.0, 5000.0)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A last-write-wins sample."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed upper-bound buckets plus sum/count (cumulative on export)."""

    __slots__ = ("name", "buckets", "counts", "sum", "count", "_lock")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +inf overflow
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory(name)
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, lambda n: Histogram(n, buckets))

    def absorb(self, prefix: str, counters: dict[str, float]) -> None:
        """Fold a flat counter dict (e.g. a pass's ``PassEvent``
        counters) into ``{prefix}.{key}`` counters."""
        for key, value in counters.items():
            self.counter(f"{prefix}.{key}").inc(value)

    def snapshot(self) -> dict[str, dict]:
        """Every instrument as plain data, keyed by name."""
        with self._lock:
            instruments = list(self._instruments.values())
        return {inst.name: inst.to_dict() for inst in instruments}

    def counters(self) -> dict[str, float]:
        """Just the counter values (the deterministic slice tests use)."""
        return {
            name: d["value"] for name, d in self.snapshot().items()
            if d["type"] == "counter"
        }

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram cells add; gauges take the incoming
        value (last write wins, matching their semantics).
        """
        for name, d in snapshot.items():
            kind = d.get("type")
            if kind == "counter":
                self.counter(name).inc(d.get("value", 0.0))
            elif kind == "gauge":
                self.gauge(name).set(d.get("value", 0.0))
            elif kind == "histogram":
                hist = self.histogram(name,
                                      tuple(d.get("buckets", DEFAULT_BUCKETS)))
                incoming = d.get("counts", [])
                with hist._lock:
                    for i, n in enumerate(incoming):
                        if i < len(hist.counts):
                            hist.counts[i] += n
                    hist.sum += d.get("sum", 0.0)
                    hist.count += d.get("count", 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide registry (always on; recording is cheap)."""
    return _REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (pool workers isolate per item);
    returns the previous one so callers can restore it."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous
