"""ICED: an integrated CGRA framework enabling DVFS-aware acceleration.

A from-scratch Python reproduction of the MICRO 2024 paper: a
parametric spatio-temporal CGRA with DVFS islands, the DVFS-aware
compilation toolchain (recurrence-based labeling + island-aware
modulo-scheduling mapper), a cycle-accurate execution/power model, and
the streaming runtime (DVFS controller, DRIPS baseline) behind the
paper's evaluation.

Quickstart::

    from repro import CGRA, compile_kernel
    cgra = CGRA.build(6, 6, island_shape=(2, 2))
    result = compile_kernel("fir", cgra, "iced")
    print(result.mapping.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.arch import (
    CGRA,
    DVFSConfig,
    DVFSLevel,
    DEFAULT_DVFS_CONFIG,
    ScratchpadMemory,
)
from repro.compile import (
    CompileResult,
    Instrumentation,
    MappingCache,
    compile_dfg,
    compile_kernel,
    get_cache,
    render_report,
)
from repro.dfg import DFG, DFGBuilder, Opcode, dfg_stats, rec_mii, unroll
from repro.errors import (
    IcedError,
    MappingError,
    ValidationError,
)
from repro.kernels import fig1_kernel, kernel_names, load_kernel
from repro.mapper import (
    EngineConfig,
    Mapping,
    assign_per_tile_dvfs,
    map_baseline,
    map_dvfs_aware,
    validate_mapping,
)
from repro.power import area_report, energy_uj, mapping_power
from repro.sim import (
    average_dvfs_fraction,
    simulate_execution,
    utilization_stats,
)
from repro.streaming import (
    gcn_app,
    lu_app,
    partition_app,
    simulate_drips,
    simulate_stream,
    streaming_cgra,
)

__version__ = "1.0.0"

__all__ = [
    "CGRA",
    "DVFSConfig",
    "DVFSLevel",
    "DEFAULT_DVFS_CONFIG",
    "ScratchpadMemory",
    "CompileResult",
    "Instrumentation",
    "MappingCache",
    "compile_dfg",
    "compile_kernel",
    "get_cache",
    "render_report",
    "DFG",
    "DFGBuilder",
    "Opcode",
    "dfg_stats",
    "rec_mii",
    "unroll",
    "IcedError",
    "MappingError",
    "ValidationError",
    "fig1_kernel",
    "kernel_names",
    "load_kernel",
    "EngineConfig",
    "Mapping",
    "assign_per_tile_dvfs",
    "map_baseline",
    "map_dvfs_aware",
    "validate_mapping",
    "area_report",
    "energy_uj",
    "mapping_power",
    "average_dvfs_fraction",
    "simulate_execution",
    "utilization_stats",
    "gcn_app",
    "lu_app",
    "partition_app",
    "simulate_drips",
    "simulate_stream",
    "streaming_cgra",
    "__version__",
]
