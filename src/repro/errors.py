"""Exception hierarchy for the ICED reproduction.

Every error raised on purpose by this library derives from
:class:`IcedError`, so callers can catch one type at the API boundary.
"""

from __future__ import annotations


class IcedError(Exception):
    """Base class for all errors raised by this library."""


class ArchitectureError(IcedError):
    """An architecture description is inconsistent or unsupported."""


class IslandConfigError(ArchitectureError):
    """A DVFS island partition does not tile the fabric correctly."""


class DFGError(IcedError):
    """A dataflow graph is malformed (dangling edges, bad opcodes, ...)."""


class FrontendError(IcedError):
    """A loop-nest program cannot be lowered to a DFG."""


class MappingError(IcedError):
    """The mapper could not find a valid mapping within its II budget."""

    def __init__(self, message: str, last_ii: int | None = None):
        super().__init__(message)
        self.last_ii = last_ii


class ValidationError(IcedError):
    """An independently checked mapping invariant was violated."""


class SimulationError(IcedError):
    """The cycle-accurate simulator hit an inconsistent state."""


class StreamingError(IcedError):
    """The streaming pipeline runtime hit an inconsistent state."""


class PartitionError(StreamingError):
    """No feasible island partition exists for a streaming application."""


class ScenarioError(StreamingError):
    """An unknown or misconfigured traffic scenario was requested."""


class TraceFormatError(StreamingError):
    """A replayed trace file violates the expected CSV schema."""
