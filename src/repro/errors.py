"""Exception hierarchy for the ICED reproduction.

Every error raised on purpose by this library derives from
:class:`IcedError`, so callers can catch one type at the API boundary.
"""

from __future__ import annotations


class IcedError(Exception):
    """Base class for all errors raised by this library."""


class ArchitectureError(IcedError):
    """An architecture description is inconsistent or unsupported."""


class IslandConfigError(ArchitectureError):
    """A DVFS island partition does not tile the fabric correctly."""


class DFGError(IcedError):
    """A dataflow graph is malformed (dangling edges, bad opcodes, ...)."""


class FrontendError(IcedError):
    """A loop-nest program cannot be lowered to a DFG."""


class MappingError(IcedError):
    """The mapper could not find a valid mapping within its II budget."""

    def __init__(self, message: str, last_ii: int | None = None):
        super().__init__(message)
        self.last_ii = last_ii


class ValidationError(IcedError):
    """An independently checked mapping invariant was violated."""


class SimulationError(IcedError):
    """The cycle-accurate simulator hit an inconsistent state."""


class StreamingError(IcedError):
    """The streaming pipeline runtime hit an inconsistent state."""


class PartitionError(StreamingError):
    """No feasible island partition exists for a streaming application."""


class ScenarioError(StreamingError):
    """An unknown or misconfigured traffic scenario was requested."""


class TraceFormatError(StreamingError):
    """A replayed trace file violates the expected CSV schema.

    Carries the offending location and value as attributes so callers
    (and the CLI) can report *what* was wrong, not just where:
    ``path``/``line`` locate the row, ``column`` names the field and
    ``value`` is the raw cell (or row) that failed validation. All are
    ``None`` for file-level failures (missing file, empty trace).
    """

    def __init__(self, message: str, *, path: str | None = None,
                 line: int | None = None, column: str | None = None,
                 value: str | None = None):
        super().__init__(message)
        self.path = path
        self.line = line
        self.column = column
        self.value = value


class DSEError(IcedError):
    """A design-space sweep was misconfigured (e.g. a resume manifest
    that belongs to a different space)."""


class FleetError(StreamingError):
    """The multi-tenant fleet simulator hit an inconsistent state."""


class PlacementError(FleetError):
    """An unknown or infeasible fleet placement was requested."""
