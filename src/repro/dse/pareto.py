"""Pareto-frontier extraction over DSE result rows.

The DSE driver evaluates every design point on three axes — energy per
run, makespan and fabric area — and the frontier is the set of points
no other point beats on *every* axis. All axes minimize.

Determinism contract (property-tested): the frontier is a pure
function of the point *set* — permuting the input, or computing it
from a ``--jobs N`` sweep instead of a serial one, yields the exact
same list in the exact same order. That holds because membership is
order-free (strict Pareto dominance) and the output is canonically
sorted by the objective tuple with the point index as the tiebreak.
"""

from __future__ import annotations

#: The objective axes, in canonical sort order. All minimized.
PARETO_AXES = ("energy_uj", "makespan_us", "area_mm2")


def _objectives(row: dict, axes: tuple[str, ...]) -> tuple:
    return tuple(float(row[axis]) for axis in axes)


def dominates(a: dict, b: dict, axes: tuple[str, ...] = PARETO_AXES) -> bool:
    """True when ``a`` is at least as good as ``b`` on every axis and
    strictly better on at least one (minimization)."""
    obj_a = _objectives(a, axes)
    obj_b = _objectives(b, axes)
    return (all(x <= y for x, y in zip(obj_a, obj_b))
            and any(x < y for x, y in zip(obj_a, obj_b)))


def pareto_front(rows: list[dict],
                 axes: tuple[str, ...] = PARETO_AXES) -> list[dict]:
    """The non-dominated subset of ``rows``, canonically ordered.

    Duplicate objective vectors all survive (none strictly beats the
    other), so equivalent designs stay visible in the frontier. Rows
    lacking an axis (failed compiles carry no energy) must be filtered
    out by the caller; this function assumes evaluable rows. The
    ``O(n^2)`` scan is deliberate — sweeps are hundreds of points, and
    the simple form is what the permutation-stability property tests
    pin down.
    """
    front = [
        row for row in rows
        if not any(dominates(other, row, axes) for other in rows)
    ]
    front.sort(key=lambda row: (_objectives(row, axes),
                                row.get("index", 0)))
    return front
