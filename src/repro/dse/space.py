"""Declarative CGRA design spaces and their expansion into sweep points.

A :class:`DesignSpace` is the cartesian product of fabric dimensions,
island geometries, interconnect topologies, V/F-table depths, mapping
strategies and kernels — the axes Section V of the paper sweeps when
sizing an ICED deployment. The space is *data*, not code: it can be
written to / parsed from JSON, and its :meth:`DesignSpace.space_hash`
is a stable content address that the DSE driver stamps into every
cache artifact and result file, so a Pareto frontier is always
traceable to the exact space that produced it.

Expansion is deterministic: :meth:`DesignSpace.expand` emits
:class:`DesignPoint`\\ s in lexicographic axis order (fabric, island,
topology, vf, strategy, kernel) with dense indices assigned *after*
validity filtering, so the same space always yields the same point
list — the invariant the ``--jobs N == --jobs 1`` determinism gate
and the point-provenance tags both rest on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.kernels import kernel_names
from repro.mapper.backends import resolve_strategy

#: The memory-heavy Table I subset the default space sweeps: large
#: enough to exercise II deepening, small enough for a smoke sweep.
DEFAULT_KERNELS = ("fir", "latnrm", "mvt", "spmv")


def _parse_shape(text: str) -> tuple[int, int]:
    """``"6x6"`` -> ``(6, 6)``; raises ``ValueError`` on junk."""
    rows, sep, cols = str(text).partition("x")
    if not sep:
        raise ValueError(f"expected ROWSxCOLS, got {text!r}")
    return int(rows), int(cols)


def _shape_str(shape: tuple[int, int]) -> str:
    return f"{shape[0]}x{shape[1]}"


@dataclass(frozen=True)
class DesignPoint:
    """One fully-bound configuration drawn from a :class:`DesignSpace`.

    ``index`` is the point's position in the space's canonical
    expansion order — the provenance handle stamped into cache
    artifacts and result rows.
    """

    index: int
    rows: int
    cols: int
    island: tuple[int, int]
    topology: str
    vf_levels: int
    strategy: str
    kernel: str
    unroll: int = 1

    @property
    def fabric_key(self) -> tuple:
        """Everything that determines the CGRA object (not the compile)."""
        return (self.rows, self.cols, self.island, self.topology,
                self.vf_levels)

    @property
    def geometry_key(self) -> tuple:
        """The fabric minus its V/F table — the grouping under which
        DVFS-oblivious compiles are provably identical (the engine
        never reads a non-``normal`` level when ``dvfs_aware`` is off),
        so their artifacts may be aliased across V/F variants."""
        return (self.rows, self.cols, self.island, self.topology)

    def label(self) -> str:
        return (f"{self.kernel}/{self.strategy} on "
                f"{self.rows}x{self.cols}"
                f"/i{_shape_str(self.island)}/{self.topology}"
                f"/vf{self.vf_levels}")

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "fabric": _shape_str((self.rows, self.cols)),
            "island": _shape_str(self.island),
            "topology": self.topology,
            "vf_levels": self.vf_levels,
            "strategy": self.strategy,
            "kernel": self.kernel,
            "unroll": self.unroll,
        }


@dataclass(frozen=True)
class DesignSpace:
    """A declarative sweep specification over the ICED design axes.

    All axes are tuples so the space is hashable and its JSON form is
    canonical. ``iterations`` is not an axis: it scales every point's
    makespan identically and lives here only so energy numbers are
    reproducible from the result file alone.
    """

    name: str = "default"
    fabrics: tuple[tuple[int, int], ...] = ((4, 4), (6, 6), (8, 8))
    islands: tuple[tuple[int, int], ...] = ((2, 2),)
    topologies: tuple[str, ...] = ("mesh",)
    vf_levels: tuple[int, ...] = (3,)
    strategies: tuple[str, ...] = ("baseline", "iced")
    kernels: tuple[str, ...] = DEFAULT_KERNELS
    unroll: int = 1
    iterations: int = 1024

    def __post_init__(self) -> None:
        known = set(kernel_names())
        for kernel in self.kernels:
            if kernel not in known:
                raise ValueError(f"unknown kernel {kernel!r}")
        for strategy in self.strategies:
            resolve_strategy(strategy)  # raises on junk
        for topology in self.topologies:
            if topology not in ("mesh", "torus", "king"):
                raise ValueError(f"unknown topology {topology!r}")
        for depth in self.vf_levels:
            if not 1 <= depth <= 6:
                raise ValueError(
                    f"vf_levels must be in 1..6, got {depth}"
                )
        if not (self.fabrics and self.islands and self.topologies
                and self.vf_levels and self.strategies and self.kernels):
            raise ValueError("every design-space axis needs >= 1 value")

    # -- canonical forms ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fabrics": [_shape_str(f) for f in self.fabrics],
            "islands": [_shape_str(i) for i in self.islands],
            "topologies": list(self.topologies),
            "vf_levels": list(self.vf_levels),
            "strategies": list(self.strategies),
            "kernels": list(self.kernels),
            "unroll": self.unroll,
            "iterations": self.iterations,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DesignSpace":
        kwargs = dict(data)
        for axis in ("fabrics", "islands"):
            if axis in kwargs:
                kwargs[axis] = tuple(
                    _parse_shape(s) for s in kwargs[axis]
                )
        for axis in ("topologies", "vf_levels", "strategies", "kernels"):
            if axis in kwargs:
                kwargs[axis] = tuple(kwargs[axis])
        return cls(**kwargs)

    def space_hash(self) -> str:
        """Short, stable content address of the space definition."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]

    # -- expansion ----------------------------------------------------------

    def expand(self) -> list[DesignPoint]:
        """Every *valid* point, in canonical order with dense indices.

        Invalid combinations — an island shape that does not fit the
        fabric — are silently dropped rather than raised: a space that
        crosses ``8x8`` fabrics with ``4x4`` islands legitimately has
        no ``4x4``-fabric/``4x4``-island member. Filtering happens
        *before* index assignment, so indices are dense and stable.
        """
        points: list[DesignPoint] = []
        for rows, cols in self.fabrics:
            for island in self.islands:
                if island[0] > rows or island[1] > cols:
                    continue
                for topology in self.topologies:
                    for depth in self.vf_levels:
                        for strategy in self.strategies:
                            for kernel in self.kernels:
                                points.append(DesignPoint(
                                    index=len(points),
                                    rows=rows, cols=cols,
                                    island=island,
                                    topology=topology,
                                    vf_levels=depth,
                                    strategy=resolve_strategy(strategy),
                                    kernel=kernel,
                                    unroll=self.unroll,
                                ))
        return points
