"""Design-space exploration at scale: declarative sweeps over fabric
dimensions, island geometries, topologies, V/F tables and strategies,
compiled with cross-point reuse and summarized as Pareto frontiers.

See :mod:`repro.dse.space` for the space definition,
:mod:`repro.dse.driver` for the sweep engine and
:mod:`repro.dse.pareto` for frontier extraction; ``python -m repro
dse`` is the CLI entry point and ``docs/dse.md`` the narrative.
"""

from repro.dse.pareto import PARETO_AXES, dominates, pareto_front
from repro.dse.space import DEFAULT_KERNELS, DesignPoint, DesignSpace
from repro.dse.driver import (
    ResumeManifest,
    build_fabric,
    render_summary,
    run_dse,
    write_result,
)

__all__ = [
    "DEFAULT_KERNELS",
    "DesignPoint",
    "DesignSpace",
    "PARETO_AXES",
    "ResumeManifest",
    "build_fabric",
    "dominates",
    "pareto_front",
    "render_summary",
    "run_dse",
    "write_result",
]
