"""The DSE sweep driver: expand a design space, compile every point,
emit Pareto frontiers.

The naive way to sweep a design space is one cold compile per point.
This driver instead layers every reuse channel the compile stack
offers, all of them *result-neutral* (the dse benchmark asserts every
per-point mapping blob is byte-identical to a naive cold compile):

* **exact-key dedupe** — the mapping cache is keyed by (DFG, fabric,
  engine config, backend), *not* strategy, and every DVFS-oblivious
  strategy (baseline, gating, per-tile) resolves to the same engine
  config; one shared :class:`TieredCache` across the whole sweep turns
  their placements into one compile plus warm hits;
* **cross-variant blob aliasing** — a DVFS-oblivious search never
  reads any level but ``normal``, so fabrics differing *only* in V/F
  table depth run the identical search; the driver compiles one
  representative and republishes its serialized blob under the sibling
  variants' keys before their group runs;
* **warm-started II deepening** — every item's engine config carries
  ``min_ii = exact_lower_bound(dfg, fabric)`` (and, for oblivious
  points, the solved II of an identical-search sibling), skipping
  ascending-II attempts a sound bound already rules out;
* **vectorized candidate scoring** and the process-global routing
  distance-oracle cache (keyed by topology fingerprint) accelerate the
  cold compiles that remain.

Determinism: per-point seeds derive from (sweep seed, point index) —
never from scheduling — and result rows carry no volatile fields, so
``--jobs N`` points and frontier are byte-equal to ``--jobs 1``
(``stats`` aggregates reuse/timing and is the one volatile section).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro import obs
from repro.arch.cgra import CGRA
from repro.arch.dvfs import scaled_config
from repro.compile.cache import MappingCache
from repro.compile.diskcache import DiskCache, TieredCache
from repro.compile.fingerprint import mapping_cache_key
from repro.compile.parallel import SweepExecutor, SweepItem
from repro.compile.pipeline import compile_kernel, resolve_config
from repro.dse.pareto import PARETO_AXES, pareto_front
from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import DSEError
from repro.kernels import load_kernel
from repro.mapper.exact import exact_lower_bound
from repro.power.area import area_report
from repro.power.model import energy_uj, mapping_power
from repro.utils.rng import derive_worker_seed
from repro.utils.tables import TextTable

#: Result-file schema; bump on incompatible row changes.
RESULT_SCHEMA = 1

#: Resume-manifest schema; bump on incompatible manifest changes.
RESUME_SCHEMA = 1


class ResumeManifest:
    """Sweep-level resume: the completed point rows of one space.

    The manifest is canonical JSON (``{"schema", "space_hash",
    "rows": {index: row}}``) rewritten *atomically after every fabric
    group* — a sweep killed mid-flight loses at most the group in
    progress, and a rerun with ``--resume`` replays the finished rows
    from disk instead of recompiling them. Result rows are already
    deterministic and volatile-free, so a resumed sweep's ``points``
    and ``frontier`` are byte-equal to an uninterrupted one.

    A manifest is bound to its design space by ``space_hash``: loading
    it against any other space raises :class:`~repro.errors.DSEError`
    rather than silently mixing rows from two sweeps.
    """

    def __init__(self, path: str | Path, space_hash: str):
        self.path = Path(path)
        self.space_hash = str(space_hash)
        self.rows: dict[int, dict] = {}
        if not self.path.exists():
            return
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise DSEError(
                f"unreadable resume manifest {self.path}: {exc}"
            ) from None
        if not isinstance(doc, dict) or doc.get("schema") != RESUME_SCHEMA:
            raise DSEError(
                f"resume manifest {self.path} has unsupported schema "
                f"{doc.get('schema') if isinstance(doc, dict) else doc!r}"
            )
        if doc.get("space_hash") != self.space_hash:
            raise DSEError(
                f"resume manifest {self.path} belongs to space hash "
                f"{doc.get('space_hash')!r}, not {self.space_hash!r} — "
                f"refusing to mix sweeps"
            )
        rows = doc.get("rows", {})
        if not isinstance(rows, dict):
            raise DSEError(f"resume manifest {self.path} rows must be "
                           f"an object")
        self.rows = {int(index): row for index, row in rows.items()}

    def record(self, rows: list[dict]) -> None:
        for row in rows:
            self.rows[int(row["index"])] = row

    def flush(self) -> None:
        """Atomically publish the manifest (tmp file + ``os.replace``)."""
        payload = json.dumps(
            {
                "schema": RESUME_SCHEMA,
                "space_hash": self.space_hash,
                "rows": {str(i): self.rows[i] for i in sorted(self.rows)},
            },
            sort_keys=True, separators=(",", ":"),
        )
        os.makedirs(self.path.parent, exist_ok=True)
        tmp = self.path.with_name(
            f".{self.path.name}.{os.getpid()}.{time.monotonic_ns()}.tmp"
        )
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass


def build_fabric(point: DesignPoint) -> CGRA:
    """The CGRA a design point names. The default ``CGRA.build`` name
    (``cgra{rows}x{cols}``) is kept deliberately: serialized mappings
    embed the fabric name, and cross-V/F blob aliasing needs variants
    that differ only in V/F table to serialize identically."""
    return CGRA.build(point.rows, point.cols, island_shape=point.island,
                      dvfs=scaled_config(point.vf_levels),
                      topology=point.topology)


def _area_style(point: DesignPoint) -> str:
    """DVFS support hardware implied by the strategy/island choice."""
    if point.strategy == "baseline":
        return "none"
    if point.strategy == "per_tile_dvfs" or point.island == (1, 1):
        return "per_tile"
    return "island"


def _evaluate(point: DesignPoint, result, cgra: CGRA,
              iterations: int) -> dict:
    """One successful compile -> one canonical result row."""
    ii = result.report.ii
    power = mapping_power(result.mapping, report=result.report)
    freq = cgra.dvfs.normal.frequency_mhz
    makespan_us = ii * iterations / freq
    area = area_report(cgra, dvfs_style=_area_style(point))
    row = point.to_dict()
    row.update({
        "status": "ok",
        "ii": ii,
        "power_mw": round(power.total_mw, 6),
        "makespan_us": round(makespan_us, 6),
        "energy_uj": round(energy_uj(power, makespan_us), 6),
        "area_mm2": round(area.total_mm2, 6),
    })
    return row


def _failed(point: DesignPoint, error) -> dict:
    row = point.to_dict()
    row.update({"status": "unmappable", "error": str(error)})
    return row


class _ObliviousIndex:
    """Per-(geometry, kernel) registry of solved DVFS-oblivious
    compiles: the serialized blob, its provenance meta, and the solved
    II — everything aliasing and sibling II seeding need."""

    def __init__(self) -> None:
        self._solved: dict[tuple, dict] = {}

    @staticmethod
    def _key(point: DesignPoint) -> tuple:
        return (point.geometry_key, point.kernel, point.unroll)

    def record(self, point: DesignPoint, blob: str, meta: dict) -> None:
        self._solved.setdefault(self._key(point), {
            "blob": blob, "meta": dict(meta),
        })

    def lookup(self, point: DesignPoint) -> dict | None:
        return self._solved.get(self._key(point))


def run_dse(space: DesignSpace, *, jobs: int = 1,
            cache: object | None = None, cache_dir: str | None = None,
            seed: int = 0, naive: bool = False,
            skip_unmappable: bool = True,
            blob_sink: dict | None = None,
            resume: str | Path | None = None) -> dict:
    """Sweep ``space`` and return the canonical result document:
    ``{schema, space, space_hash, points, frontier, stats}``.

    ``naive`` disables every reuse channel (fresh per-point cache, no
    vectorization, no warm starts, cold routing oracle) — the honest
    per-point-compile baseline the dse benchmark races against.
    ``skip_unmappable=False`` re-raises the first ``MappingError``
    instead of recording an ``unmappable`` row. ``blob_sink``, when
    given, receives every point's *final* canonical mapping JSON
    (``blob_sink[index] = blob``) — the bit-identity oracle the dse
    benchmark compares across naive/optimized/parallel runs.
    ``resume`` names a :class:`ResumeManifest` path: completed rows
    found there are replayed instead of recompiled, and the manifest is
    atomically rewritten after every fabric group so an interrupted
    sweep can pick up where it stopped. Unsupported with ``naive``
    (whose whole point is to be cold).
    """
    points = space.expand()
    space_hash = space.space_hash()
    if resume is not None and naive:
        raise DSEError("resume is unsupported with the naive baseline "
                       "(a resumed sweep would not be cold)")
    manifest = (ResumeManifest(resume, space_hash)
                if resume is not None else None)
    started = time.perf_counter()
    stats = {
        "points": len(points),
        "compiles": 0,
        "cache_hits": 0,
        "aliased_blobs": 0,
        "sibling_ii_seeds": 0,
        "unmappable": 0,
        "resumed": 0,
    }
    with obs.span("dse", category="dse", space=space.name,
                  space_hash=space_hash, points=len(points)):
        if naive:
            rows = _run_naive(points, space, seed, stats,
                              skip_unmappable, blob_sink)
        else:
            rows = _run_optimized(points, space, space_hash, jobs,
                                  cache, cache_dir, seed, stats,
                                  skip_unmappable, blob_sink, manifest)
    rows.sort(key=lambda row: row["index"])
    frontier = pareto_front([r for r in rows if r["status"] == "ok"])
    stats["frontier_size"] = len(frontier)
    stats["wall_ms"] = round((time.perf_counter() - started) * 1000.0, 1)
    registry = obs.metrics()
    registry.counter("dse.points").inc(len(points))
    registry.counter("dse.compiles").inc(stats["compiles"])
    registry.counter("dse.cache_hits").inc(stats["cache_hits"])
    registry.counter("dse.aliased_blobs").inc(stats["aliased_blobs"])
    return {
        "schema": RESULT_SCHEMA,
        "space": space.to_dict(),
        "space_hash": space_hash,
        "axes": list(PARETO_AXES),
        "points": rows,
        "frontier": frontier,
        "stats": stats,
    }


# -- naive path (the benchmark baseline) -------------------------------------


def _final_blob(result) -> str:
    return json.dumps(result.mapping.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def _run_naive(points: list[DesignPoint], space: DesignSpace, seed: int,
               stats: dict, skip_unmappable: bool,
               blob_sink: dict | None) -> list[dict]:
    from repro.errors import MappingError
    from repro.mapper import routing

    rows = []
    for point in points:
        routing.clear_oracle_cache()
        cgra = build_fabric(point)
        config = replace(resolve_config(point.strategy, None),
                         vectorize=False, min_ii=0)
        stats["compiles"] += 1
        try:
            result = compile_kernel(
                point.kernel, cgra, point.strategy, config,
                unroll=point.unroll,
                seed=derive_worker_seed(seed, point.index),
                cache=MappingCache(),
            )
        except MappingError as exc:
            if not skip_unmappable:
                raise
            stats["unmappable"] += 1
            rows.append(_failed(point, exc))
            continue
        if blob_sink is not None:
            blob_sink[point.index] = _final_blob(result)
        rows.append(_evaluate(point, result, cgra, space.iterations))
    return rows


# -- optimized path ----------------------------------------------------------


def _point_key(point: DesignPoint, cgra: CGRA, dfg) -> tuple[str, object]:
    """The point's engine cache key and its resolved config."""
    config = resolve_config(point.strategy, None)
    return mapping_cache_key(dfg, cgra, config, "engine"), config


def _run_optimized(points: list[DesignPoint], space: DesignSpace,
                   space_hash: str, jobs: int, cache: object | None,
                   cache_dir: str | None, seed: int, stats: dict,
                   skip_unmappable: bool, blob_sink: dict | None,
                   manifest: ResumeManifest | None = None) -> list[dict]:
    rows: list[dict] = []
    if manifest is not None and manifest.rows:
        # Replay completed rows; only the remainder compiles.
        done = [p for p in points if p.index in manifest.rows]
        rows.extend(manifest.rows[p.index] for p in done)
        points = [p for p in points if p.index not in manifest.rows]
        stats["resumed"] = len(done)
    if cache is None:
        cache = (TieredCache(MappingCache(), DiskCache(cache_dir))
                 if cache_dir else MappingCache())
    disk = getattr(cache, "disk", None)
    executor = SweepExecutor(jobs=jobs, cache=cache,
                             cache_dir=cache_dir, seed=seed)
    index = _ObliviousIndex()
    dfgs: dict[tuple, object] = {}

    def dfg_of(point: DesignPoint):
        key = (point.kernel, point.unroll)
        if key not in dfgs:
            dfgs[key] = load_kernel(point.kernel, point.unroll)
        return dfgs[key]

    # Group points by fabric: the executor compiles one fabric per call.
    groups: dict[tuple, list[DesignPoint]] = {}
    for point in points:
        groups.setdefault(point.fabric_key, []).append(point)

    for fabric_key, group in groups.items():
        cgra = build_fabric(group[0])
        with obs.span("dse.group", category="dse",
                      fabric=f"{cgra.rows}x{cgra.cols}",
                      topology=cgra.topology, points=len(group)):
            group_rows = _run_group(group, cgra, space, space_hash,
                                    executor, cache, disk, index, seed,
                                    stats, skip_unmappable, dfg_of,
                                    blob_sink)
        rows.extend(group_rows)
        if manifest is not None:
            # Checkpoint after every fabric group: a kill loses at most
            # the group in flight.
            manifest.record(group_rows)
            manifest.flush()
    return rows


def _run_group(group: list[DesignPoint], cgra: CGRA, space: DesignSpace,
               space_hash: str, executor: SweepExecutor, cache, disk,
               index: _ObliviousIndex, seed: int, stats: dict,
               skip_unmappable: bool, dfg_of,
               blob_sink: dict | None) -> list[dict]:
    """Compile one fabric's points: alias sibling blobs in, warm-start
    IIs, dispatch in two waves (unique keys first, guaranteed-warm
    rest second) and evaluate the outcomes."""
    prepared: list[tuple[DesignPoint, SweepItem, str, bool]] = []
    lower_bounds: dict[tuple, int] = {}
    for point in group:
        dfg = dfg_of(point)
        key, config = _point_key(point, cgra, dfg)
        oblivious = not config.dvfs_aware
        # Cross-variant aliasing: an identical search already solved
        # under a sibling V/F table republishes its blob under this
        # variant's key. Sound because the oblivious engine reads only
        # the (shared) normal level — and revalidation still runs.
        solved = index.lookup(point) if oblivious else None
        if solved is not None and key not in cache:
            if disk is not None:
                cache.store_serialized(key, solved["blob"],
                                       kernel=point.kernel,
                                       backend="engine",
                                       meta=solved["meta"])
            else:
                cache.store_serialized(key, solved["blob"],
                                       backend="engine",
                                       meta=solved["meta"])
            if disk is not None:
                disk.tag_sweep(key, space_hash, point.index)
            stats["aliased_blobs"] += 1
        lb_key = (point.kernel, point.unroll)
        if lb_key not in lower_bounds:
            lower_bounds[lb_key] = exact_lower_bound(dfg, cgra)
        min_ii = lower_bounds[lb_key]
        if solved is not None:
            sibling_ii = solved["meta"].get("ii")
            if isinstance(sibling_ii, int) and sibling_ii > min_ii:
                # The sibling solved the *identical* search at this II,
                # so it is exact for this point too.
                min_ii = sibling_ii
                stats["sibling_ii_seeds"] += 1
        item = SweepItem(
            kernel=point.kernel, unroll=point.unroll,
            strategy=point.strategy,
            config=replace(config, min_ii=min_ii),
            seed=derive_worker_seed(seed, point.index),
            tag=str(point.index),
        )
        prepared.append((point, item, key, oblivious))

    # Two waves: one representative per engine key compiles first, so
    # the rest hit warm even across pool workers (shared disk tier).
    first_of: set[str] = set()
    wave1, wave2 = [], []
    for entry in prepared:
        if entry[2] in first_of:
            wave2.append(entry)
        else:
            first_of.add(entry[2])
            wave1.append(entry)

    rows: list[dict] = []
    for wave in (wave1, wave2):
        if not wave:
            continue
        outcomes = executor.run([item for _, item, _, _ in wave], cgra)
        for (point, _, key, oblivious), outcome in zip(wave, outcomes):
            if outcome.error is not None:
                if not skip_unmappable:
                    raise outcome.error
                stats["unmappable"] += 1
                rows.append(_failed(point, outcome.error))
                continue
            result = outcome.result
            if result.cache_hit:
                stats["cache_hits"] += 1
            else:
                stats["compiles"] += 1
                if disk is not None and disk.tag_sweep(
                        key, space_hash, point.index):
                    pass  # first-producer tag written
            if oblivious:
                blob = cache.serialized(key)
                if blob is not None:
                    meta = dict(cache.meta(key))
                    meta.setdefault("ii", result.report.ii)
                    index.record(point, blob, meta)
            if blob_sink is not None:
                blob_sink[point.index] = _final_blob(result)
            rows.append(_evaluate(point, result, cgra,
                                  space.iterations))
    return rows


# -- reporting ---------------------------------------------------------------


def render_summary(result: dict, top: int = 10) -> str:
    """The human-facing sweep summary ``repro dse`` prints."""
    stats = result["stats"]
    resumed = stats.get("resumed", 0)
    lines = [
        f"design space {result['space']['name']!r} "
        f"(hash {result['space_hash']}): {stats['points']} points, "
        f"{stats['compiles']} compiles, {stats['cache_hits']} cache "
        f"hits, {stats['aliased_blobs']} aliased blobs, "
        f"{stats['unmappable']} unmappable"
        + (f", {resumed} resumed" if resumed else "")
        + f" [{stats['wall_ms']:.0f} ms]",
        f"pareto frontier ({stats['frontier_size']} points, "
        f"minimizing {' x '.join(result['axes'])}):",
    ]
    table = TextTable(["#", "kernel", "strategy", "fabric", "island",
                       "topo", "vf", "II", "energy uJ", "makespan us",
                       "area mm2"])
    for row in result["frontier"][:top]:
        table.add_row([
            row["index"], row["kernel"], row["strategy"],
            row["fabric"], row["island"], row["topology"],
            row["vf_levels"], row["ii"], row["energy_uj"],
            row["makespan_us"], row["area_mm2"],
        ])
    lines.append(table.render())
    if len(result["frontier"]) > top:
        lines.append(f"... and {len(result['frontier']) - top} more "
                     f"frontier points")
    return "\n".join(lines)


def write_result(result: dict, path: str) -> None:
    """Persist the result document as canonical JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, sort_keys=True, indent=2)
        fh.write("\n")
