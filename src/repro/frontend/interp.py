"""Reference interpreters for kernels and their lowered DFGs.

``run_kernel_ast`` executes the AST directly — the semantic ground
truth. ``run_lowered_dfg`` executes the lowered dataflow graph one
iteration at a time, resolving PHIs and loop-carried edges the way the
hardware's predicated dataflow would. Tests run both on the same inputs
and require identical memory contents, proving the lowering (odometer
flattening, predication, CSE) preserves semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dfg.analysis import topo_order
from repro.dfg.ops import Opcode
from repro.errors import FrontendError
from repro.frontend.ast import (
    Accumulate,
    Assign,
    Bin,
    Cmp,
    Const,
    For,
    If,
    Kernel,
    Ref,
    Unary,
    Var,
)
from repro.frontend.lower import LoweredKernel

Memory = dict[str, list[float]]


def _check_arrays(kernel: Kernel, memory: Memory) -> Memory:
    mem = {}
    for name, size in kernel.arrays.items():
        if name not in memory:
            raise FrontendError(f"kernel {kernel.name!r} needs array {name!r}")
        data = list(memory[name])
        if len(data) < size:
            raise FrontendError(
                f"array {name!r} has {len(data)} elements, kernel declares {size}"
            )
        mem[name] = data
    return mem


# -- AST interpretation ------------------------------------------------------


def run_kernel_ast(kernel: Kernel, memory: Memory) -> Memory:
    """Execute ``kernel`` directly on (a copy of) ``memory``."""
    mem = _check_arrays(kernel, memory)
    scalars: dict[str, float] = {}
    _run_stmts([kernel.body], scalars, mem)
    return mem


def _run_stmts(stmts, scalars: dict[str, float], mem: Memory) -> None:
    for stmt in stmts:
        if isinstance(stmt, For):
            for i in range(stmt.start, stmt.stop):
                scalars[stmt.var] = float(i)
                _run_stmts(stmt.body, scalars, mem)
        elif isinstance(stmt, Assign):
            value = _eval(stmt.expr, scalars, mem)
            _write(stmt.target, value, scalars, mem)
        elif isinstance(stmt, Accumulate):
            current = scalars.get(stmt.target.name, 0.0)
            value = _apply_bin(stmt.op, current, _eval(stmt.expr, scalars, mem))
            scalars[stmt.target.name] = value
        elif isinstance(stmt, If):
            if _eval(stmt.cond, scalars, mem):
                _run_stmts(stmt.then, scalars, mem)
            else:
                _run_stmts(stmt.orelse, scalars, mem)
        else:
            raise FrontendError(f"unknown statement {stmt!r}")


def _write(target, value: float, scalars: dict[str, float], mem: Memory) -> None:
    if isinstance(target, Var):
        scalars[target.name] = value
    elif isinstance(target, Ref):
        index = int(_eval(target.index, scalars, mem))
        mem[target.array][index] = value
    else:
        raise FrontendError(f"bad assignment target {target!r}")


def _eval(expr, scalars: dict[str, float], mem: Memory) -> float:
    if isinstance(expr, Const):
        return float(expr.value)
    if isinstance(expr, Var):
        if expr.name not in scalars:
            raise FrontendError(f"scalar {expr.name!r} read before any write")
        return scalars[expr.name]
    if isinstance(expr, Ref):
        return mem[expr.array][int(_eval(expr.index, scalars, mem))]
    if isinstance(expr, Bin):
        return _apply_bin(expr.op, _eval(expr.lhs, scalars, mem),
                          _eval(expr.rhs, scalars, mem))
    if isinstance(expr, Cmp):
        return _apply_cmp(expr.op, _eval(expr.lhs, scalars, mem),
                          _eval(expr.rhs, scalars, mem))
    if isinstance(expr, Unary):
        return _apply_unary(expr.op, _eval(expr.operand, scalars, mem))
    raise FrontendError(f"unknown expression {expr!r}")


def _apply_bin(op: str, a: float, b: float) -> float:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return a / b
    if op == "%":
        return float(int(a) % int(b)) if b else 0.0
    if op == "&":
        return float(int(a) & int(b))
    if op == "|":
        return float(int(a) | int(b))
    if op == "^":
        return float(int(a) ^ int(b))
    if op == "<<":
        return float(int(a) << int(b))
    if op == ">>":
        return float(int(a) >> int(b))
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    raise FrontendError(f"unknown binary operator {op!r}")


def _apply_cmp(op: str, a: float, b: float) -> float:
    result = {
        "<": a < b,
        "<=": a <= b,
        ">": a > b,
        ">=": a >= b,
        "==": a == b,
        "!=": a != b,
    }[op]
    return 1.0 if result else 0.0


def _apply_unary(op: str, a: float) -> float:
    if op == "-":
        return -a
    if op == "abs":
        return abs(a)
    if op == "sqrt":
        return math.sqrt(a) if a >= 0 else 0.0
    if op == "not":
        return 0.0 if a else 1.0
    raise FrontendError(f"unknown unary operator {op!r}")


# -- DFG interpretation --------------------------------------------------------


@dataclass
class DFGRun:
    """The outcome of executing a lowered DFG.

    Attributes:
        memory: Final array contents.
        scalars: Final value fed into each live-in scalar's PHI (i.e.
            the scalar's value after the last iteration).
        iterations: Iterations executed.
    """

    memory: Memory
    scalars: dict[str, float]
    iterations: int
    node_values: dict[int, float] = field(default_factory=dict)


def run_lowered_dfg(lowered: LoweredKernel, memory: Memory,
                    externals: dict[str, float] | None = None,
                    iterations: int | None = None) -> DFGRun:
    """Execute ``lowered.dfg`` for ``iterations`` loop iterations.

    ``externals`` supplies outer-loop indices and live-in scalar initial
    values in non-flattened mode; flattened kernels usually need none.
    """
    externals = dict(externals or {})
    iterations = lowered.trip_count if iterations is None else iterations
    mem = _check_arrays(lowered.kernel, memory)
    dfg, meta = lowered.dfg, lowered.meta

    order = topo_order(dfg)
    back_source: dict[int, tuple[int, int]] = {}
    for node_id in dfg.node_ids():
        carried = [e for e in dfg.in_edges(node_id) if e.dist >= 1]
        if not carried:
            continue
        opcode = dfg.node(node_id).opcode
        if opcode is Opcode.LOAD:
            continue  # memory-ordering token: no value to resolve
        if opcode is not Opcode.PHI:
            raise FrontendError(
                f"loop-carried edge into non-PHI node {node_id}"
            )
        if len(carried) > 1:
            raise FrontendError(f"PHI {node_id} has multiple back edges")
        back_source[node_id] = (carried[0].src, carried[0].dist)

    max_dist = max((e.dist for e in dfg.edges()), default=1)
    history: list[dict[int, float]] = []
    values: dict[int, float] = {}
    for k in range(iterations):
        values = {}
        for node_id in order:
            values[node_id] = _eval_node(
                dfg, meta, node_id, k, values, history, back_source,
                externals, mem,
            )
        history.append(values)
        if len(history) > max(max_dist, 1):
            history.pop(0)

    scalars = {}
    for node_id, (src, _dist) in back_source.items():
        name = dfg.node(node_id).name or f"phi{node_id}"
        scalars[name] = values.get(src, 0.0) if iterations else 0.0
    return DFGRun(memory=mem, scalars=scalars, iterations=iterations,
                  node_values=values)


def _eval_node(dfg, meta, node_id, k, values, history, back_source,
               externals, mem) -> float:
    node = dfg.node(node_id)
    info = meta.get(node_id, {})
    op = node.opcode

    if op is Opcode.CONST:
        if "external" in info:
            if info["external"] not in externals:
                raise FrontendError(
                    f"external input {info['external']!r} not supplied"
                )
            return float(externals[info["external"]])
        return float(info.get("value", 0.0))

    if op is Opcode.PHI:
        if k == 0:
            if "init_external" in info:
                return float(externals.get(info["init_external"], 0.0))
            return float(info.get("init", 0.0))
        src, dist = back_source[node_id]
        if k - dist < 0:
            return float(info.get("init", 0.0))
        return history[-dist][src]

    inputs = sorted(
        (e for e in dfg.in_edges(node_id) if e.dist == 0),
        key=lambda e: e.port,
    )
    args = [values[e.src] for e in inputs]

    if op is Opcode.LOAD:
        index = (int(args[0]) if info.get("index") is not None
                 else int(info["index_const"]))
        return mem[info["array"]][index]
    if op is Opcode.STORE:
        index, value = int(args[0]), args[1]
        pred = args[2] if len(args) > 2 else 1.0
        if pred:
            mem[info["array"]][index] = value
        return value
    if op is Opcode.CMP:
        return _apply_cmp(info["op"], args[0], args[1])
    if op is Opcode.SELECT:
        return args[1] if args[0] else args[2]
    if op is Opcode.NOT:
        return 0.0 if args[0] else 1.0
    if op is Opcode.ABS:
        return abs(args[0])
    if op is Opcode.SQRT:
        return math.sqrt(args[0]) if args[0] >= 0 else 0.0
    if op is Opcode.MOV:
        return args[0]
    if op is Opcode.MAC:
        return args[0] * args[1] + args[2]
    binop = {
        Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*", Opcode.DIV: "/",
        Opcode.REM: "%", Opcode.AND: "&", Opcode.OR: "|", Opcode.XOR: "^",
        Opcode.SHL: "<<", Opcode.SHR: ">>", Opcode.MIN: "min",
        Opcode.MAX: "max",
    }.get(op)
    if binop is None:
        raise FrontendError(f"cannot interpret opcode {op}")
    if len(args) != 2:
        raise FrontendError(
            f"node {node_id} ({op.name}) expects 2 inputs, has {len(args)}"
        )
    return _apply_bin(binop, args[0], args[1])
