"""Lowering kernels to predicated dataflow graphs.

Two modes, both producing one DFG iteration per *innermost* loop body
execution:

* ``flatten=False`` — only the innermost loop is lowered; enclosing loop
  indices and live-in scalars become external inputs (re-supplied per
  outer iteration). This is the mode used for functional cross-checks.
* ``flatten=True`` — the whole nest is flattened into a single loop, the
  paper's setup ("we simplify the DFG by flattening the nested-loop").
  Loop indices become an odometer of PHI/SELECT recurrences; statements
  between loop levels are predicated on first/last-inner-iteration
  conditions, which is partial predication in the sense of [12].

Control flow (``If``) always lowers to SELECT nodes; stores acquire a
predicate operand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfg.graph import DFG
from repro.dfg.ops import Opcode
from repro.errors import FrontendError
from repro.frontend.ast import (
    Accumulate,
    Assign,
    Bin,
    Cmp,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Ref,
    Stmt,
    Unary,
    Var,
)

_BIN_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
}


@dataclass
class LoweredKernel:
    """The result of lowering: a DFG plus interpretation metadata.

    Attributes:
        kernel: The source kernel.
        dfg: One iteration of the (flattened or innermost) loop.
        meta: Node id -> attributes the interpreter needs (constant
            values, load/store array + index + predicate nodes, PHI
            initial values).
        externals: Names of external scalar inputs (outer indices and
            live-in scalars in non-flattened mode; invariants always).
        trip_count: Iterations of the lowered loop (product of the
            flattened levels' trip counts in flatten mode).
        loop_vars: The loop variables, outermost first, that the DFG
            iterates (flatten mode) or that are external (otherwise).
    """

    kernel: Kernel
    dfg: DFG
    meta: dict[int, dict]
    externals: list[str]
    trip_count: int
    loop_vars: list[str]


def lower_kernel(kernel: Kernel, flatten: bool = True,
                 memory_ordering: bool = False) -> LoweredKernel:
    """Lower ``kernel`` to a dataflow graph (see module docstring).

    ``memory_ordering`` adds explicit ordering edges from stores to
    later loads of the same array (within and across iterations), which
    serializes aliasing accesses — required for kernels like histogram
    whose loads must observe the previous iteration's stores when
    executed on the elastic machine model. It costs RecMII (the
    store->load chain becomes a recurrence), which is why it is opt-in:
    non-aliasing kernels keep their parallelism.
    """
    lowerer = _Lowerer(kernel, memory_ordering=memory_ordering)
    if flatten:
        return lowerer.lower_flattened()
    return lowerer.lower_innermost()


@dataclass
class _LoopLevel:
    """Bookkeeping for one flattened loop level."""

    loop: For
    phi: int = -1
    wrap: int = -1          # predicate node: index at its last value
    at_start: int = -1      # predicate node: index at its first value


class _Lowerer:
    """Stateful single-use lowering pass."""

    def __init__(self, kernel: Kernel, memory_ordering: bool = False):
        self.kernel = kernel
        self.memory_ordering = memory_ordering
        self.dfg = DFG(name=kernel.name)
        self.meta: dict[int, dict] = {}
        self.env: dict[str, int] = {}
        self.externals: list[str] = []
        self._const_cache: dict[float, int] = {}
        self._cse: dict[tuple, int] = {}
        self._load_cache: dict[tuple[str, int | None], int] = {}
        self._phi_backedges: list[tuple[str, int]] = []  # (var, phi node)
        self._last_store: dict[str, int] = {}
        self._first_load: dict[str, int] = {}
        self._load_has_order_edge: set[int] = set()

    # -- public entry points ----------------------------------------------

    def lower_innermost(self) -> LoweredKernel:
        inner = self.kernel.innermost_loop()
        outer_vars = self._loop_vars_above(inner)
        for var in outer_vars:
            self._bind_external(var)
        self._add_induction(inner)
        true_pred = None
        for stmt in inner.body:
            self._lower_stmt(stmt, true_pred)
        self._wire_backedges()
        self.dfg.validate()
        return LoweredKernel(
            kernel=self.kernel,
            dfg=self.dfg,
            meta=self.meta,
            externals=list(self.externals),
            trip_count=inner.trip_count,
            loop_vars=[inner.var],
        )

    def lower_flattened(self) -> LoweredKernel:
        levels = self._collect_levels(self.kernel.body)
        self._build_odometer(levels)
        self._lower_level(levels, depth=0, pred=None)
        self._wire_backedges()
        self.dfg.validate()
        trip = 1
        for level in levels:
            trip *= level.loop.trip_count
        return LoweredKernel(
            kernel=self.kernel,
            dfg=self.dfg,
            meta=self.meta,
            externals=list(self.externals),
            trip_count=trip,
            loop_vars=[level.loop.var for level in levels],
        )

    # -- loop structure -----------------------------------------------------

    def _collect_levels(self, loop: For) -> list[_LoopLevel]:
        levels = [_LoopLevel(loop)]
        current = loop
        while True:
            inner = [s for s in current.body if isinstance(s, For)]
            if not inner:
                return levels
            if len(inner) > 1:
                raise FrontendError(
                    f"kernel {self.kernel.name!r}: sibling loops are not "
                    "supported; split them into separate kernels"
                )
            current = inner[0]
            levels.append(_LoopLevel(current))

    def _loop_vars_above(self, inner: For) -> list[str]:
        names = []
        loop = self.kernel.body
        while loop is not inner:
            names.append(loop.var)
            nested = [s for s in loop.body if isinstance(s, For)]
            loop = nested[0]
        return names

    def _add_induction(self, loop: For) -> None:
        """Innermost-only mode: a plain PHI/ADD induction recurrence."""
        phi = self._node(Opcode.PHI, name=loop.var)
        self.meta[phi] = {"init": float(loop.start)}
        self.env[loop.var] = phi
        nxt = self._node(Opcode.ADD, name=f"{loop.var}_next")
        self.dfg.add_edge(phi, nxt, port=0)
        one = self._const(1.0)
        self.dfg.add_edge(one, nxt, port=1)
        self.dfg.add_edge(nxt, phi, dist=1, port=1)
        # Loop exit condition: computed, feeds nothing (the hardware's
        # iteration counter consumes it); mirrors what LLVM emits.
        stop = self._const(float(loop.stop))
        cmp = self._node(Opcode.CMP, name=f"{loop.var}_cond")
        self.meta[cmp] = {"op": "<"}
        self.dfg.add_edge(nxt, cmp, port=0)
        self.dfg.add_edge(stop, cmp, port=1)

    def _build_odometer(self, levels: list[_LoopLevel]) -> None:
        """Flattened index updates, innermost digit first.

        For each level: ``wrap = (j == stop-1)``; the index advances when
        every inner level wraps; it resets to start when it wraps itself
        while advancing.
        """
        for level in levels:
            phi = self._node(Opcode.PHI, name=level.loop.var)
            self.meta[phi] = {"init": float(level.loop.start)}
            level.phi = phi
            self.env[level.loop.var] = phi

        inner_all_wrap: int | None = None  # AND of wraps of inner levels
        for level in reversed(levels):
            loop = level.loop
            last = self._const(float(loop.stop - 1))
            wrap = self._cmp_node("==", level.phi, last, name=f"{loop.var}_wrap")
            level.wrap = wrap
            start_const = self._const(float(loop.start))
            level.at_start = self._cmp_node(
                "==", level.phi, start_const, name=f"{loop.var}_first"
            )

            plus = self._binop("+", level.phi, self._const(1.0),
                               name=f"{loop.var}_inc")
            wrapped = self._select(wrap, start_const, plus,
                                   name=f"{loop.var}_mod")
            if inner_all_wrap is None:
                nxt = wrapped
            else:
                held = self._select(inner_all_wrap, wrapped, level.phi,
                                    name=f"{loop.var}_next")
                nxt = held
            self.dfg.add_edge(nxt, level.phi, dist=1, port=1)

            if inner_all_wrap is None:
                inner_all_wrap = wrap
            else:
                inner_all_wrap = self._binop("&", wrap, inner_all_wrap,
                                             name=f"{loop.var}_adv")
        self._levels = levels

    def _lower_level(self, levels: list[_LoopLevel], depth: int,
                     pred: int | None) -> None:
        """Lower one level's body; non-innermost statements are predicated.

        Statements textually before the nested loop run when all inner
        levels sit at their first index; statements after it run when
        all inner levels wrap.
        """
        level = levels[depth]
        is_innermost = depth == len(levels) - 1
        if is_innermost:
            for stmt in level.loop.body:
                self._lower_stmt(stmt, pred)
            return

        first_inner = self._and_all(
            [lv.at_start for lv in levels[depth + 1:]], pred
        )
        wrap_inner = self._and_all(
            [lv.wrap for lv in levels[depth + 1:]], pred
        )
        seen_loop = False
        for stmt in level.loop.body:
            if isinstance(stmt, For):
                self._lower_level(levels, depth + 1, pred)
                seen_loop = True
            elif not seen_loop:
                self._lower_stmt(stmt, first_inner)
            else:
                self._lower_stmt(stmt, wrap_inner)

    def _and_all(self, preds: list[int], extra: int | None) -> int | None:
        acc = extra
        for p in preds:
            acc = p if acc is None else self._binop("&", acc, p)
        return acc

    # -- statements ---------------------------------------------------------

    def _lower_stmt(self, stmt: Stmt, pred: int | None) -> None:
        if isinstance(stmt, Accumulate):
            stmt = Assign(stmt.target,
                          Bin(stmt.op, Var(stmt.target.name), stmt.expr))
        if isinstance(stmt, Assign):
            self._lower_assign(stmt, pred)
        elif isinstance(stmt, If):
            self._lower_if(stmt, pred)
        elif isinstance(stmt, For):
            raise FrontendError("nested loop reached statement lowering")
        else:
            raise FrontendError(f"unknown statement {stmt!r}")

    def _lower_assign(self, stmt: Assign, pred: int | None) -> None:
        value = self._lower_expr(stmt.expr)
        if isinstance(stmt.target, Var):
            name = stmt.target.name
            if pred is not None:
                old = self._read_scalar(name)
                value = self._select(pred, value, old, name=f"{name}_sel")
            self.env[name] = value
        elif isinstance(stmt.target, Ref):
            self._lower_store(stmt.target, value, pred)
        else:
            raise FrontendError(f"bad assignment target {stmt.target!r}")

    def _lower_if(self, stmt: If, pred: int | None) -> None:
        cond = self._lower_expr(stmt.cond)
        then_pred = cond if pred is None else self._binop("&", pred, cond)
        not_cond = self._node(Opcode.NOT, name="else_pred")
        self.dfg.add_edge(cond, not_cond, port=0)
        else_pred = (not_cond if pred is None
                     else self._binop("&", pred, not_cond))
        for inner in stmt.then:
            self._lower_stmt(inner, then_pred)
        for inner in stmt.orelse:
            self._lower_stmt(inner, else_pred)

    def _lower_store(self, ref: Ref, value: int, pred: int | None) -> None:
        index = self._lower_expr(ref.index)
        store = self._node(Opcode.STORE, name=f"st_{ref.array}")
        self.dfg.add_edge(index, store, port=0)
        self.dfg.add_edge(value, store, port=1)
        info = {"array": ref.array, "index": index, "pred": None}
        if pred is not None:
            self.dfg.add_edge(pred, store, port=2)
            info["pred"] = pred
        self.meta[store] = info
        # A store may feed later loads of the same array in this
        # iteration; invalidate the load cache for it.
        stale = [k for k in self._load_cache if k[0] == ref.array]
        for key in stale:
            del self._load_cache[key]
        if self.memory_ordering:
            self._last_store[ref.array] = store

    # -- expressions ----------------------------------------------------------

    def _lower_expr(self, expr: Expr) -> int:
        if isinstance(expr, Const):
            return self._const(float(expr.value))
        if isinstance(expr, Var):
            return self._read_scalar(expr.name)
        if isinstance(expr, Ref):
            return self._lower_load(expr)
        if isinstance(expr, Bin):
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            return self._binop(expr.op, lhs, rhs)
        if isinstance(expr, Cmp):
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            return self._cmp_node(expr.op, lhs, rhs)
        if isinstance(expr, Unary):
            return self._unary(expr)
        raise FrontendError(f"unknown expression {expr!r}")

    def _lower_load(self, ref: Ref) -> int:
        if ref.array not in self.kernel.arrays:
            raise FrontendError(
                f"kernel {self.kernel.name!r} reads undeclared array "
                f"{ref.array!r}"
            )
        if isinstance(ref.index, Const):
            key = (ref.array, None, float(ref.index.value))
            index = None
        else:
            index = self._lower_expr(ref.index)
            key = (ref.array, index)
        if key in self._load_cache:
            return self._load_cache[key]
        load = self._node(Opcode.LOAD, name=f"ld_{ref.array}")
        info: dict = {"array": ref.array, "index": None, "index_const": None}
        if index is None:
            info["index_const"] = float(ref.index.value)
        else:
            self.dfg.add_edge(index, load, port=0)
            info["index"] = index
        if self.memory_ordering:
            if ref.array in self._last_store:
                # Read-after-write within the iteration: the load waits
                # for the store's completion token.
                self.dfg.add_edge(self._last_store[ref.array], load,
                                  dist=0, port=1)
                self._load_has_order_edge.add(load)
            self._first_load.setdefault(ref.array, load)
        self.meta[load] = info
        self._load_cache[key] = load
        return load

    def _unary(self, expr: Unary) -> int:
        operand = self._lower_expr(expr.operand)
        if expr.op == "-":
            return self._binop("-", self._const(0.0), operand)
        opcode = {"abs": Opcode.ABS, "sqrt": Opcode.SQRT,
                  "not": Opcode.NOT}[expr.op]
        key = (opcode, operand)
        if key in self._cse:
            return self._cse[key]
        node = self._node(opcode)
        self.dfg.add_edge(operand, node, port=0)
        self._cse[key] = node
        return node

    # -- node helpers -----------------------------------------------------------

    def _node(self, opcode: Opcode, name: str = "") -> int:
        return self.dfg.add_node(opcode, name)

    def _const(self, value: float) -> int:
        if value not in self._const_cache:
            node = self._node(Opcode.CONST, name=f"c{value:g}")
            self.meta[node] = {"value": value}
            self._const_cache[value] = node
        return self._const_cache[value]

    def _binop(self, op: str, lhs: int, rhs: int, name: str = "") -> int:
        opcode = _BIN_OPCODES[op]
        key = (opcode, lhs, rhs)
        if key in self._cse:
            return self._cse[key]
        node = self._node(opcode, name)
        self.dfg.add_edge(lhs, node, port=0)
        self.dfg.add_edge(rhs, node, port=1)
        self._cse[key] = node
        return node

    def _cmp_node(self, op: str, lhs: int, rhs: int, name: str = "") -> int:
        key = (Opcode.CMP, op, lhs, rhs)
        if key in self._cse:
            return self._cse[key]
        node = self._node(Opcode.CMP, name)
        self.meta[node] = {"op": op}
        self.dfg.add_edge(lhs, node, port=0)
        self.dfg.add_edge(rhs, node, port=1)
        self._cse[key] = node
        return node

    def _select(self, pred: int, if_true: int, if_false: int,
                name: str = "") -> int:
        key = (Opcode.SELECT, pred, if_true, if_false)
        if key in self._cse:
            return self._cse[key]
        node = self._node(Opcode.SELECT, name)
        self.dfg.add_edge(pred, node, port=0)
        self.dfg.add_edge(if_true, node, port=1)
        self.dfg.add_edge(if_false, node, port=2)
        self._cse[key] = node
        return node

    # -- scalars ------------------------------------------------------------------

    def _read_scalar(self, name: str) -> int:
        """Resolve a scalar read: bound value, live-in PHI, or external."""
        if name in self.env:
            return self.env[name]
        if self._is_written_later(name):
            phi = self._node(Opcode.PHI, name=name)
            self.meta[phi] = {"init_external": name}
            if name not in self.externals:
                self.externals.append(name)
            self.env[name] = phi
            self._phi_backedges.append((name, phi))
            return phi
        return self._bind_external(name)

    def _is_written_later(self, name: str) -> bool:
        """True if the kernel ever assigns ``name`` (loop-carried scalar)."""
        return _assigns_scalar(self.kernel.body, name)

    def _bind_external(self, name: str) -> int:
        node = self._node(Opcode.CONST, name=name)
        self.meta[node] = {"external": name}
        if name not in self.externals:
            self.externals.append(name)
        self.env[name] = node
        return node

    def _wire_backedges(self) -> None:
        """Connect each live-in scalar's final value back to its PHI."""
        for name, phi in self._phi_backedges:
            final = self.env[name]
            if final != phi:
                self.dfg.add_edge(final, phi, dist=1, port=1)
        if self.memory_ordering:
            # Write-before-next-iteration-read: each array's last store
            # orders the next iteration's first load, serializing
            # aliasing accesses across iterations.
            for array, store in self._last_store.items():
                load = self._first_load.get(array)
                if load is not None and load not in self._load_has_order_edge:
                    self.dfg.add_edge(store, load, dist=1, port=1)


def _assigns_scalar(loop: For, name: str) -> bool:
    def in_stmts(stmts) -> bool:
        for stmt in stmts:
            if isinstance(stmt, (Assign, Accumulate)):
                if isinstance(stmt.target, Var) and stmt.target.name == name:
                    return True
            elif isinstance(stmt, If):
                if in_stmts(stmt.then) or in_stmts(stmt.orelse):
                    return True
            elif isinstance(stmt, For):
                if in_stmts(stmt.body):
                    return True
        return False

    return in_stmts(loop.body)
