"""Loop-nest frontend: a small kernel language lowered to DFGs.

The paper's toolchain derives DFGs from C kernels through LLVM; this
package is the reproduction's substitute. Kernels are written as loop
nests over arrays in a tiny AST (:mod:`repro.frontend.ast`), lowered to
predicated dataflow graphs (:mod:`repro.frontend.lower`, using partial
predication exactly as section IV describes), and can be executed both
as ASTs and as lowered DFGs (:mod:`repro.frontend.interp`) so tests can
prove the lowering preserves semantics.
"""

from repro.frontend.ast import (
    Const,
    Var,
    Ref,
    Bin,
    Cmp,
    Unary,
    Assign,
    Accumulate,
    If,
    For,
    Kernel,
)
from repro.frontend.lower import lower_kernel, LoweredKernel
from repro.frontend.interp import run_kernel_ast, run_lowered_dfg

__all__ = [
    "Const",
    "Var",
    "Ref",
    "Bin",
    "Cmp",
    "Unary",
    "Assign",
    "Accumulate",
    "If",
    "For",
    "Kernel",
    "lower_kernel",
    "LoweredKernel",
    "run_kernel_ast",
    "run_lowered_dfg",
]
