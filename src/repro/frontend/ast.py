"""The kernel language AST.

A kernel is a (possibly nested) counted loop whose body reads and writes
arrays and scalars. The language is deliberately small: it covers the
paper's benchmark kernels (dense/sparse linear algebra, filters,
histograms) while keeping lowering and interpretation easy to verify.

Example — a FIR filter::

    Kernel(
        name="fir",
        arrays={"x": 64 + 8, "h": 8, "y": 64},
        body=For("i", 0, 64, [
            Assign(Var("acc"), Const(0.0)),
            For("j", 0, 8, [
                Accumulate(Var("acc"), "+",
                           Bin("*", Ref("x", Bin("+", Var("i"), Var("j"))),
                                    Ref("h", Var("j")))),
            ]),
            Assign(Ref("y", Var("i")), Var("acc")),
        ]),
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import FrontendError

#: Binary arithmetic operators the language supports.
BIN_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "min", "max")
#: Comparison operators (produce 0/1 predicates).
CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
#: Unary operators.
UNARY_OPS = ("-", "abs", "sqrt", "not")


@dataclass(frozen=True)
class Const:
    """A literal constant."""

    value: float


@dataclass(frozen=True)
class Var:
    """A scalar variable (or loop index) read/write."""

    name: str


@dataclass(frozen=True)
class Ref:
    """An array element access ``array[index]`` (flattened 1-D indexing)."""

    array: str
    index: "Expr"


@dataclass(frozen=True)
class Bin:
    """A binary arithmetic expression."""

    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        if self.op not in BIN_OPS:
            raise FrontendError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class Cmp:
    """A comparison producing a 0/1 predicate."""

    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise FrontendError(f"unknown comparison {self.op!r}")


@dataclass(frozen=True)
class Unary:
    """A unary arithmetic expression."""

    op: str
    operand: "Expr"

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise FrontendError(f"unknown unary operator {self.op!r}")


Expr = Union[Const, Var, Ref, Bin, Cmp, Unary]


@dataclass(frozen=True)
class Assign:
    """``target = expr``; the target is a scalar or an array element."""

    target: Union[Var, Ref]
    expr: Expr


@dataclass(frozen=True)
class Accumulate:
    """``target op= expr`` — an explicit loop-carried reduction.

    Marking reductions explicitly (instead of reading/writing the same
    scalar) tells the lowerer to create the PHI + update recurrence with
    iteration distance 1, the pattern that bounds RecMII.
    """

    target: Var
    op: str
    expr: Expr

    def __post_init__(self) -> None:
        if self.op not in BIN_OPS:
            raise FrontendError(f"unknown accumulate operator {self.op!r}")


@dataclass(frozen=True)
class If:
    """Structured control flow; lowered to predication (SELECT nodes)."""

    cond: Expr
    then: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()

    def __init__(self, cond: Expr, then, orelse=()):
        object.__setattr__(self, "cond", cond)
        object.__setattr__(self, "then", tuple(then))
        object.__setattr__(self, "orelse", tuple(orelse))


@dataclass(frozen=True)
class For:
    """A counted loop ``for var in range(start, stop)``."""

    var: str
    start: int
    stop: int
    body: tuple["Stmt", ...]

    def __init__(self, var: str, start: int, stop: int, body):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "stop", stop)
        object.__setattr__(self, "body", tuple(body))

    @property
    def trip_count(self) -> int:
        return max(0, self.stop - self.start)


Stmt = Union[Assign, Accumulate, If, For]


@dataclass(frozen=True)
class Kernel:
    """A named kernel: array declarations plus one outer loop.

    Attributes:
        name: Kernel name (used as the DFG name).
        arrays: Array name -> element count (word-sized elements).
        body: The outer loop.
    """

    name: str
    arrays: dict[str, int] = field(hash=False)
    body: For

    def footprint_bytes(self, word_bytes: int = 4) -> int:
        """Total scratchpad footprint of the declared arrays."""
        return sum(self.arrays.values()) * word_bytes

    def innermost_loop(self) -> For:
        """The innermost loop — the one that is software-pipelined."""
        loop = self.body
        while True:
            inner = [s for s in loop.body if isinstance(s, For)]
            if not inner:
                return loop
            if len(inner) > 1:
                raise FrontendError(
                    f"kernel {self.name!r} has sibling loops; lower them "
                    "as separate kernels"
                )
            loop = inner[0]
