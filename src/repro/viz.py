"""Plain-text visualization of fabrics, mappings and schedules.

Terminal renderings of the paper's figures-as-diagrams: the island/
level map (the colored bottom rows of Fig 3), the per-tile modulo
schedule (which op issues in which slot, like Fig 1's right side), and
a DFG dump with labels. All output is deterministic monospace text, so
examples can print it and tests can assert on it.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.arch.dvfs import DVFSLevel
from repro.dfg.graph import DFG
from repro.mapper.mapping import Mapping

_LEVEL_GLYPH = {
    "normal": "N",
    "relax": "X",
    "rest": "R",
    "power_gated": ".",
}


def _glyph(level: DVFSLevel) -> str:
    return _LEVEL_GLYPH.get(level.name, level.name[:1].upper())


def render_fabric(cgra: CGRA) -> str:
    """The fabric's island partition as a grid of island ids."""
    lines = [f"{cgra.name}: {cgra.rows}x{cgra.cols}, "
             f"{len(cgra.islands)} islands ({cgra.island_shape_name})"]
    for y in range(cgra.rows):
        row = []
        for x in range(cgra.cols):
            tile = cgra.tile_at(x, y)
            mem = "*" if tile.has_memory_access else " "
            row.append(f"{cgra.island_of(tile.id).id:2d}{mem}")
        lines.append(" ".join(row))
    lines.append("(* = SPM-connected tile)")
    return "\n".join(lines)


def render_level_map(mapping: Mapping) -> str:
    """Fig 3's bottom-row view: one glyph per tile's DVFS level."""
    cgra = mapping.cgra
    lines = [f"{mapping.dfg.name} [{mapping.strategy}] II={mapping.ii} — "
             "N=normal X=relax R=rest .=gated"]
    for y in range(cgra.rows):
        row = [
            _glyph(mapping.tile_levels[cgra.tile_at(x, y).id])
            for x in range(cgra.cols)
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_schedule(mapping: Mapping, max_width: int = 10) -> str:
    """Per-tile modulo schedule: which node issues in which slot.

    Only tiles hosting at least one operation are shown; each cell is
    the issuing node's label (stretched occupancy marked with '=').
    """
    lines = [f"modulo schedule of {mapping.dfg.name!r} (II={mapping.ii})"]
    header = "tile  | " + " | ".join(
        f"t{t:<{max_width - 2}}" for t in range(mapping.ii)
    )
    lines.append(header)
    lines.append("-" * len(header))
    by_tile: dict[int, dict[int, str]] = {}
    for node_id, placement in mapping.placements.items():
        label = mapping.dfg.node(node_id).label[:max_width]
        slots = by_tile.setdefault(placement.tile, {})
        slowdown = mapping.slowdown(placement.tile)
        for step in range(slowdown):
            slot = (placement.time + step) % mapping.ii
            slots[slot] = label if step == 0 else f"={label[:max_width - 1]}"
    for tile in sorted(by_tile):
        cells = [
            by_tile[tile].get(slot, "").ljust(max_width)
            for slot in range(mapping.ii)
        ]
        lines.append(f"{tile:<6}| " + " | ".join(cells))
    return "\n".join(lines)


def render_dfg(dfg: DFG, labels: dict[int, DVFSLevel] | None = None) -> str:
    """A one-line-per-node dump of the DFG (with optional DVFS labels)."""
    lines = [f"{dfg.name}: {dfg.num_nodes} nodes, {dfg.num_edges} edges"]
    for node in dfg.nodes():
        outs = ", ".join(
            f"{dfg.node(e.dst).label}"
            + (f"[d{e.dist}]" if e.dist else "")
            for e in dfg.out_edges(node.id)
        )
        tag = ""
        if labels is not None and node.id in labels:
            tag = f" @{labels[node.id].name}"
        lines.append(
            f"  {node.label:<10} {node.opcode.name.lower():<8}{tag:<8}"
            f" -> {outs or '(sink)'}"
        )
    return "\n".join(lines)


def render_dfg_dot(dfg: DFG, labels: dict[int, DVFSLevel] | None = None) -> str:
    """Graphviz DOT export of a DFG (Fig 1-style drawings).

    Nodes carry their opcode; DVFS labels (if given) color them the way
    the paper's figures do: green for normal critical-path nodes, blue
    for relax, grey for rest. Loop-carried edges are dashed and
    annotated with their distance.
    """
    colors = {"normal": "palegreen", "relax": "lightblue",
              "rest": "lightgrey"}
    lines = [f'digraph "{dfg.name}" {{', "  rankdir=TB;",
             "  node [shape=box, style=filled, fillcolor=white];"]
    for node in dfg.nodes():
        attrs = [f'label="{node.label}\\n{node.opcode.name.lower()}"']
        if labels is not None and node.id in labels:
            fill = colors.get(labels[node.id].name, "white")
            attrs.append(f'fillcolor="{fill}"')
        lines.append(f"  n{node.id} [{', '.join(attrs)}];")
    for edge in dfg.edges():
        if edge.dist:
            lines.append(
                f'  n{edge.src} -> n{edge.dst} '
                f'[style=dashed, label="d{edge.dist}"];'
            )
        else:
            lines.append(f"  n{edge.src} -> n{edge.dst};")
    lines.append("}")
    return "\n".join(lines)


def render_utilization_heatmap(mapping: Mapping, report=None) -> str:
    """Per-tile busy-fraction heat map (0-9 scale, '.' = gated)."""
    from repro.mapper.timing import compute_timing

    report = report or compute_timing(mapping)
    cgra = mapping.cgra
    lines = [f"utilization heat map of {mapping.dfg.name!r} "
             "(0-9 tenths of the II busy, . = power gated)"]
    for y in range(cgra.rows):
        row = []
        for x in range(cgra.cols):
            tile = cgra.tile_at(x, y).id
            if mapping.tile_levels[tile].is_gated:
                row.append(".")
            else:
                tenths = min(9, round(9 * report.busy_fraction(tile)))
                row.append(str(tenths))
        lines.append(" ".join(row))
    return "\n".join(lines)
