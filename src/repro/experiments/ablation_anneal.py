"""Ablation: stochastic refinement on top of the constructive mapper.

CGRA-ME-class toolchains follow the constructive pass with simulated
annealing; the paper's heuristic skips it for compile-time ("optimal
solutions within tens of seconds"). This sweep quantifies what is left
on the table: annealing each baseline mapping at fixed II and measuring
the route-latency / active-island / power deltas.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.compile import compile_annealed
from repro.experiments.base import ExperimentResult
from repro.kernels.suite import load_kernel
from repro.power.model import mapping_power
from repro.utils.tables import TextTable


def run(kernels: tuple[str, ...] = ("fir", "spmv", "histogram", "gemm"),
        size: int = 6, moves: int = 600, seed: int = 0) -> ExperimentResult:
    cgra = CGRA.build(size, size)
    table = TextTable([
        "kernel", "cost before", "cost after", "islands before",
        "islands after", "power before mW", "power after mW",
        "moves accepted",
    ])
    series = {"cost reduction %": []}
    for name in kernels:
        # the anneal seed comes out of the mapping cache, so sweeping
        # (moves, seed) never re-runs the constructive engine
        base, result = compile_annealed(load_kernel(name, 1), cgra,
                                        moves=moves, seed=seed)
        mapping, refined = base.mapping, result.mapping
        stats = result.anneal_stats

        def islands_of(m) -> int:
            return len({cgra.island_of(t).id for t in m.tiles_used()})

        p_before = mapping_power(mapping).total_mw
        p_after = mapping_power(refined).total_mw
        reduction = 100.0 * (1 - stats.final_cost
                             / max(stats.initial_cost, 1e-9))
        series["cost reduction %"].append(reduction)
        table.add_row([
            name, round(stats.initial_cost, 1), round(stats.final_cost, 1),
            islands_of(mapping), islands_of(refined),
            round(p_before, 1), round(p_after, 1),
            stats.moves_accepted,
        ])
    avg = sum(series["cost reduction %"]) / len(kernels)
    notes = [
        f"annealing trims {avg:.0f}% of the constructive mapper's cost "
        "on average (shorter routes, fewer active islands) without "
        "touching the II — the compile-time/quality trade the paper "
        "takes by stopping at the heuristic.",
    ]
    return ExperimentResult(
        id="ablation_anneal",
        title="Simulated-annealing refinement ablation",
        table=table,
        series=series,
        notes=notes,
    )
