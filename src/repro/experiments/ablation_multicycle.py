"""Ablation: multi-cycle FUs (the paper's APEX-style extension).

Section IV-A: "The support for multi-cycle pipelined FUs can be easily
integrated in ICED compiler and will provide even greater opportunities
for ICED DVFS". This sweep compares single-cycle FUs against fabrics
with a 4-cycle divider / 6-cycle square root, measuring how the DVFS
benefit changes when long-latency operations already stretch the
schedule.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.dfg.ops import Opcode
from repro.errors import MappingError
from repro.experiments.base import ExperimentResult
from repro.kernels.suite import load_kernel
from repro.mapper.baseline import map_baseline
from repro.mapper.dvfs import map_dvfs_aware
from repro.power.model import mapping_power
from repro.utils.tables import TextTable

LATENCY_CONFIGS = {
    "single-cycle": None,
    "div4": {Opcode.DIV: 4},
    "div4+sqrt6": {Opcode.DIV: 4, Opcode.SQRT: 6},
}


def run(kernels: tuple[str, ...] = ("gemm", "decompose", "solver0"),
        size: int = 6, unroll: int = 1) -> ExperimentResult:
    table = TextTable([
        "fu config", "kernel", "baseline II", "iced II",
        "baseline mW", "iced mW", "efficiency",
    ])
    series: dict[str, list[float]] = {"efficiency gain": []}
    for config_name, latencies in LATENCY_CONFIGS.items():
        cgra = CGRA.build(size, size, op_latencies=latencies)
        total_gain, counted = 0.0, 0
        for name in kernels:
            dfg = load_kernel(name, unroll)
            try:
                baseline = map_baseline(dfg, cgra)
                iced = map_dvfs_aware(dfg, cgra)
            except MappingError:
                continue
            p_base = mapping_power(baseline).total_mw
            p_iced = mapping_power(iced).total_mw
            gain = p_base / p_iced
            total_gain += gain
            counted += 1
            table.add_row([
                config_name, name, baseline.ii, iced.ii,
                round(p_base, 1), round(p_iced, 1), round(gain, 2),
            ])
        if counted:
            series["efficiency gain"].append(total_gain / counted)
    notes = [
        "multi-cycle FUs keep the ICED benefit: long-latency ops claim "
        "their tiles for several base cycles, which the mapper treats "
        "exactly like a DVFS stretch — DVFS then composes on top "
        "(latency x slowdown occupancy).",
    ]
    return ExperimentResult(
        id="ablation_multicycle",
        title="Multi-cycle FU ablation (APEX-style extension)",
        table=table,
        series=series,
        notes=notes,
    )
