"""Fig 4: performance vs DVFS island size on an 8x8 CGRA.

Performance is normalized to the no-DVFS conventional mapping: the
ratio of the baseline's II to the DVFS-aware mapping's II under each
island shape. 2x2 islands lose nothing; bigger islands constrain the
mapper (one slow island freezes 16+ tiles against critical-path use)
and the II grows. 3x3 islands tile an 8x8 fabric irregularly, which
the framework supports by clipping edge islands.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapped_kernel
from repro.kernels.table1 import STANDALONE_KERNELS
from repro.utils.tables import TextTable

DEFAULT_ISLAND_SHAPES = ((1, 1), (2, 2), (3, 3), (4, 4), (8, 8))


def run(kernels: tuple[str, ...] = STANDALONE_KERNELS,
        size: int = 8,
        island_shapes: tuple[tuple[int, int], ...] = DEFAULT_ISLAND_SHAPES,
        unroll: int = 1) -> ExperimentResult:
    base_cgra = CGRA.build(size, size)
    shape_names = [f"{r}x{c}" for r, c in island_shapes]
    table = TextTable(["kernel", "baseline II"]
                      + [f"II @{s}" for s in shape_names]
                      + [f"perf @{s}" for s in shape_names])

    per_shape_perf: dict[str, list[float]] = {s: [] for s in shape_names}
    for name in kernels:
        base = mapped_kernel(name, unroll, base_cgra, "baseline")
        iis, perfs = [], []
        for shape, shape_name in zip(island_shapes, shape_names):
            cgra = base_cgra.with_islands(shape)
            iced = mapped_kernel(name, unroll, cgra, "iced")
            iis.append(iced.mapping.ii)
            perf = base.mapping.ii / iced.mapping.ii
            perfs.append(round(perf, 3))
            per_shape_perf[shape_name].append(perf)
        table.add_row([name, base.mapping.ii] + iis + perfs)

    series = {
        "normalized performance (geomean)": [
            _geomean(per_shape_perf[s]) for s in shape_names
        ]
    }
    geo = dict(zip(shape_names, series["normalized performance (geomean)"]))
    best = max(geo, key=lambda s: geo[s])
    notes = [
        f"island shape with the best normalized performance: {best} "
        f"({geo[best]:.3f});"
        " performance degrades as islands grow beyond 2x2, matching the "
        "paper's choice of 2x2 islands.",
    ]
    return ExperimentResult(
        id="fig4",
        title="Normalized performance vs DVFS island size (8x8 CGRA)",
        table=table,
        series=series,
        notes=notes,
        data={"geomean": geo},
    )


def _geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
