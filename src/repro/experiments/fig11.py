"""Fig 11: average power per strategy (energy-efficiency proxy).

Since the evaluated configurations keep the same throughput, power
ratios equal energy-efficiency ratios. The paper's unroll-2 numbers:
baseline 160.4 mW, baseline+gating 143.8 mW, per-tile DVFS 193.9 mW
(controller overhead exceeds its savings), ICED 121.3 mW —
1.32x / 1.6x energy-efficiency over baseline / per-tile.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.experiments.common import sweep_strategies
from repro.kernels.table1 import STANDALONE_KERNELS
from repro.power.model import mapping_power
from repro.utils.tables import TextTable

STRATEGY_ORDER = ("baseline", "baseline+gating", "per_tile_dvfs", "iced")


def _power_mw(mk, strategy: str) -> float:
    return mapping_power(mk.mapping).total_mw


def run(kernels: tuple[str, ...] = STANDALONE_KERNELS,
        size: int = 6,
        unrolls: tuple[int, ...] = (1, 2)) -> ExperimentResult:
    cgra = CGRA.build(size, size)
    sweep = sweep_strategies(kernels, cgra, STRATEGY_ORDER,
                             _power_mw, unrolls)
    table = TextTable(
        ["kernel", "unroll"] + [f"{s} mW" for s in STRATEGY_ORDER]
    )
    for row in sweep.rows:
        table.add_row([row.kernel, row.unroll]
                      + [round(row.values[s], 1) for s in STRATEGY_ORDER])
    series = {f"unroll {u} (mW)": sweep.series(u) for u in unrolls}
    averages = sweep.averages

    notes = []
    for unroll in unrolls:
        base = averages[("baseline", unroll)]
        gated = averages[("baseline+gating", unroll)]
        pt = averages[("per_tile_dvfs", unroll)]
        iced = averages[("iced", unroll)]
        notes.append(
            f"unroll {unroll}: baseline {base:.1f} mW, +gating "
            f"{gated:.1f} mW, per-tile {pt:.1f} mW, ICED {iced:.1f} mW — "
            f"ICED is {base / iced:.2f}x more energy-efficient than the "
            f"baseline and {pt / iced:.2f}x than per-tile DVFS "
            "(paper at unroll 2: 1.32x and 1.6x)."
        )
    return ExperimentResult(
        id="fig11",
        title="Average power per strategy",
        table=table,
        series=series,
        notes=notes,
        data={f"{s}_u{u}": averages[(s, u)]
              for s in STRATEGY_ORDER for u in unrolls},
    )
