"""Fig 11: average power per strategy (energy-efficiency proxy).

Since the evaluated configurations keep the same throughput, power
ratios equal energy-efficiency ratios. The paper's unroll-2 numbers:
baseline 160.4 mW, baseline+gating 143.8 mW, per-tile DVFS 193.9 mW
(controller overhead exceeds its savings), ICED 121.3 mW —
1.32x / 1.6x energy-efficiency over baseline / per-tile.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapped_kernel
from repro.kernels.table1 import STANDALONE_KERNELS
from repro.power.model import mapping_power
from repro.utils.tables import TextTable

STRATEGY_ORDER = ("baseline", "baseline+gating", "per_tile_dvfs", "iced")


def run(kernels: tuple[str, ...] = STANDALONE_KERNELS,
        size: int = 6,
        unrolls: tuple[int, ...] = (1, 2)) -> ExperimentResult:
    cgra = CGRA.build(size, size)
    table = TextTable(
        ["kernel", "unroll"] + [f"{s} mW" for s in STRATEGY_ORDER]
    )
    series: dict[str, list[float]] = {}
    averages: dict[tuple[str, int], float] = {}
    for unroll in unrolls:
        sums = {s: 0.0 for s in STRATEGY_ORDER}
        for name in kernels:
            row = [name, unroll]
            for strategy in STRATEGY_ORDER:
                mk = mapped_kernel(name, unroll, cgra, strategy)
                power = mapping_power(mk.mapping).total_mw
                sums[strategy] += power
                row.append(round(power, 1))
            table.add_row(row)
        for strategy in STRATEGY_ORDER:
            averages[(strategy, unroll)] = sums[strategy] / len(kernels)
        series[f"unroll {unroll} (mW)"] = [
            averages[(s, unroll)] for s in STRATEGY_ORDER
        ]

    notes = []
    for unroll in unrolls:
        base = averages[("baseline", unroll)]
        gated = averages[("baseline+gating", unroll)]
        pt = averages[("per_tile_dvfs", unroll)]
        iced = averages[("iced", unroll)]
        notes.append(
            f"unroll {unroll}: baseline {base:.1f} mW, +gating "
            f"{gated:.1f} mW, per-tile {pt:.1f} mW, ICED {iced:.1f} mW — "
            f"ICED is {base / iced:.2f}x more energy-efficient than the "
            f"baseline and {pt / iced:.2f}x than per-tile DVFS "
            "(paper at unroll 2: 1.32x and 1.6x)."
        )
    return ExperimentResult(
        id="fig11",
        title="Average power per strategy",
        table=table,
        series=series,
        notes=notes,
        data={f"{s}_u{u}": averages[(s, u)]
              for s in STRATEGY_ORDER for u in unrolls},
    )
