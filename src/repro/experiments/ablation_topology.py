"""Ablation: interconnect topology.

The paper's prototype is a plain mesh; richer interconnects (HyCUBE's
multi-hop crossbars, diagonal links) shorten routes and can lower the
II. This sweep maps the suite on mesh / torus / king-mesh fabrics and
reports II and power — showing that ICED's DVFS co-design is orthogonal
to the interconnect choice (its benefit survives on all three).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.errors import MappingError
from repro.experiments.base import ExperimentResult
from repro.kernels.suite import load_kernel
from repro.mapper.baseline import map_baseline
from repro.mapper.dvfs import map_dvfs_aware
from repro.power.model import mapping_power
from repro.utils.tables import TextTable

TOPOLOGIES = ("mesh", "torus", "king")


def run(kernels: tuple[str, ...] = ("fir", "spmv", "gemm", "fft"),
        size: int = 6) -> ExperimentResult:
    table = TextTable([
        "topology", "kernel", "baseline II", "iced II",
        "baseline mW", "iced mW", "gain",
    ])
    series = {"avg efficiency gain": []}
    for topology in TOPOLOGIES:
        cgra = CGRA.build(size, size, topology=topology)
        gains = []
        for name in kernels:
            dfg = load_kernel(name, 1)
            try:
                baseline = map_baseline(dfg, cgra)
                iced = map_dvfs_aware(dfg, cgra)
            except MappingError:
                continue
            p_base = mapping_power(baseline).total_mw
            p_iced = mapping_power(iced).total_mw
            gains.append(p_base / p_iced)
            table.add_row([
                topology, name, baseline.ii, iced.ii,
                round(p_base, 1), round(p_iced, 1),
                round(p_base / p_iced, 2),
            ])
        if gains:
            series["avg efficiency gain"].append(sum(gains) / len(gains))
    notes = [
        "the DVFS co-design's gain is interconnect-agnostic: mesh, "
        "torus and king-mesh fabrics all benefit by a similar factor "
        "(the paper's claim that ICED 'can be applied to any baseline "
        "CGRA').",
    ]
    return ExperimentResult(
        id="ablation_topology",
        title="Interconnect-topology ablation",
        table=table,
        series=series,
        notes=notes,
    )
