"""Ablation: Algorithm 1's contribution.

ICED's mapper runs twice: once with DVFS labels (normal operation) and
once with labeling disabled (every node labeled normal — the islands
still assign levels greedily and unused islands still gate, but no node
ever *prefers* a slow island). The delta isolates how much of the
energy win comes from the labeling pass itself.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.compile import compile_dfg
from repro.experiments.base import ExperimentResult
from repro.kernels.suite import load_kernel
from repro.mapper.dvfs import map_dvfs_aware
from repro.mapper.engine import EngineConfig
from repro.power.model import mapping_power
from repro.sim.utilization import average_dvfs_fraction
from repro.utils.tables import TextTable


def run(kernels: tuple[str, ...] = ("fir", "spmv", "gemm", "histogram"),
        size: int = 6, unroll: int = 1) -> ExperimentResult:
    cgra = CGRA.build(size, size)
    table = TextTable([
        "kernel", "labeled II", "unlabeled II",
        "labeled mW", "unlabeled mW", "labeled level", "unlabeled level",
    ])
    gains = []
    ii_deltas = []
    for name in kernels:
        dfg = load_kernel(name, unroll)
        labeled = map_dvfs_aware(dfg, cgra)
        # Unlabeled arm: Algorithm 2 runs with all-normal labels (no
        # node prefers a slow island); the post-mapping refinement is
        # kept in both arms (unrestricted: refine_level_names=None) so
        # the delta isolates the labeling pass.
        unlabeled = compile_dfg(
            dfg, cgra, "iced",
            EngineConfig(dvfs_aware=True,
                         allowed_level_names=("normal",)),
            refine_level_names=None,
        ).mapping
        p_l = mapping_power(labeled).total_mw
        p_u = mapping_power(unlabeled).total_mw
        gains.append(p_u / p_l)
        ii_deltas.append(unlabeled.ii - labeled.ii)
        table.add_row([
            name, labeled.ii, unlabeled.ii,
            round(p_l, 1), round(p_u, 1),
            round(average_dvfs_fraction(labeled), 3),
            round(average_dvfs_fraction(unlabeled), 3),
        ])
    avg_gain = sum(gains) / len(gains)
    if avg_gain >= 1.0:
        summary = (
            f"labeling buys {avg_gain:.2f}x average power over "
            "unlabeled island mapping with the same refinement."
        )
    else:
        summary = (
            f"labeling costs {1 / avg_gain:.2f}x power here: on kernels "
            "this small, packing into few islands and gating the rest "
            "beats spreading nodes onto slow islands — consistent with "
            "the paper's note that gating benefits small DFGs most."
        )
    notes = [summary]
    if any(delta > 0 for delta in ii_deltas):
        improved = sum(1 for delta in ii_deltas if delta > 0)
        notes.append(
            f"labeling also improved the II on {improved}/{len(kernels)} "
            "kernels: declaring slack up front gives the placer more "
            "freedom around the critical recurrence."
        )
    return ExperimentResult(
        id="ablation_labeling",
        title="Algorithm 1 (DVFS labeling) ablation",
        table=table,
        notes=notes,
        data={"avg_gain": avg_gain},
    )
