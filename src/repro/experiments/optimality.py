"""Optimality-gap report: exact vs heuristic vs annealed mappings.

For every kernel small enough for the exact branch-and-bound backend
this experiment compiles the same DFG with the ``engine``, ``anneal``
and ``exact`` backends, reports II and power per backend, and — when
the exact backend proves optimality within its probe budget — the II
gap each heuristic leaves on the table. The lower-bound column is the
exact backend's sound bound (RecMII / duration / capacity), so an
``engine`` row that already sits on the bound is proved optimal with
zero search.

Per-backend observability counters accumulated during the run
(``mapper.backend.<name>.compiles`` / ``.proofs``, the
``mapper.optimality_gap`` histogram) land in ``result.data`` so the
benchmark harness can track proof rates over time.
"""

from __future__ import annotations

from repro import obs
from repro.arch.cgra import CGRA
from repro.errors import MappingError
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapped_kernel
from repro.kernels.suite import load_kernel
from repro.mapper.exact import exact_lower_bound
from repro.power.model import mapping_power
from repro.utils.tables import TextTable

#: Small Table I kernels where the exact search is tractable; the
#: first five are proved optimal within the default budget on 6x6.
DEFAULT_KERNELS = ("combrelu", "conv", "gemm", "invert", "relu",
                   "fir", "lu_init")

BACKENDS = ("engine", "anneal", "exact")


def run(kernels: tuple[str, ...] = DEFAULT_KERNELS,
        size: int = 6, unroll: int = 1, strategy: str = "iced",
        max_probes: int = 60_000,
        budget_s: float | None = None) -> ExperimentResult:
    cgra = CGRA.build(size, size)
    exact_options = {"max_probes": max_probes}
    if budget_s is not None:
        exact_options["budget_s"] = budget_s
    options = {"engine": None, "anneal": None, "exact": exact_options}

    table = TextTable(["kernel", "LB", "engine II", "anneal II",
                       "exact II", "proven", "gap engine", "gap anneal",
                       "engine mW", "exact mW"])
    series = {"gap engine": [], "gap anneal": []}
    records = []
    proofs = 0
    for name in kernels:
        lb = exact_lower_bound(load_kernel(name, unroll), cgra)
        row: dict = {"kernel": name, "lower_bound": lb}
        try:
            bundles = {
                backend: mapped_kernel(name, unroll, cgra, strategy,
                                       backend, options[backend])
                for backend in BACKENDS
            }
        except MappingError as exc:
            records.append({**row, "error": str(exc)})
            continue
        proven = bundles["exact"].optimal
        proofs += int(proven)
        iis = {b: bundles[b].mapping.ii for b in BACKENDS}
        gaps = {b: (iis[b] - iis["exact"] if proven else None)
                for b in ("engine", "anneal")}
        power = {b: mapping_power(bundles[b].mapping,
                                  report=bundles[b].report).total_mw
                 for b in ("engine", "exact")}
        table.add_row([
            name, lb, iis["engine"], iis["anneal"], iis["exact"],
            "yes" if proven else "no",
            gaps["engine"] if proven else "-",
            gaps["anneal"] if proven else "-",
            round(power["engine"], 1), round(power["exact"], 1),
        ])
        if proven:
            series["gap engine"].append(float(gaps["engine"]))
            series["gap anneal"].append(float(gaps["anneal"]))
            obs.metrics().histogram("mapper.optimality_gap").observe(
                float(gaps["engine"]))
        records.append({
            **row, "ii": iis, "proven_optimal": proven, "gaps": gaps,
            "power_mw": {b: round(v, 3) for b, v in power.items()},
            "exact_stats": bundles["exact"].backend_stats or {},
        })
    metrics = {
        name: data for name, data in obs.metrics().snapshot().items()
        if name.startswith("mapper.")
    }
    worst = max(series["gap engine"], default=0.0)
    notes = [
        f"exact backend proved the optimal II on {proofs}/"
        f"{len(kernels)} kernels within {max_probes} probes; worst "
        f"heuristic-engine gap on a proved kernel: {worst:.0f} II.",
        "LB is the exact backend's sound lower bound (RecMII, "
        "per-op duration, tile/memory capacity); engine II == LB is "
        "an instant proof with zero search probes.",
    ]
    return ExperimentResult(
        id="optimality",
        title="Mapper optimality gaps (exact vs engine vs anneal)",
        table=table,
        series=series,
        notes=notes,
        data={"kernels": records, "metrics": metrics},
    )
