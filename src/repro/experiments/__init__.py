"""Per-table/figure experiment harnesses.

Every module exposes ``run(...) -> ExperimentResult`` regenerating one
table or figure of the paper's evaluation (DESIGN.md's experiment
index), parameterized so tests can run reduced instances and the
benchmark harness the full ones. ``python -m repro.experiments <id>``
runs one from the command line.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments import (
    table1,
    fig2,
    fig3,
    fig4,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    ablation_anneal,
    ablation_topology,
    ablation_island_size,
    ablation_labeling,
    ablation_multicycle,
    ablation_window,
    ablation_levels,
    optimality,
)

ALL_EXPERIMENTS = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "ablation_anneal": ablation_anneal.run,
    "ablation_topology": ablation_topology.run,
    "ablation_island_size": ablation_island_size.run,
    "ablation_labeling": ablation_labeling.run,
    "ablation_multicycle": ablation_multicycle.run,
    "ablation_window": ablation_window.run,
    "ablation_levels": ablation_levels.run,
    "optimality": optimality.run,
}

__all__ = ["ExperimentResult", "ALL_EXPERIMENTS"]
