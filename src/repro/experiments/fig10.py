"""Fig 10: average DVFS level across tiles.

Metric: normal 100 %, relax 50 %, rest 25 %, power-gated 0 %, averaged
over all tiles. Lower is better; per-tile DVFS is the lower bound ICED
approaches with far less controller hardware (the paper's 26 % vs
35 % on the 6x6 fabric without unrolling).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.experiments.common import sweep_strategies
from repro.kernels.table1 import STANDALONE_KERNELS
from repro.sim.utilization import average_dvfs_fraction
from repro.utils.tables import TextTable

STRATEGY_ORDER = ("baseline", "per_tile_dvfs", "iced")


def _avg_level(mk, strategy: str) -> float:
    return average_dvfs_fraction(mk.mapping)


def run(kernels: tuple[str, ...] = STANDALONE_KERNELS,
        size: int = 6,
        unrolls: tuple[int, ...] = (1, 2)) -> ExperimentResult:
    cgra = CGRA.build(size, size)
    sweep = sweep_strategies(kernels, cgra, STRATEGY_ORDER,
                             _avg_level, unrolls)
    table = TextTable(
        ["kernel", "unroll"] + [f"{s} level" for s in STRATEGY_ORDER]
    )
    for row in sweep.rows:
        table.add_row([row.kernel, row.unroll]
                      + [round(row.values[s], 3) for s in STRATEGY_ORDER])
    series = {f"unroll {u}": sweep.series(u) for u in unrolls}
    averages = sweep.averages
    notes = []
    for unroll in unrolls:
        pt = averages[("per_tile_dvfs", unroll)]
        iced = averages[("iced", unroll)]
        claim = "35% vs 26%" if unroll == 1 else "53% vs 37%"
        notes.append(
            f"unroll {unroll}: ICED {iced:.2f} vs per-tile {pt:.2f} "
            f"(paper: ICED {claim.split(' vs ')[0]} vs per-tile "
            f"{claim.split(' vs ')[1]}) — islands keep ICED slightly "
            "above the per-tile lower bound."
        )
    return ExperimentResult(
        id="fig10",
        title="Average DVFS level across tiles",
        table=table,
        series=series,
        notes=notes,
        data={f"{s}_u{u}": averages[(s, u)]
              for s in STRATEGY_ORDER for u in unrolls},
    )
