"""Fig 10: average DVFS level across tiles.

Metric: normal 100 %, relax 50 %, rest 25 %, power-gated 0 %, averaged
over all tiles. Lower is better; per-tile DVFS is the lower bound ICED
approaches with far less controller hardware (the paper's 26 % vs
35 % on the 6x6 fabric without unrolling).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapped_kernel
from repro.kernels.table1 import STANDALONE_KERNELS
from repro.sim.utilization import average_dvfs_fraction
from repro.utils.tables import TextTable

STRATEGY_ORDER = ("baseline", "per_tile_dvfs", "iced")


def run(kernels: tuple[str, ...] = STANDALONE_KERNELS,
        size: int = 6,
        unrolls: tuple[int, ...] = (1, 2)) -> ExperimentResult:
    cgra = CGRA.build(size, size)
    table = TextTable(
        ["kernel", "unroll"] + [f"{s} level" for s in STRATEGY_ORDER]
    )
    series: dict[str, list[float]] = {}
    averages: dict[tuple[str, int], float] = {}
    for unroll in unrolls:
        sums = {s: 0.0 for s in STRATEGY_ORDER}
        for name in kernels:
            row = [name, unroll]
            for strategy in STRATEGY_ORDER:
                mk = mapped_kernel(name, unroll, cgra, strategy)
                level = average_dvfs_fraction(mk.mapping)
                sums[strategy] += level
                row.append(round(level, 3))
            table.add_row(row)
        for strategy in STRATEGY_ORDER:
            averages[(strategy, unroll)] = sums[strategy] / len(kernels)
        series[f"unroll {unroll}"] = [
            averages[(s, unroll)] for s in STRATEGY_ORDER
        ]
    notes = []
    for unroll in unrolls:
        pt = averages[("per_tile_dvfs", unroll)]
        iced = averages[("iced", unroll)]
        claim = "35% vs 26%" if unroll == 1 else "53% vs 37%"
        notes.append(
            f"unroll {unroll}: ICED {iced:.2f} vs per-tile {pt:.2f} "
            f"(paper: ICED {claim.split(' vs ')[0]} vs per-tile "
            f"{claim.split(' vs ')[1]}) — islands keep ICED slightly "
            "above the per-tile lower bound."
        )
    return ExperimentResult(
        id="fig10",
        title="Average DVFS level across tiles",
        table=table,
        series=series,
        notes=notes,
        data={f"{s}_u{u}": averages[(s, u)]
              for s in STRATEGY_ORDER for u in unrolls},
    )
