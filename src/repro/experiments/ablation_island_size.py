"""Ablation: island shape beyond Fig 4 — including non-square islands.

Fig 4 sweeps square islands for performance; this ablation also tracks
energy (power) and the DVFS-controller overhead trade-off: smaller
islands approximate per-tile quality but multiply controllers, larger
islands save controllers but constrain the mapper.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.errors import MappingError
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapped_kernel
from repro.power.model import mapping_power
from repro.utils.tables import TextTable

DEFAULT_SHAPES = ((1, 1), (1, 2), (2, 2), (2, 3), (3, 3), (2, 6), (6, 6))


def run(kernels: tuple[str, ...] = ("fir", "spmv", "gemm"),
        size: int = 6,
        shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
        unroll: int = 1) -> ExperimentResult:
    base = CGRA.build(size, size)
    table = TextTable(["island", "#islands", "avg II", "avg power mW",
                       "kernels mapped"])
    series = {"avg power (mW)": [], "avg II": []}
    for shape in shapes:
        if size % shape[0] and shape[0] != size:
            pass  # irregular edges are allowed; just proceed
        cgra = base.with_islands(shape)
        ii_sum, power_sum, mapped = 0, 0.0, 0
        for name in kernels:
            try:
                mk = mapped_kernel(name, unroll, cgra, "iced")
            except MappingError:
                continue
            ii_sum += mk.mapping.ii
            power_sum += mapping_power(mk.mapping).total_mw
            mapped += 1
        if not mapped:
            continue
        table.add_row([
            f"{shape[0]}x{shape[1]}", len(cgra.islands),
            round(ii_sum / mapped, 2), round(power_sum / mapped, 1),
            mapped,
        ])
        series["avg power (mW)"].append(power_sum / mapped)
        series["avg II"].append(ii_sum / mapped)
    notes = [
        "2x2 sits at the knee: near-minimal II with a 4x controller "
        "reduction over per-tile; very large islands save controllers "
        "but lose both II and gating opportunities.",
    ]
    return ExperimentResult(
        id="ablation_island_size",
        title="Island shape ablation (performance + power)",
        table=table,
        series=series,
        notes=notes,
    )
