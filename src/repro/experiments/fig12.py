"""Fig 12: scalability — average DVFS level across fabric sizes.

Per-tile DVFS and ICED (2x2 islands) are compared on 2x2 through 8x8
fabrics; islandization tracks the per-tile lower bound across sizes,
especially when small kernels run on large fabrics (most of the fabric
simply power-gates island by island).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.experiments.common import sweep_strategies
from repro.kernels.table1 import STANDALONE_KERNELS
from repro.sim.utilization import average_dvfs_fraction
from repro.utils.tables import TextTable

DEFAULT_SIZES = (2, 4, 6, 8)
STRATEGY_ORDER = ("per_tile_dvfs", "iced")


def _avg_level(mk, strategy: str) -> float:
    return average_dvfs_fraction(mk.mapping)


def run(kernels: tuple[str, ...] = STANDALONE_KERNELS,
        sizes: tuple[int, ...] = DEFAULT_SIZES,
        unroll: int = 1) -> ExperimentResult:
    table = TextTable(
        ["size", "kernels mapped", "per-tile avg level", "ICED avg level"]
    )
    series = {"per_tile": [], "iced": []}
    for size in sizes:
        cgra = CGRA.build(size, size)
        sweep = sweep_strategies(kernels, cgra, STRATEGY_ORDER,
                                 _avg_level, (unroll,),
                                 skip_unmappable=True)
        mapped = sweep.mapped[unroll]
        if not mapped:
            table.add_row([f"{size}x{size}", 0, "-", "-"])
            series["per_tile"].append(1.0)
            series["iced"].append(1.0)
            continue
        pt_avg = sweep.averages[("per_tile_dvfs", unroll)]
        iced_avg = sweep.averages[("iced", unroll)]
        series["per_tile"].append(pt_avg)
        series["iced"].append(iced_avg)
        table.add_row([f"{size}x{size}", mapped,
                       round(pt_avg, 3), round(iced_avg, 3)])

    notes = [
        "ICED's per-island average DVFS level stays close to the "
        "per-tile lower bound across fabric sizes (paper: 35% vs 26% on "
        "the 6x6 without unrolling), and both drop on larger fabrics as "
        "more of the fabric idles.",
    ]
    return ExperimentResult(
        id="fig12",
        title="Scalability of the average DVFS level",
        table=table,
        series=series,
        notes=notes,
    )
