"""Fig 2: baseline tile utilization shrinks on larger CGRAs.

The conventional mapper minimizes II; on a bigger fabric the same
kernel touches proportionally fewer tiles, so the all-tile average
utilization drops — and unrolling does not always help, because spmv
and gemm trade a larger DFG for a longer II.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapped_kernel
from repro.kernels.table1 import STANDALONE_KERNELS
from repro.sim.utilization import utilization_stats
from repro.utils.tables import TextTable

DEFAULT_SIZES = (4, 5, 6)


def run(kernels: tuple[str, ...] = STANDALONE_KERNELS,
        sizes: tuple[int, ...] = DEFAULT_SIZES,
        unrolls: tuple[int, ...] = (1, 2)) -> ExperimentResult:
    table = TextTable(
        ["kernel", "unroll"] + [f"{s}x{s} util" for s in sizes]
        + [f"{s}x{s} II" for s in sizes]
    )
    series: dict[str, list[float]] = {}
    for unroll in unrolls:
        averages = []
        for size in sizes:
            cgra = CGRA.build(size, size)
            total = 0.0
            for name in kernels:
                mk = mapped_kernel(name, unroll, cgra, "baseline")
                stats = utilization_stats(mk.mapping, mk.report,
                                          include_gated=True)
                total += stats.average
            averages.append(total / len(kernels))
        series[f"avg utilization (unroll {unroll})"] = averages

    for name in kernels:
        for unroll in unrolls:
            utils, iis = [], []
            for size in sizes:
                cgra = CGRA.build(size, size)
                mk = mapped_kernel(name, unroll, cgra, "baseline")
                stats = utilization_stats(mk.mapping, mk.report,
                                          include_gated=True)
                utils.append(round(stats.average, 3))
                iis.append(mk.mapping.ii)
            table.add_row([name, unroll] + utils + iis)

    first = series[f"avg utilization (unroll {unrolls[0]})"]
    notes = [
        f"average baseline utilization falls from "
        f"{first[0]:.2f} ({sizes[0]}x{sizes[0]}) to {first[-1]:.2f} "
        f"({sizes[-1]}x{sizes[-1]}) — the under-utilization that "
        "motivates DVFS.",
    ]
    return ExperimentResult(
        id="fig2",
        title="Under-utilization across kernels and CGRA sizes",
        table=table,
        series=series,
        notes=notes,
    )
