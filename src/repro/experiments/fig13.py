"""Fig 13: streaming energy-efficiency, ICED vs DRIPS.

Both systems see the same partition (profiled on the first 50 inputs)
and the same 10-input observation window. DRIPS re-shapes island
allocations toward the bottleneck at nominal V/f; ICED keeps the
partition and plays the DVFS levels. The figure reports ICED's
performance-per-watt normalized to DRIPS per input interval; the paper
averages 1.12x on GCN and 1.26x on LU.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.streaming.app import gcn_app, lu_app
from repro.streaming.drips import simulate_drips
from repro.streaming.engine import simulate_stream
from repro.streaming.partitioner import partition_app, streaming_cgra
from repro.streaming.workloads import EnzymeGraphStream, SparseMatrixStream
from repro.utils.tables import TextTable

PAPER_AVERAGES = {"gcn": 1.12, "lu": 1.26}


def run(apps: tuple[str, ...] = ("gcn", "lu"),
        num_inputs: int = 150,
        profile_inputs: int = 50,
        window: int = 10) -> ExperimentResult:
    table = TextTable([
        "app", "iced cycles", "drips cycles",
        "iced mW", "drips mW", "perf/W ratio", "paper avg",
    ])
    series: dict[str, list[float]] = {}
    data: dict[str, float] = {}
    for app_name in apps:
        if app_name == "gcn":
            app = gcn_app()
            inputs = EnzymeGraphStream(num_graphs=num_inputs).generate()
        elif app_name == "lu":
            app = lu_app()
            inputs = SparseMatrixStream(num_matrices=num_inputs).generate()
        else:
            raise ValueError(f"unknown streaming app {app_name!r}")
        cgra = streaming_cgra()
        profile, run_inputs = inputs[:profile_inputs], inputs[profile_inputs:]
        partition = partition_app(app, cgra, profile)
        iced = simulate_stream(partition, run_inputs, window=window)
        drips = simulate_drips(partition, run_inputs, window=window)
        ratio = iced.perf_per_watt() / drips.perf_per_watt()
        table.add_row([
            app_name,
            round(iced.makespan_cycles), round(drips.makespan_cycles),
            round(iced.average_power_mw, 1),
            round(drips.average_power_mw, 1),
            round(ratio, 3),
            PAPER_AVERAGES.get(app_name, float("nan")),
        ])
        series[f"{app_name} per-window perf/W ratio"] = [
            iw.perf_per_watt() / dw.perf_per_watt()
            for iw, dw in zip(iced.windows, drips.windows)
            if dw.perf_per_watt() > 0
        ]
        data[f"{app_name}_ratio"] = ratio

    notes = [
        f"{name}: measured {data[f'{name}_ratio']:.2f}x vs the paper's "
        f"{PAPER_AVERAGES[name]:.2f}x average perf/W over DRIPS"
        for name in apps
    ]
    return ExperimentResult(
        id="fig13",
        title="Streaming energy-efficiency: ICED over DRIPS",
        table=table,
        series=series,
        notes=notes,
        data=data,
    )
