"""Table I: per-kernel graph statistics at unroll factors 1 and 2."""

from __future__ import annotations

from repro.dfg.analysis import dfg_stats
from repro.experiments.base import ExperimentResult
from repro.kernels.suite import kernel_names, load_kernel
from repro.kernels.table1 import TABLE1_SPECS
from repro.utils.tables import TextTable


def run(kernels: list[str] | None = None) -> ExperimentResult:
    """Regenerate Table I and check it against the published numbers."""
    kernels = kernels or kernel_names()
    table = TextTable([
        "kernel", "domain",
        "u1 nodes", "u1 edges", "u1 RecMII",
        "u2 nodes", "u2 edges", "u2 RecMII",
        "matches paper",
    ])
    mismatches = 0
    for name in kernels:
        spec = TABLE1_SPECS[name]
        measured = []
        for unroll in (1, 2):
            stats = dfg_stats(load_kernel(name, unroll))
            measured.append((stats.nodes, stats.edges, stats.rec_mii))
        match = (measured[0] == spec.u1) and (measured[1] == spec.u2)
        mismatches += 0 if match else 1
        table.add_row([
            name, spec.domain,
            *measured[0], *measured[1],
            "yes" if match else "NO",
        ])
    notes = [
        f"{len(kernels) - mismatches}/{len(kernels)} kernels match the "
        "published (nodes, edges, RecMII) exactly at both unroll factors.",
        "spmv and gemm RecMII grows 4 -> 7 under unrolling (loop-carried "
        "dependence), the effect motivating section II-A.",
    ]
    return ExperimentResult(
        id="table1",
        title="Target workloads and their DFG statistics",
        table=table,
        notes=notes,
        data={"mismatches": mismatches},
    )
