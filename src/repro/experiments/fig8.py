"""Fig 8: area and power breakdown of the 6x6 ICED CGRA.

The paper reports 6.63 mm^2 (ASAP7, SRAM excluded) at 113.95 mW
average power under nominal 0.7 V / 434 MHz; our analytic models are
calibrated through those points (DESIGN.md section 4), and this harness
prints the per-component breakdown the figure charts.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.power.area import area_report
from repro.power.model import DEFAULT_POWER_PARAMS, level_tile_power_mw
from repro.power.sram import SRAMModel
from repro.utils.tables import TextTable


def run(rows: int = 6, cols: int = 6) -> ExperimentResult:
    cgra = CGRA.build(rows, cols)
    params = DEFAULT_POWER_PARAMS
    area = area_report(cgra, dvfs_style="island")
    sram = SRAMModel(size_bytes=cgra.spm.size_bytes,
                     num_banks=cgra.spm.num_banks)

    table = TextTable(["component", "area mm^2", "area %", "power mW"])
    tile_power = level_tile_power_mw(params, cgra.dvfs.normal)
    fabric_power = tile_power * cgra.num_tiles
    controller_power = (
        params.controller_mw() * params.island_controller_scale
        * len(cgra.islands)
    )
    power_of = {
        "fu": 0.34 * fabric_power,
        "crossbar": 0.28 * fabric_power,
        "config_mem": 0.20 * fabric_power,
        "registers": 0.11 * fabric_power,
        "clock_and_misc": 0.07 * fabric_power,
        "dvfs_support": controller_power,
        "sram": sram.power_mw(cgra.dvfs.normal.frequency_mhz, 1.0),
    }
    for component, mm2, pct in area.rows():
        table.add_row([component, round(mm2, 3), round(pct, 1),
                       round(power_of.get(component, 0.0), 2)])
    fabric_mm2 = area.total_mm2 - area.components_mm2.get("sram", 0.0)
    notes = [
        f"fabric area (SRAM excluded): {fabric_mm2:.2f} mm^2 — paper: "
        "6.63 mm^2.",
        f"fabric power at nominal V/f: "
        f"{fabric_power + controller_power:.1f} mW — paper: 113.95 mW.",
        f"SRAM: {area.components_mm2.get('sram', 0.0):.3f} mm^2 / "
        f"{power_of['sram']:.2f} mW — paper (CACTI 6.5, 22 nm): "
        "0.559 mm^2 / 62.653 mW.",
    ]
    return ExperimentResult(
        id="fig8",
        title="Area and power breakdown of the 6x6 ICED CGRA",
        table=table,
        notes=notes,
        data={"area_mm2": area.components_mm2, "power_mw": power_of},
    )
