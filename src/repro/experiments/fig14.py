"""Fig 14: power/performance landscape against other architectures.

The paper derives every non-ICED point from the cited publications
(HyCUBE A-SSCC'19, RipTide MICRO'22 — which also reports SNAFU and
manycore baselines); only the ICED point is measured. We do the same:
literature points are constants (with their caveats — different
technology nodes, tile counts and memory systems), and the ICED point
comes from our fft mapping and power model.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.experiments.common import mapped_kernel
from repro.power.model import mapping_power
from repro.sim.simulator import simulate_execution
from repro.utils.tables import TextTable

#: Literature data points for FFT-class workloads: name ->
#: (power mW, performance MOPS, source note).
LITERATURE_POINTS = {
    "HyCUBE (40nm)": (7.7, 203.0, "A-SSCC'19: 26.4 MOPS/mW @ 0.9 V"),
    "RipTide (22nm)": (0.35, 45.0, "MICRO'22: energy-minimal dataflow"),
    "SNAFU (28nm)": (0.97, 38.0, "via RipTide: vectorized ULP CGRA"),
    "Manycore (22nm)": (19.1, 102.0, "via RipTide comparison set"),
}


def run(iterations: int = 1024) -> ExperimentResult:
    cgra = CGRA.build(6, 6)
    iced = mapped_kernel("fft", 1, cgra, "iced")
    power = mapping_power(iced.mapping)
    execution = simulate_execution(iced.mapping, iterations, iced.report)
    ops = iced.mapping.dfg.num_nodes * iterations
    mops = ops / execution.execution_time_us
    efficiency = mops / power.total_mw

    table = TextTable(
        ["architecture", "power mW", "perf MOPS", "MOPS/mW", "source"]
    )
    for name, (p_mw, perf, note) in LITERATURE_POINTS.items():
        table.add_row([name, p_mw, perf, round(perf / p_mw, 2), note])
    table.add_row([
        "ICED 6x6 (7nm, this repo)", round(power.total_mw, 1),
        round(mops, 1), round(efficiency, 2),
        "measured: fft mapping + calibrated power model",
    ])
    notes = [
        "cross-architecture comparison is indicative only (different "
        "nodes, tile counts, memory hierarchies) — the paper says the "
        "same; the point is that ICED's co-design applies on top of any "
        "baseline CGRA.",
        f"ICED fft: II={iced.mapping.ii}, "
        f"{execution.total_cycles} cycles for {iterations} iterations.",
    ]
    return ExperimentResult(
        id="fig14",
        title="Power/performance comparison on FFT",
        table=table,
        notes=notes,
        data={"iced_mops": mops, "iced_power_mw": power.total_mw},
    )
