"""Ablation: the number of DVFS levels.

Section IV-B notes the framework is parameterizable in the number of
levels; this sweep builds configs with 1..4 active levels (each new
level halving the frequency, voltage following the fitted V(f) curve)
and measures the energy/II trade-off on the standalone kernels.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.arch.dvfs import scaled_config
from repro.errors import MappingError
from repro.experiments.base import ExperimentResult
from repro.kernels.suite import load_kernel
from repro.mapper.dvfs import map_dvfs_aware
from repro.power.model import mapping_power
from repro.sim.utilization import average_dvfs_fraction
from repro.utils.tables import TextTable


def run(kernels: tuple[str, ...] = ("fir", "spmv", "gemm"),
        num_levels: tuple[int, ...] = (1, 2, 3, 4),
        size: int = 6, unroll: int = 1) -> ExperimentResult:
    table = TextTable(["levels", "avg II", "avg power mW", "avg level",
                       "kernels mapped"])
    series = {"avg power (mW)": []}
    for levels in num_levels:
        cgra = CGRA.build(size, size, dvfs=scaled_config(levels))
        ii_sum, power_sum, level_sum, mapped = 0, 0.0, 0.0, 0
        for name in kernels:
            try:
                mapping = map_dvfs_aware(load_kernel(name, unroll), cgra)
            except MappingError:
                continue
            ii_sum += mapping.ii
            power_sum += mapping_power(mapping).total_mw
            level_sum += average_dvfs_fraction(mapping)
            mapped += 1
        if not mapped:
            continue
        table.add_row([
            levels, round(ii_sum / mapped, 2),
            round(power_sum / mapped, 1),
            round(level_sum / mapped, 3), mapped,
        ])
        series["avg power (mW)"].append(power_sum / mapped)
    notes = [
        "power and II trade off across level counts: a 1-level config "
        "(gating only) can show low power simply because its mapping "
        "settled at a longer II; at matched II, 2-3 active levels "
        "capture the DVFS benefit and a 4th (8x slowdown) level adds "
        "little, since routing through 8x tiles rarely fits the II.",
    ]
    return ExperimentResult(
        id="ablation_levels",
        title="Number-of-DVFS-levels ablation",
        table=table,
        series=series,
        notes=notes,
    )
