"""CLI: ``python -m repro.experiments <id> [...]``.

Run one experiment (or ``all``) and print the regenerated table /
series. ``--json`` emits machine-readable output instead.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure of the ICED paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment id (DESIGN.md's experiment index)",
    )
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of text")
    parser.add_argument(
        "--save", metavar="DIR", default=None,
        help="also write <id>.txt, <id>.json and <id>.csv into DIR",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="fan strategy sweeps over this many processes",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent on-disk mapping cache (default when --jobs>1: "
             ".repro-cache or $REPRO_CACHE_DIR)",
    )
    args = parser.parse_args(argv)

    if args.jobs != 1 or args.cache_dir:
        from repro.compile import default_cache_root
        from repro.experiments.common import set_parallel_defaults

        cache_dir = args.cache_dir or (
            default_cache_root() if args.jobs > 1 else None
        )
        set_parallel_defaults(jobs=args.jobs, cache_dir=cache_dir)

    save_dir = pathlib.Path(args.save) if args.save else None
    if save_dir is not None:
        os.makedirs(save_dir, exist_ok=True)

    ids = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    for exp_id in ids:
        result = ALL_EXPERIMENTS[exp_id]()
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            print(result.render())
            print()
        if save_dir is not None:
            (save_dir / f"{exp_id}.txt").write_text(result.render() + "\n")
            (save_dir / f"{exp_id}.json").write_text(
                json.dumps(result.to_dict(), indent=2) + "\n"
            )
            (save_dir / f"{exp_id}.csv").write_text(
                result.table.to_csv() + "\n"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
