"""Shared mapping machinery for the experiment harnesses.

A process-wide cache keyed by (kernel, unroll, fabric, strategy) keeps
each mapping computed once even when several figures consume it (Fig 9,
10 and 11 all need the same three mappings per kernel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cgra import CGRA
from repro.kernels.suite import load_kernel
from repro.mapper.baseline import map_baseline
from repro.mapper.dvfs import map_dvfs_aware
from repro.mapper.mapping import Mapping
from repro.mapper.per_tile import assign_per_tile_dvfs, gate_unused_tiles
from repro.mapper.timing import TimingReport, compute_timing

#: The three evaluated designs of section V plus the gating variant.
STRATEGIES = ("baseline", "baseline+gating", "per_tile_dvfs", "iced")

_CACHE: dict[tuple, "MappedKernel"] = {}


@dataclass
class MappedKernel:
    """A mapping plus its timing reconstruction."""

    mapping: Mapping
    report: TimingReport


def fabric_key(cgra: CGRA) -> tuple:
    first = cgra.islands[0]
    return (cgra.rows, cgra.cols, first.height, first.width,
            tuple(sorted(cgra.memory_tile_ids())))


def mapped_kernel(name: str, unroll: int, cgra: CGRA,
                  strategy: str) -> MappedKernel:
    """Map (and cache) one kernel under one strategy."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    key = (name, unroll, fabric_key(cgra), strategy)
    if key in _CACHE:
        return _CACHE[key]

    if strategy == "baseline":
        mapping = map_baseline(load_kernel(name, unroll), cgra)
    elif strategy == "iced":
        mapping = map_dvfs_aware(load_kernel(name, unroll), cgra)
    else:
        base = mapped_kernel(name, unroll, cgra, "baseline")
        if strategy == "baseline+gating":
            mapping = gate_unused_tiles(base.mapping)
        else:  # per_tile_dvfs
            mapping = assign_per_tile_dvfs(base.mapping)
    result = MappedKernel(mapping=mapping, report=compute_timing(mapping))
    _CACHE[key] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()
