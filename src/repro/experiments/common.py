"""Shared mapping machinery for the experiment harnesses.

All figure experiments compile through :mod:`repro.compile` — one
pipeline, one content-addressed mapping cache — so Fig 9, 10 and 11
(which all need the same mappings per kernel) share engine work, and a
repeated sweep is served almost entirely from cache. On top of the
pipeline cache sits a small per-process memo of ``MappedKernel``
bundles so intra-process re-use skips even rehydration + revalidation.

:func:`sweep_strategies` is the one kernel x strategy x unroll loop the
per-figure modules used to copy-paste. With parallel defaults set
(``set_parallel_defaults`` — the experiments CLI's ``--jobs``), the
loop's compiles are prefetched through a
:class:`~repro.compile.parallel.SweepExecutor` first: work fans out
across a process pool and/or is served from the persistent on-disk
cache, then the (unchanged, deterministic) aggregation loop runs
entirely against warm memoized results — so a ``--jobs N`` figure is
bit-identical to a serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.arch.cgra import CGRA
from repro.compile import (
    Instrumentation,
    SweepExecutor,
    SweepItem,
    compile_kernel,
    get_cache,
)
from repro.errors import MappingError
from repro.mapper.backends import (
    EXPERIMENT_STRATEGIES,
    resolve_strategy,
)
from repro.mapper.mapping import Mapping
from repro.mapper.timing import TimingReport

#: The three evaluated designs of section V plus the gating variant —
#: the registry's canonical list, re-exported for the figure modules.
STRATEGIES = EXPERIMENT_STRATEGIES

_MEMO: dict[tuple, "MappedKernel"] = {}

#: Compiles that raised MappingError, memoized as such so parallel
#: prefetches and serial retries agree on which combinations fail.
_MEMO_ERRORS: dict[tuple, MappingError] = {}

#: Pass events of every compile issued by the experiment layer; the
#: benchmark harness renders these into per-pass timing artifacts.
_INSTRUMENT = Instrumentation()

#: Module defaults the CLI sets once (``--jobs``/``--cache-dir``) so
#: every harness routes through the executor without signature churn.
_DEFAULT_JOBS = 1
_DEFAULT_CACHE_DIR: str | None = None


def set_parallel_defaults(jobs: int = 1,
                          cache_dir: str | None = None) -> None:
    """Configure how :func:`sweep_strategies` executes its compiles.

    ``jobs > 1`` fans the sweep out over a process pool; ``cache_dir``
    points all compiles (parallel *and* serial) at a persistent
    on-disk artifact store shared across processes and invocations.
    """
    global _DEFAULT_JOBS, _DEFAULT_CACHE_DIR
    _DEFAULT_JOBS = max(1, int(jobs))
    _DEFAULT_CACHE_DIR = cache_dir


def get_parallel_defaults() -> tuple[int, str | None]:
    return _DEFAULT_JOBS, _DEFAULT_CACHE_DIR


def _experiment_cache():
    """The cache experiment compiles go through: the process-wide
    memory cache, disk-backed when a cache dir is configured."""
    if _DEFAULT_CACHE_DIR is None:
        return get_cache()
    from repro.compile import DiskCache, TieredCache

    return TieredCache(get_cache(), DiskCache(_DEFAULT_CACHE_DIR))


@dataclass
class MappedKernel:
    """A mapping plus its timing reconstruction."""

    mapping: Mapping
    report: TimingReport
    cache_hit: bool = False
    cost: float = 0.0
    optimal: bool = False
    backend_stats: dict | None = None


def fabric_key(cgra: CGRA) -> tuple:
    first = cgra.islands[0]
    return (cgra.rows, cgra.cols, first.height, first.width,
            tuple(sorted(cgra.memory_tile_ids())))


def mapped_kernel(name: str, unroll: int, cgra: CGRA,
                  strategy: str, backend: str = "engine",
                  backend_options: dict | None = None) -> MappedKernel:
    """Compile (and memoize) one kernel under one strategy/backend."""
    strategy = resolve_strategy(strategy)
    options = tuple(sorted((backend_options or {}).items()))
    key = (name, unroll, fabric_key(cgra), strategy, backend, options)
    if key in _MEMO:
        return _MEMO[key]
    if key in _MEMO_ERRORS:
        raise _MEMO_ERRORS[key]
    compiled = compile_kernel(name, cgra, strategy, unroll=unroll,
                              backend=backend,
                              backend_options=dict(options),
                              cache=_experiment_cache(),
                              instrument=_INSTRUMENT)
    result = MappedKernel(mapping=compiled.mapping,
                          report=compiled.report,
                          cache_hit=compiled.cache_hit,
                          cost=compiled.cost,
                          optimal=compiled.optimal,
                          backend_stats=compiled.backend_stats)
    _MEMO[key] = result
    return result


def clear_cache() -> None:
    """Drop the experiment memo (the pipeline's mapping cache stays)."""
    _MEMO.clear()
    _MEMO_ERRORS.clear()


def get_instrumentation() -> Instrumentation:
    """The pass-event stream of every experiment-layer compile."""
    return _INSTRUMENT


# -- the shared figure sweep ------------------------------------------------

#: A metric over one compiled kernel: (bundle, strategy) -> value.
Metric = Callable[[MappedKernel, str], float]


@dataclass
class SweepRow:
    """One kernel's metric values across the swept strategies."""

    kernel: str
    unroll: int
    values: dict[str, float]


@dataclass
class StrategySweep:
    """A full kernels x strategies x unrolls metric sweep."""

    strategies: tuple[str, ...]
    unrolls: tuple[int, ...]
    rows: list[SweepRow] = field(default_factory=list)
    #: (strategy, unroll) -> mean metric over the kernels mapped there.
    averages: dict[tuple[str, int], float] = field(default_factory=dict)
    #: unroll -> how many kernels mapped successfully.
    mapped: dict[int, int] = field(default_factory=dict)

    def series(self, unroll: int) -> list[float]:
        return [self.averages[(s, unroll)] for s in self.strategies]


def _prefetch_parallel(kernels: tuple[str, ...], cgra: CGRA,
                       strategies: tuple[str, ...],
                       unrolls: tuple[int, ...], jobs: int,
                       backend: str = "engine",
                       backend_options: dict | None = None) -> None:
    """Fan every un-memoized (kernel, strategy, unroll) compile out
    across the process pool, memoizing successes and failures so the
    serial aggregation loop below never compiles."""
    options = tuple(sorted((backend_options or {}).items()))
    pending: list[tuple[tuple, SweepItem]] = []
    for unroll in unrolls:
        for name in kernels:
            for strategy in strategies:
                key = (name, unroll, fabric_key(cgra), strategy,
                       backend, options)
                if key in _MEMO or key in _MEMO_ERRORS:
                    continue
                pending.append((key, SweepItem(kernel=name, unroll=unroll,
                                               strategy=strategy,
                                               backend=backend,
                                               backend_options=options)))
    if not pending:
        return
    executor = SweepExecutor(jobs=jobs, cache=_experiment_cache(),
                             cache_dir=_DEFAULT_CACHE_DIR,
                             instrument=_INSTRUMENT)
    outcomes = executor.run([item for _, item in pending], cgra)
    for (key, _item), outcome in zip(pending, outcomes):
        if outcome.ok:
            _MEMO[key] = MappedKernel(
                mapping=outcome.result.mapping,
                report=outcome.result.report,
                cache_hit=outcome.result.cache_hit,
                cost=outcome.result.cost,
                optimal=outcome.result.optimal,
                backend_stats=outcome.result.backend_stats,
            )
        else:
            _MEMO_ERRORS[key] = outcome.error


def sweep_strategies(kernels: tuple[str, ...], cgra: CGRA,
                     strategies: tuple[str, ...], metric: Metric,
                     unrolls: tuple[int, ...] = (1,), *,
                     skip_unmappable: bool = False,
                     jobs: int | None = None,
                     backend: str = "engine",
                     backend_options: dict | None = None) -> StrategySweep:
    """The kernel x strategy x unroll loop shared by Figs 9-12.

    Compiles every combination through the pipeline, applies ``metric``
    to each, and aggregates per-(strategy, unroll) averages. With
    ``skip_unmappable`` a kernel that raises
    :class:`~repro.errors.MappingError` under *any* strategy is dropped
    from that unroll's rows and averages (the Fig 12 small-fabric case).

    ``jobs`` (default: the module's parallel defaults) > 1 prefetches
    all compiles through a process pool first; the aggregation below is
    unchanged and its output bit-identical to a serial run.
    """
    jobs = _DEFAULT_JOBS if jobs is None else max(1, int(jobs))
    if jobs > 1:
        _prefetch_parallel(kernels, cgra, tuple(strategies),
                           tuple(unrolls), jobs, backend,
                           backend_options)
    sweep = StrategySweep(strategies=tuple(strategies),
                          unrolls=tuple(unrolls))
    for unroll in unrolls:
        sums = {s: 0.0 for s in strategies}
        mapped = 0
        for name in kernels:
            values: dict[str, float] = {}
            try:
                for strategy in strategies:
                    bundle = mapped_kernel(name, unroll, cgra, strategy,
                                           backend, backend_options)
                    values[strategy] = metric(bundle, strategy)
            except MappingError:
                if skip_unmappable:
                    continue  # kernel too large for this fabric
                raise
            for strategy in strategies:
                sums[strategy] += values[strategy]
            sweep.rows.append(SweepRow(name, unroll, values))
            mapped += 1
        sweep.mapped[unroll] = mapped
        for strategy in strategies:
            sweep.averages[(strategy, unroll)] = (
                sums[strategy] / mapped if mapped else 0.0
            )
    return sweep
