"""Fig 9: average tile utilization per kernel and strategy.

The paper's headline: ICED lifts the average utilization from 33 % to
76 % (2.3x) without unrolling and from 44 % to 71 % (1.6x) with it.
Power-gated tiles are excluded from the DVFS configurations' averages
(they burn nothing); the baseline counts every tile.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.experiments.base import ExperimentResult
from repro.experiments.common import sweep_strategies
from repro.kernels.table1 import STANDALONE_KERNELS
from repro.sim.utilization import utilization_stats
from repro.utils.tables import TextTable

STRATEGY_ORDER = ("baseline", "per_tile_dvfs", "iced")


def _utilization(mk, strategy: str) -> float:
    # power-gated tiles burn nothing, so the DVFS configurations exclude
    # them from the average; the baseline counts every tile
    return utilization_stats(
        mk.mapping, mk.report, include_gated=(strategy == "baseline"),
    ).average


def run(kernels: tuple[str, ...] = STANDALONE_KERNELS,
        size: int = 6,
        unrolls: tuple[int, ...] = (1, 2)) -> ExperimentResult:
    cgra = CGRA.build(size, size)
    sweep = sweep_strategies(kernels, cgra, STRATEGY_ORDER,
                             _utilization, unrolls)
    table = TextTable(
        ["kernel", "unroll"] + [f"{s} util" for s in STRATEGY_ORDER]
    )
    for row in sweep.rows:
        table.add_row([row.kernel, row.unroll]
                      + [round(row.values[s], 3) for s in STRATEGY_ORDER])
    series = {f"unroll {u}": sweep.series(u) for u in unrolls}
    averages = sweep.averages

    notes = []
    for unroll in unrolls:
        base = averages[("baseline", unroll)]
        iced = averages[("iced", unroll)]
        notes.append(
            f"unroll {unroll}: baseline {base:.2f} -> ICED {iced:.2f} "
            f"({iced / base:.2f}x; paper reports "
            f"{'2.3x (0.33 -> 0.76)' if unroll == 1 else '1.6x (0.44 -> 0.71)'})."
        )
    return ExperimentResult(
        id="fig9",
        title="Average tile utilization per strategy",
        table=table,
        series=series,
        notes=notes,
        data={f"{s}_u{u}": averages[(s, u)]
              for s in STRATEGY_ORDER for u in unrolls},
    )
