"""Shared experiment result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.serialization import to_jsonable
from repro.utils.tables import TextTable, format_series


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``table`` carries the rows the paper reports; ``series`` the
    figure-shaped numeric series (bar groups / lines); ``notes`` the
    headline observations (e.g. the claimed ratios and what we
    measured).
    """

    id: str
    title: str
    table: TextTable
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"== {self.id}: {self.title} ==", "", self.table.render()]
        for name, values in self.series.items():
            lines.append("")
            lines.append(format_series(name, values))
        if self.notes:
            lines.append("")
            lines.extend(f"* {note}" for note in self.notes)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "title": self.title,
            "csv": self.table.to_csv(),
            "series": to_jsonable(self.series),
            "notes": list(self.notes),
            "data": to_jsonable(self.data),
        }
