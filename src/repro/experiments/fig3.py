"""Fig 3: the motivating walk-through on the synthetic kernel.

Five configurations of the same kernel on a 4x4 CGRA:
(a) conventional mapping, no DVFS;
(b) per-tile DVFS + gating applied to (a);
(c) per-island DVFS applied to the conventional mapping — little to
    gain, because the critical path spreads over all islands;
(d) the DVFS-aware mapping (islands considered during placement);
(e) per-island DVFS on (d) — near per-tile utilization at a fraction
    of the controller overhead.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.arch.dvfs import DVFSLevel
from repro.errors import ValidationError
from repro.experiments.base import ExperimentResult
from repro.kernels.synthetic import fig1_kernel
from repro.mapper.baseline import map_baseline
from repro.mapper.dvfs import map_dvfs_aware
from repro.mapper.per_tile import assign_per_tile_dvfs
from repro.mapper.retime import retime_with_levels
from repro.mapper.timing import compute_timing
from repro.power.model import mapping_power
from repro.sim.utilization import average_dvfs_fraction, utilization_stats
from repro.utils.tables import TextTable


def _island_dvfs_on_mapping(mapping, strategy: str):
    """Greedy per-island slow-down of an existing mapping (config (c)).

    Entire islands are dropped to the slowest level the whole mapping
    still validates at; untouched islands are gated.
    """
    cgra = mapping.cgra
    used = mapping.tiles_used()
    levels: dict[int, DVFSLevel] = {}
    for island in cgra.islands:
        if any(t in used for t in island.tile_ids):
            for tile in island.tile_ids:
                levels[tile] = cgra.dvfs.normal
        else:
            for tile in island.tile_ids:
                levels[tile] = cgra.dvfs.power_gated
    for island in cgra.islands:
        if levels[island.tile_ids[0]].is_gated:
            continue
        for level in reversed(cgra.dvfs.levels):
            if level is cgra.dvfs.normal:
                break
            trial = dict(levels)
            for tile in island.tile_ids:
                trial[tile] = level
            candidate = retime_with_levels(mapping, trial)
            if candidate is None:
                continue
            try:
                compute_timing(candidate)
            except ValidationError:
                continue
            levels = trial
            break
    result = retime_with_levels(mapping, levels, strategy=strategy)
    assert result is not None
    return result


def run(rows: int = 4, cols: int = 4) -> ExperimentResult:
    cgra = CGRA.build(rows, cols, island_shape=(2, 2))
    kernel = fig1_kernel()

    conventional = map_baseline(kernel, cgra)
    per_tile = assign_per_tile_dvfs(conventional)
    island_on_conventional = _island_dvfs_on_mapping(
        conventional, "iced"
    )
    dvfs_aware = map_dvfs_aware(kernel, cgra)

    table = TextTable(
        ["config", "strategy", "II", "avg util", "avg DVFS level",
         "total power (mW)"]
    )
    configs = [
        ("(a) conventional", conventional),
        ("(b) per-tile DVFS on (a)", per_tile),
        ("(c) per-island DVFS on (a)", island_on_conventional),
        ("(d)+(e) DVFS-aware mapping", dvfs_aware),
    ]
    series = {"power_mw": []}
    for label, mapping in configs:
        report = compute_timing(mapping)
        stats = utilization_stats(
            mapping, report,
            include_gated=(mapping.strategy == "baseline"),
        )
        power = mapping_power(mapping)
        table.add_row([
            label, mapping.strategy, mapping.ii,
            round(stats.average, 3),
            round(average_dvfs_fraction(mapping), 3),
            round(power.total_mw, 1),
        ])
        series["power_mw"].append(power.total_mw)

    base_power = series["power_mw"][0]
    island_on_conv_power = series["power_mw"][2]
    aware_power = series["power_mw"][-1]
    notes = [
        f"the DVFS-aware mapping consumes {base_power / aware_power:.2f}x "
        "less power than the conventional one (the paper's motivating "
        "1.14x improvement in Fig 3(e)).",
    ]
    if island_on_conv_power > aware_power:
        notes.append(
            "per-island DVFS on the conventional mapping recovers less "
            "than the DVFS-aware mapping: the critical path straddles "
            "islands, as in Fig 3(c)."
        )
    else:
        notes.append(
            "on this tiny kernel our conventional mapper already packs "
            "the critical path into one island, so config (c) recovers "
            "more than the paper's example expects — the gap the paper "
            "illustrates appears when the conventional mapper spreads "
            "critical nodes (see fig4 for where islandization binds)."
        )
    return ExperimentResult(
        id="fig3",
        title="Motivating example for DVFS-aware co-design",
        table=table,
        series=series,
        notes=notes,
    )
