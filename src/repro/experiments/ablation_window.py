"""Ablation: DVFS controller window size for streaming applications.

The paper fixes the window at 10 inputs (matching DRIPS); this sweep
shows the trade-off: tiny windows chase noise (levels oscillate),
huge windows react too slowly to bottleneck shifts.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.streaming.app import gcn_app, lu_app
from repro.streaming.controller import DVFSController
from repro.streaming.drips import simulate_drips
from repro.streaming.engine import simulate_stream
from repro.streaming.partitioner import partition_app, streaming_cgra
from repro.streaming.workloads import EnzymeGraphStream, SparseMatrixStream
from repro.utils.tables import TextTable

DEFAULT_WINDOWS = (2, 5, 10, 25, 50)


def run(app_name: str = "lu",
        windows: tuple[int, ...] = DEFAULT_WINDOWS,
        num_inputs: int = 150,
        profile_inputs: int = 50) -> ExperimentResult:
    if app_name == "gcn":
        app = gcn_app()
        inputs = EnzymeGraphStream(num_graphs=num_inputs).generate()
    else:
        app = lu_app()
        inputs = SparseMatrixStream(num_matrices=num_inputs).generate()
    cgra = streaming_cgra()
    profile, run_inputs = inputs[:profile_inputs], inputs[profile_inputs:]
    partition = partition_app(app, cgra, profile)

    table = TextTable(["window", "iced mW", "iced cycles", "perf/W vs DRIPS"])
    series = {"perf/W ratio": []}
    for window in windows:
        controller = DVFSController(
            dvfs=cgra.dvfs,
            kernel_names=[p.kernel.name for p in partition.placements],
            window=window,
        )
        iced = simulate_stream(partition, run_inputs, window=window,
                               controller=controller)
        drips = simulate_drips(partition, run_inputs, window=window)
        ratio = iced.perf_per_watt() / drips.perf_per_watt()
        series["perf/W ratio"].append(ratio)
        table.add_row([
            window, round(iced.average_power_mw, 1),
            round(iced.makespan_cycles), round(ratio, 3),
        ])
    best = windows[max(range(len(windows)),
                       key=lambda i: series["perf/W ratio"][i])]
    notes = [
        f"best window for {app_name}: {best} inputs; the paper's fixed "
        "10-input window sits near the optimum.",
    ]
    return ExperimentResult(
        id="ablation_window",
        title=f"DVFS window-size ablation ({app_name})",
        table=table,
        series=series,
        notes=notes,
    )
