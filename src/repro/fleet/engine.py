"""The tenant-major batched fleet engine.

One fabric-fleet simulation is N tenant streams, each of which the
fast streaming engine (:class:`~repro.streaming.engine.FastPipelineSim`)
could run in ~milliseconds — but N sequential runs pay the Python
window loop, adapter dispatch and controller bookkeeping N times.
This module stacks *homogeneous tenant groups* — same app, same
window, same stream length, same strategy — into 2-D tenant-major
arrays and advances every tenant of a group through each observation
window at once:

* the per-kernel max-plus scan becomes a ``(T, W)`` scan
  (:func:`maxplus_scan_2d`): one ``cumsum`` + one
  ``maximum.accumulate`` along the window axis advances all T tenants;
* the ICED DVFS controller becomes integer level-index arrays with
  precomputed slower/faster/slowdown-ratio tables
  (:class:`BatchedDVFS`), replaying the scalar controller's exact
  decision arithmetic — same left-associative products, same
  first-occurrence argmax tie-breaking, same neighbor clamping —
  elementwise over tenants;
* the power model is memoized per level-index combination and
  evaluated through the *scalar* ``_PipelineSim._power_mw``, so every
  power value is bit-identical by construction.

Every quantity is an integer-valued float64 far below 2**53
(iterations, IIs, slowdowns are integers), so each vector operation is
exact and per-tenant results are **bit-identical** to N sequential
``fast_simulate_stream`` / ``fast_simulate_static`` runs — including
per-window stats — not merely close. The differential suite pins this.
DRIPS tenants have fractional reshape penalties (``vector_ok=False``
in the streaming engine) and fall back to per-tenant sequential runs.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.errors import FleetError
from repro.power.model import DEFAULT_POWER_PARAMS, PowerParams
from repro.streaming.engine import (
    FastPipelineSim,
    StreamResult,
    WindowStats,
)
from repro.streaming.partitioner import Partition
from repro.streaming.stage import FeatureBlock

__all__ = [
    "BatchedDVFS",
    "BatchedGroupResult",
    "maxplus_scan_2d",
    "simulate_group_batched",
]

#: Strategies the batched engine vectorizes; anything else runs the
#: per-tenant fallback in :mod:`repro.fleet.sim`.
BATCHABLE_STRATEGIES = ("iced", "static")


def maxplus_scan_2d(s: np.ndarray, carry: np.ndarray,
                    lat: np.ndarray) -> np.ndarray:
    """Row-wise ``finish[i] = max(s[i], finish[i-1]) + lat[i]`` with
    per-row ``finish[-1] = carry``.

    The 2-D form of
    :func:`repro.streaming.engine._maxplus_scan_array`: ``cumsum`` and
    ``maximum.accumulate`` run along axis 1, advancing every tenant's
    recurrence in the same exact integer-float arithmetic as the 1-D
    scan (cumulative sums are sequential per row, so the operation
    order per tenant is identical).
    """
    c = np.add.accumulate(lat, axis=1)
    g = np.empty_like(s)
    np.maximum(s[:, 0], carry, out=g[:, 0])
    np.subtract(s[:, 1:], c[:, :-1], out=g[:, 1:])
    np.maximum.accumulate(g, axis=1, out=g)
    g += c
    return g


class BatchedDVFS:
    """The ICED window controller vectorized over T tenants.

    State is a ``(T, K)`` int64 array of level *indices* into
    ``dvfs.levels`` plus a ``(T, K)`` exeTable. ``end_of_window``
    replays :meth:`repro.streaming.controller.DVFSController.
    end_of_window` elementwise: bottleneck by first-occurrence argmax
    (Python's ``max`` over an insertion-ordered dict breaks ties the
    same way), the throughput bar with the scalar's exact
    ``(headroom * exe) * ratio`` association, neighbor moves through
    precomputed clamped index tables, and the ``current is not
    bn_next`` object-identity test as index inequality (every tenant
    of a group shares one ``DVFSConfig``, so identity and index
    equality coincide).
    """

    def __init__(self, dvfs, num_tenants: int, num_kernels: int,
                 headroom: float = 0.9):
        levels = dvfs.levels
        last = len(levels) - 1
        self.level_names = tuple(level.name for level in levels)
        self.headroom = headroom
        self._last = last
        self.slower_idx = np.array(
            [min(i + 1, last) for i in range(last + 1)], dtype=np.int64
        )
        self.faster_idx = np.array(
            [max(i - 1, 0) for i in range(last + 1)], dtype=np.int64
        )
        # Ratio tables hold the exact quotients the scalar controller
        # divides out per decision (slowdowns are small integers, the
        # division result is identical).
        self.ratio_slower = np.array([
            levels[min(i + 1, last)].slowdown / levels[i].slowdown
            for i in range(last + 1)
        ])
        self.ratio_faster = np.array([
            levels[max(i - 1, 0)].slowdown / levels[i].slowdown
            for i in range(last + 1)
        ])
        # ``max(slowdown, 1)`` latency factors per level, matching the
        # _FastIced adapter.
        self.latency_slowdown = np.array([
            float(max(level.slowdown, 1)) for level in levels
        ])
        self.idx = np.zeros((num_tenants, num_kernels), dtype=np.int64)
        self.exe = np.zeros((num_tenants, num_kernels))
        self.num_decisions = np.zeros(num_tenants, dtype=np.int64)

    def end_of_window(self) -> None:
        active = self.exe.any(axis=1)
        if not active.any():
            return
        if active.all():
            rows: slice | np.ndarray = slice(None)
            exe = self.exe
            idx = self.idx
        else:
            rows = np.nonzero(active)[0]
            exe = self.exe[rows]
            idx = self.idx[rows]
        num_active = exe.shape[0]
        ar = np.arange(num_active)
        bn = np.argmax(exe, axis=1)
        bn_cur = idx[ar, bn]
        bn_next = self.faster_idx[bn_cur]
        bar = (self.headroom * exe[ar, bn]) * self.ratio_faster[bn_cur]
        new_idx = idx.copy()
        new_idx[ar, bn] = bn_next
        for k in range(idx.shape[1]):
            non_bn = bn != k
            cur = idx[:, k]
            has_slower = cur != self._last
            projected = exe[:, k] * self.ratio_slower[cur]
            lower = projected <= bar
            take_slower = non_bn & has_slower & lower
            take_faster = (non_bn & has_slower & ~lower
                           & (exe[:, k] > bar) & (cur != bn_next))
            col = new_idx[:, k]
            col[take_slower] = self.slower_idx[cur[take_slower]]
            col[take_faster] = self.faster_idx[cur[take_faster]]
        self.idx[rows] = new_idx
        self.num_decisions[rows] += 1
        self.exe[rows] = 0.0


@dataclass
class BatchedGroupResult:
    """One homogeneous group's per-tenant outcomes.

    Per-tenant scalars are ``(T,)`` arrays, per-window quantities
    ``(T, nw)`` (the window grid in *inputs* is shared across the
    group; window boundaries in *cycles* differ per tenant).
    :meth:`tenant_result` reconstructs the exact ``StreamResult`` a
    standalone fast-engine run would have produced.
    """

    app: str
    strategy: str
    inputs: int
    window: int
    frequency_mhz: float
    kernel_names: list[str]
    level_names: tuple[str, ...]
    window_inputs: np.ndarray
    start_cycles: np.ndarray
    end_cycles: np.ndarray
    energy_uj: np.ndarray
    level_idx: np.ndarray
    makespan_cycles: np.ndarray
    total_energy_uj: np.ndarray
    final_level_idx: np.ndarray

    @property
    def num_tenants(self) -> int:
        return len(self.makespan_cycles)

    def tenant_result(self, t: int, *,
                      keep_windows: bool = True) -> StreamResult:
        windows: list[WindowStats] = []
        if keep_windows:
            for w in range(len(self.window_inputs)):
                names = [
                    self.level_names[li]
                    for li in self.level_idx[t, w]
                ]
                windows.append(WindowStats(
                    index=w,
                    start_cycle=float(self.start_cycles[t, w]),
                    end_cycle=float(self.end_cycles[t, w]),
                    inputs=int(self.window_inputs[w]),
                    energy_uj=float(self.energy_uj[t, w]),
                    levels=dict(zip(self.kernel_names, names)),
                    frequency_mhz=self.frequency_mhz,
                ))
        return StreamResult(
            app=self.app,
            strategy=self.strategy,
            makespan_cycles=float(self.makespan_cycles[t]),
            total_energy_uj=float(self.total_energy_uj[t]),
            inputs=self.inputs,
            frequency_mhz=self.frequency_mhz,
            windows=windows,
        )


def _stack_tenant_windows(
    streams: list[Iterable[FeatureBlock]],
    kernels,
    window: int,
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Evaluate every tenant's iteration models and stack them
    tenant-major.

    Reuses the fast engine's own window chunker per tenant (identical
    counts by construction), concatenates each tenant's windows into
    one ``(n,)`` array per kernel and stacks tenants into ``(T, n)``.
    Returns ``({kernel: (T, n) counts}, (nw,) window input counts)``.
    """
    names = [k.name for k in kernels]
    per_kernel: dict[str, list[np.ndarray]] = {n: [] for n in names}
    num_inputs: int | None = None
    for tenant, stream in enumerate(streams):
        # One iteration-model evaluation per (kernel, block) — the same
        # per-block arrays the fast engine's window chunker slices up,
        # just never cut into windows (they get concatenated tenant-
        # major below anyway; the window grid is pure arithmetic).
        parts: dict[str, list[np.ndarray]] = {n: [] for n in names}
        total = 0
        for block in stream:
            for k in kernels:
                parts[k.name].append(k.iterations_block(block))
            total += len(block)
        if num_inputs is None:
            num_inputs = total
        elif total != num_inputs:
            raise FleetError(
                f"tenant {tenant} has a different window grid "
                f"({total} inputs vs {num_inputs}) — "
                f"group members must share the stream length"
            )
        for name in names:
            chunks = parts[name]
            per_kernel[name].append(
                chunks[0] if len(chunks) == 1
                else np.concatenate(chunks) if chunks
                else np.zeros(0, dtype=np.int64)
            )
    if num_inputs is None:
        raise FleetError("cannot batch an empty tenant group")
    full, rem = divmod(num_inputs, window)
    window_inputs = np.full(full + (1 if rem else 0), window,
                            dtype=np.int64)
    if rem:
        window_inputs[-1] = rem
    return (
        {name: np.stack(per_kernel[name]) for name in names},
        window_inputs,
    )


def simulate_group_batched(
    partition: Partition,
    streams: list[Iterable[FeatureBlock]],
    window: int,
    *,
    strategy: str = "iced",
    params: PowerParams = DEFAULT_POWER_PARAMS,
    headroom: float = 0.9,
) -> BatchedGroupResult:
    """Advance T same-app tenants through the pipeline together.

    ``streams`` is one feature-block iterable per tenant, all with the
    same number of inputs. ``strategy`` is ``iced`` (vectorized DVFS
    controller) or ``static`` (nominal level everywhere). Per-tenant
    outcomes are bit-identical to sequential
    ``fast_simulate_stream``/``fast_simulate_static`` runs over the
    same partition and streams.
    """
    if window < 1:
        raise FleetError("window must be >= 1")
    if strategy not in BATCHABLE_STRATEGIES:
        raise FleetError(
            f"cannot batch strategy {strategy!r} "
            f"(batchable: {', '.join(BATCHABLE_STRATEGIES)})"
        )
    sim = FastPipelineSim(partition, params)
    dvfs = partition.cgra.dvfs
    base_mhz = dvfs.normal.frequency_mhz
    kernels = partition.app.all_kernels()
    kernel_names = [p.kernel.name for p in partition.placements]
    kernel_col = {name: k for k, name in enumerate(kernel_names)}
    ii = {p.kernel.name: float(p.ii) for p in partition.placements}

    counts, window_inputs = _stack_tenant_windows(
        streams, kernels, window
    )
    num_tenants = len(streams)
    num_windows = len(window_inputs)
    boundaries = np.concatenate(
        ([0], np.cumsum(window_inputs))
    ).astype(np.int64)

    controller = BatchedDVFS(dvfs, num_tenants, len(kernel_names),
                             headroom=headroom)
    normal_factor = np.array([
        ii[name] * controller.latency_slowdown[0]
        for name in kernel_names
    ])
    prev_finish = {
        name: np.zeros(num_tenants) for name in kernel_names
    }
    stage_finish = np.zeros(num_tenants)
    window_start = np.zeros(num_tenants)
    energy_total = np.zeros(num_tenants)

    start_cycles = np.empty((num_tenants, num_windows))
    end_cycles = np.empty((num_tenants, num_windows))
    energy_uj = np.empty((num_tenants, num_windows))
    level_idx = np.zeros(
        (num_tenants, num_windows, len(kernel_names)), dtype=np.int64
    )

    power_memo: dict[int, float] = {}
    level_names = controller.level_names
    # Mixed-radix packing turns each (K,) level-index row into one
    # int64, so deduplication is a 1-D unique (a plain sort) instead of
    # the structured-bytes sort `np.unique(axis=0)` falls back to.
    level_strides = (
        np.int64(len(level_names))
        ** np.arange(len(kernel_names), dtype=np.int64)
    )

    def power_for(idx_rows: np.ndarray) -> np.ndarray:
        packed = idx_rows @ level_strides
        uniq, first, inverse = np.unique(
            packed, return_index=True, return_inverse=True
        )
        powers = np.empty(len(uniq))
        for j, (key, fi) in enumerate(zip(uniq.tolist(), first.tolist())):
            value = power_memo.get(key)
            if value is None:
                combo = {
                    name: level_names[li]
                    for name, li in zip(kernel_names, idx_rows[fi])
                }
                value = sim._power_mw(combo.__getitem__)
                power_memo[key] = value
            powers[j] = value
        return powers[inverse]

    iced = strategy == "iced"
    for w in range(num_windows):
        lo, hi = boundaries[w], boundaries[w + 1]
        width = int(hi - lo)
        zeros = np.zeros((num_tenants, width))
        prev_stage: np.ndarray | None = None
        for stage in partition.app.stages:
            s = zeros if prev_stage is None else prev_stage
            stage_done: np.ndarray | None = None
            for kernel in stage:
                name = kernel.name
                k = kernel_col[name]
                if iced:
                    factor = (
                        ii[name]
                        * controller.latency_slowdown[
                            controller.idx[:, k]
                        ]
                    )
                    lat = counts[name][:, lo:hi] * factor[:, None]
                    controller.exe[:, k] += lat.sum(axis=1)
                else:
                    lat = counts[name][:, lo:hi] * normal_factor[k]
                finish = maxplus_scan_2d(s, prev_finish[name], lat)
                prev_finish[name] = finish[:, -1].copy()
                if stage_done is None:
                    stage_done = finish
                else:
                    np.maximum(stage_done, finish, out=stage_done)
            prev_stage = stage_done
        np.maximum(stage_finish, prev_stage[:, -1], out=stage_finish)

        duration = stage_finish - window_start
        idx_snapshot = (controller.idx if iced
                        else level_idx[:, w, :])
        power = power_for(idx_snapshot)
        energy = (power * (duration / base_mhz)) * 1e-3
        start_cycles[:, w] = window_start
        end_cycles[:, w] = stage_finish
        energy_uj[:, w] = energy
        if iced:
            level_idx[:, w, :] = controller.idx
        energy_total += energy
        if iced:
            controller.end_of_window()
        window_start[:] = stage_finish

    return BatchedGroupResult(
        app=partition.app.name,
        strategy=strategy,
        inputs=int(window_inputs.sum()),
        window=window,
        frequency_mhz=base_mhz,
        kernel_names=kernel_names,
        level_names=level_names,
        window_inputs=window_inputs,
        start_cycles=start_cycles,
        end_cycles=end_cycles,
        energy_uj=energy_uj,
        level_idx=level_idx,
        makespan_cycles=stage_finish.copy(),
        total_energy_uj=energy_total,
        final_level_idx=(controller.idx.copy() if iced
                         else np.zeros_like(controller.idx)),
    )
