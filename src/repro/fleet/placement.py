"""Fleet placement: assign tenants to fabric instances.

A *placement strategy* maps every tenant to one healthy fabric before
the fleet simulation runs. Strategies live behind the same
register-by-name idiom as the mapper backends and traffic scenarios:

    from repro.fleet.placement import register_placement

    @register_placement("my_strategy", description="...")
    def _my_strategy(tenants, fabrics, seed):
        return {t.tenant_id: fabrics[0].fabric_id for t in tenants}

Placement is an *accounting* layer: it decides which fabric's books a
tenant's cycles and energy land on (and therefore per-fabric load and
utilization), but never perturbs the tenant's own simulated dynamics —
that is what keeps every tenant's results float-identical to a
standalone run and lets the differential suite pin the batched engine
against N sequential simulations regardless of strategy.

Failed fabrics (``FabricInstance.failed``) are excluded before the
strategy runs; placing a fleet with no healthy fabric raises
:class:`~repro.errors.PlacementError`, as does an unknown strategy
name (listing the known ones) or a strategy returning an invalid
assignment.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.utils.rng import make_rng

__all__ = [
    "FabricInstance",
    "PlacementRequest",
    "PlacementSpec",
    "describe_placements",
    "get_placement",
    "place_tenants",
    "placement_names",
    "register_placement",
]


@dataclass(frozen=True)
class FabricInstance:
    """One CGRA fabric in the fleet.

    ``fabric_id`` doubles as the fabric's position on a row-major rack
    grid (the topology the ``topology_aware`` strategy packs over);
    ``failed`` marks it out of rotation.
    """

    fabric_id: int
    name: str = ""
    failed: bool = False

    @property
    def label(self) -> str:
        return self.name or f"fabric-{self.fabric_id:03d}"


@dataclass(frozen=True)
class PlacementRequest:
    """What a strategy may know about a tenant: identity, which app it
    runs (compiled artifacts are shared per app) and a load hint (its
    stream length — the a-priori work estimate)."""

    tenant_id: str
    app: str
    load_hint: float


#: A strategy callable: (tenants, healthy fabrics, seed) -> assignment.
PlacementFn = Callable[
    [Sequence[PlacementRequest], Sequence[FabricInstance], int],
    Mapping[str, int],
]


@dataclass(frozen=True)
class PlacementSpec:
    """One registered placement strategy."""

    name: str
    description: str
    fn: PlacementFn


_PLACEMENTS: dict[str, PlacementSpec] = {}


def register_placement(name: str, *, description: str):
    """Decorator registering a placement strategy under ``name``.

    The decorated callable receives ``(tenants, fabrics, seed)`` where
    ``fabrics`` holds only healthy instances, and must return a
    ``{tenant_id: fabric_id}`` mapping covering every tenant.
    """
    if not name or any(c.isspace() for c in name):
        raise PlacementError(f"invalid placement name {name!r}")

    def decorate(fn: PlacementFn) -> PlacementFn:
        if name in _PLACEMENTS:
            raise PlacementError(
                f"placement {name!r} is already registered"
            )
        _PLACEMENTS[name] = PlacementSpec(
            name=name, description=description, fn=fn
        )
        return fn

    return decorate


def placement_names() -> list[str]:
    """All registered strategy names, sorted."""
    return sorted(_PLACEMENTS)


def get_placement(name: str) -> PlacementSpec:
    """The registered spec for ``name``; raises ``PlacementError`` with
    the known names on a miss."""
    try:
        return _PLACEMENTS[name]
    except KeyError:
        raise PlacementError(
            f"unknown placement {name!r} "
            f"(known: {', '.join(placement_names())})"
        )


def describe_placements() -> list[dict[str, str]]:
    """Name / description rows for the CLI listing."""
    return [
        {"name": spec.name, "description": spec.description}
        for spec in (_PLACEMENTS[name] for name in placement_names())
    ]


def place_tenants(name: str,
                  tenants: Sequence[PlacementRequest],
                  fabrics: Sequence[FabricInstance],
                  *, seed: int = 0) -> dict[str, int]:
    """Run strategy ``name`` over the healthy fabrics and validate the
    returned assignment (every tenant placed, only healthy fabrics
    used)."""
    spec = get_placement(name)
    seen: set[int] = set()
    for fabric in fabrics:
        if fabric.fabric_id in seen:
            raise PlacementError(
                f"duplicate fabric_id {fabric.fabric_id}"
            )
        seen.add(fabric.fabric_id)
    healthy = [f for f in fabrics if not f.failed]
    if tenants and not healthy:
        raise PlacementError(
            f"no healthy fabrics to place {len(tenants)} tenants on "
            f"({len(fabrics)} total, all failed)"
        )
    assignment = dict(spec.fn(tenants, healthy, seed))
    healthy_ids = {f.fabric_id for f in healthy}
    for tenant in tenants:
        fabric_id = assignment.get(tenant.tenant_id)
        if fabric_id is None:
            raise PlacementError(
                f"placement {name!r} left tenant "
                f"{tenant.tenant_id!r} unassigned"
            )
        if fabric_id not in healthy_ids:
            raise PlacementError(
                f"placement {name!r} assigned tenant "
                f"{tenant.tenant_id!r} to unavailable fabric "
                f"{fabric_id}"
            )
    return {t.tenant_id: assignment[t.tenant_id] for t in tenants}


# ---------------------------------------------------------------------------
# Built-in strategies


@register_placement(
    "random",
    description="uniform seeded choice among healthy fabrics (the "
                "baseline every other strategy must beat on balance)")
def _random(tenants: Sequence[PlacementRequest],
            fabrics: Sequence[FabricInstance],
            seed: int) -> dict[str, int]:
    rng = make_rng(seed)
    ids = [f.fabric_id for f in fabrics]
    picks = rng.integers(0, len(ids), size=len(tenants))
    return {
        t.tenant_id: ids[int(pick)]
        for t, pick in zip(tenants, picks)
    }


@register_placement(
    "load_balanced",
    description="greedy longest-processing-time: heaviest tenants "
                "first, each to the currently least-loaded fabric")
def _load_balanced(tenants: Sequence[PlacementRequest],
                   fabrics: Sequence[FabricInstance],
                   seed: int) -> dict[str, int]:
    load = {f.fabric_id: 0.0 for f in fabrics}
    order = sorted(tenants, key=lambda t: (-t.load_hint, t.tenant_id))
    assignment: dict[str, int] = {}
    for tenant in order:
        fabric_id = min(load, key=lambda fid: (load[fid], fid))
        assignment[tenant.tenant_id] = fabric_id
        load[fabric_id] += tenant.load_hint
    return assignment


@register_placement(
    "topology_aware",
    description="pack same-app tenants onto contiguous fabric spans "
                "(shared compiled artifacts, rack locality), balancing "
                "load within each span")
def _topology_aware(tenants: Sequence[PlacementRequest],
                    fabrics: Sequence[FabricInstance],
                    seed: int) -> dict[str, int]:
    # Fabrics sit on a row-major rack grid ordered by id: a contiguous
    # id span is a physically adjacent span. Give each app a span
    # proportional to its share of the predicted load (at least one
    # fabric), then balance greedily inside the span.
    ids = sorted(f.fabric_id for f in fabrics)
    by_app: dict[str, list[PlacementRequest]] = {}
    for tenant in tenants:
        by_app.setdefault(tenant.app, []).append(tenant)
    total_load = sum(t.load_hint for t in tenants) or 1.0
    assignment: dict[str, int] = {}
    cursor = 0
    apps = sorted(by_app)
    for pos, app in enumerate(apps):
        group = by_app[app]
        remaining_apps = len(apps) - pos
        remaining_fabrics = len(ids) - cursor
        if remaining_fabrics <= 0:
            # More apps than fabrics: the overflow apps balance over
            # the whole grid instead of a private span.
            span = ids
        else:
            share = sum(t.load_hint for t in group) / total_load
            width = max(1, round(share * len(ids)))
            # Never starve the apps still to come, never leave fabrics
            # idle after the last app.
            width = min(width, max(1, remaining_fabrics
                                   - (remaining_apps - 1)))
            if pos == len(apps) - 1:
                width = remaining_fabrics
            span = ids[cursor:cursor + width]
            cursor += width
        load = {fid: 0.0 for fid in span}
        for tenant in sorted(group,
                             key=lambda t: (-t.load_hint, t.tenant_id)):
            fabric_id = min(load, key=lambda fid: (load[fid], fid))
            assignment[tenant.tenant_id] = fabric_id
            load[fabric_id] += tenant.load_hint
    return assignment
