"""The multi-tenant fleet simulator.

``FleetSim`` multiplexes N tenants — each a registered traffic
scenario bound to an app and an arrival stream — across M fabric
instances:

1. **place** — the requested placement strategy assigns every tenant
   to a healthy fabric (:mod:`repro.fleet.placement`);
2. **compile** — one partition per distinct app, profiled from the
   first tenant running it; the mapping work fans out through the
   ``SweepExecutor`` inside :func:`partition_app` (``--jobs N`` is
   bit-identical to ``--jobs 1``, so the whole fleet report is too);
3. **simulate** — homogeneous tenant groups (same app, window, stream
   length and strategy) advance together through the tenant-major
   batched engine (:mod:`repro.fleet.engine`); strategies the batched
   engine cannot vectorize (DRIPS' fractional reshape penalties) fall
   back to sequential per-tenant fast-engine runs;
4. **account** — per-tenant summaries (p99 latency, energy,
   throughput) checked against each tenant's SLO, rolled up into
   per-fabric load/utilization and fleet-wide totals.

``FleetSim.run(batched=False)`` runs the per-tenant reference loop —
one sequential fast-engine simulation per tenant — and produces an
*identical* report (minus wall-clock ``stats``): the differential
suite and the CI bench gate pin this, which is what makes the batched
path trustworthy rather than merely fast.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import FleetError
from repro.fleet.engine import (
    BATCHABLE_STRATEGIES,
    simulate_group_batched,
)
from repro.fleet.placement import (
    FabricInstance,
    PlacementRequest,
    place_tenants,
)
from repro.power.model import DEFAULT_POWER_PARAMS, PowerParams
from repro.streaming.drips import fast_simulate_drips, fast_simulate_static
from repro.streaming.engine import StreamResult, fast_simulate_stream
from repro.streaming.envelopes import weighted_percentile
from repro.streaming.partitioner import (
    Partition,
    partition_app,
    streaming_cgra,
)
from repro.streaming.scenarios import make_scenario, scenario_names
from repro.streaming.workloads import take_inputs
from repro.utils.rng import derive_worker_seed

__all__ = [
    "FLEET_REPORT_SCHEMA",
    "FleetSim",
    "FleetSpec",
    "TenantSLO",
    "TenantSpec",
    "canonical_report",
    "render_fleet_summary",
    "synthesize_fleet",
    "write_report",
]

FLEET_REPORT_SCHEMA = 1

#: Tenant strategies the fleet knows how to run.
FLEET_STRATEGIES = ("iced", "static", "drips")

#: Default per-tenant stream length: one simulated day at 5-minute
#: arrival bins (matches the bundled ``trace_fleet`` arrival log).
DEFAULT_TENANT_INPUTS = 288


@dataclass(frozen=True)
class TenantSLO:
    """A tenant's service-level objective; ``None`` disables a term."""

    p99_latency_cycles: float | None = None
    energy_budget_uj: float | None = None


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a scenario instance plus its strategy and SLO."""

    tenant_id: str
    scenario: str
    seed: int | None = None
    inputs: int = DEFAULT_TENANT_INPUTS
    window: int = 10
    strategy: str = "iced"
    slo: TenantSLO | None = None


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet: tenants, fabrics, and how to place them."""

    tenants: Sequence[TenantSpec]
    fabrics: Sequence[FabricInstance]
    placement: str = "load_balanced"
    seed: int = 0


def synthesize_fleet(num_tenants: int, num_fabrics: int, *,
                     scenarios: Sequence[str] = ("enzyme", "diurnal",
                                                 "bursty", "trace_fleet"),
                     strategies: Sequence[str] = ("iced",),
                     inputs: int = DEFAULT_TENANT_INPUTS,
                     window: int = 10,
                     placement: str = "load_balanced",
                     seed: int = 0,
                     failed_fabrics: Sequence[int] = (),
                     slo: TenantSLO | None = None) -> FleetSpec:
    """A deterministic synthetic fleet: ``num_tenants`` tenants cycle
    the scenario and strategy mixes, each with its own derived seed
    (same convention as the sweep executor, so fleets are bit-stable
    across processes)."""
    if num_tenants < 1 or num_fabrics < 1:
        raise FleetError("need at least one tenant and one fabric")
    unknown = [s for s in strategies if s not in FLEET_STRATEGIES]
    if unknown:
        raise FleetError(
            f"unknown strategies {unknown} "
            f"(known: {', '.join(FLEET_STRATEGIES)})"
        )
    known = set(scenario_names())
    missing = [s for s in scenarios if s not in known]
    if missing:
        raise FleetError(
            f"unknown scenarios {missing} "
            f"(known: {', '.join(sorted(known))})"
        )
    failed = set(failed_fabrics)
    tenants = [
        TenantSpec(
            tenant_id=f"t{i:05d}",
            scenario=scenarios[i % len(scenarios)],
            seed=derive_worker_seed(seed, i),
            inputs=inputs,
            window=window,
            strategy=strategies[i % len(strategies)],
            slo=slo,
        )
        for i in range(num_tenants)
    ]
    fabrics = [
        FabricInstance(fabric_id=i, failed=i in failed)
        for i in range(num_fabrics)
    ]
    return FleetSpec(tenants=tenants, fabrics=fabrics,
                     placement=placement, seed=seed)


def _summarize(makespan: float, energy: float, inputs: int,
               num_windows: int, latencies: list[float],
               weights: list[float], frequency_mhz: float) -> dict:
    """Per-tenant summary, term-for-term the same arithmetic as
    ``envelopes.summarize_result`` so the batched and reference paths
    agree bitwise."""
    makespan_us = makespan / frequency_mhz
    return {
        "energy_uj": energy,
        "makespan_cycles": makespan,
        "inputs": inputs,
        "windows": num_windows,
        "throughput_inputs_per_kcycle":
            (1e3 * inputs / makespan) if makespan > 0 else 0.0,
        "p50_latency_cycles": weighted_percentile(latencies, weights, 0.50),
        "p99_latency_cycles": weighted_percentile(latencies, weights, 0.99),
        "average_power_mw":
            (energy * 1e3 / makespan_us) if makespan_us > 0 else 0.0,
    }


def _summarize_stream_result(result: StreamResult) -> dict:
    latencies = [w.duration_cycles / w.inputs for w in result.windows
                 if w.inputs > 0]
    weights = [w.inputs for w in result.windows if w.inputs > 0]
    return _summarize(result.makespan_cycles, result.total_energy_uj,
                      result.inputs, len(result.windows), latencies,
                      weights, result.frequency_mhz)


def _check_slo(summary: dict, slo: TenantSLO | None) -> dict | None:
    if slo is None:
        return None
    violations = []
    if (slo.p99_latency_cycles is not None
            and summary["p99_latency_cycles"] > slo.p99_latency_cycles):
        violations.append("p99_latency")
    if (slo.energy_budget_uj is not None
            and summary["energy_uj"] > slo.energy_budget_uj):
        violations.append("energy")
    return {
        "p99_latency_cycles": slo.p99_latency_cycles,
        "energy_budget_uj": slo.energy_budget_uj,
        "violations": violations,
    }


@dataclass
class _Tenant:
    """A tenant spec bound to its scenario instance and fabric."""

    spec: TenantSpec
    index: int
    app_name: str
    stream: object
    fabric_id: int = -1
    #: Feature blocks materialized once per run (the ``stream`` phase)
    #: and consumed by whichever engine path runs — so ``simulate_s``
    #: times engine work, not arrival-stream synthesis, and both paths
    #: see byte-identical inputs by construction.
    blocks: list = field(default_factory=list)


_SEQUENTIAL_RUNNERS = {
    "iced": fast_simulate_stream,
    "static": fast_simulate_static,
    "drips": fast_simulate_drips,
}


class FleetSim:
    """Simulate a fleet spec end to end; see the module docstring.

    Pass ``partitions`` (``{app_name: Partition}``) to skip the
    compile phase — the differential tests inject fake partitions the
    same way the envelope suite does.
    """

    def __init__(self, spec: FleetSpec,
                 params: PowerParams = DEFAULT_POWER_PARAMS,
                 partitions: dict[str, Partition] | None = None):
        if not spec.tenants:
            raise FleetError("fleet has no tenants")
        ids = [t.tenant_id for t in spec.tenants]
        if len(set(ids)) != len(ids):
            raise FleetError("duplicate tenant ids in fleet spec")
        for tenant in spec.tenants:
            if tenant.strategy not in FLEET_STRATEGIES:
                raise FleetError(
                    f"tenant {tenant.tenant_id!r}: unknown strategy "
                    f"{tenant.strategy!r} "
                    f"(known: {', '.join(FLEET_STRATEGIES)})"
                )
            if tenant.window < 1:
                raise FleetError(
                    f"tenant {tenant.tenant_id!r}: window must be >= 1"
                )
            if tenant.inputs < 1:
                raise FleetError(
                    f"tenant {tenant.tenant_id!r}: inputs must be >= 1"
                )
        self.spec = spec
        self.params = params
        self._injected = dict(partitions) if partitions else None

    # -- phases ----------------------------------------------------------

    def _bind(self) -> list[_Tenant]:
        tenants = []
        for index, spec in enumerate(self.spec.tenants):
            scenario = make_scenario(spec.scenario, seed=spec.seed,
                                     n=spec.inputs)
            tenants.append(_Tenant(
                spec=spec, index=index, app_name=scenario.app.name,
                stream=scenario.stream,
            ))
        return tenants

    def _materialize(self, tenants: list[_Tenant]) -> None:
        """Synthesize every tenant's arrival stream into feature
        blocks, once — both engine paths then consume the same lists,
        and the simulate phase times simulation, not stream synthesis.
        """
        with obs.span("fleet.streams", category="fleet",
                      tenants=len(tenants)):
            for tenant in tenants:
                tenant.blocks = list(tenant.stream.feature_blocks())

    def _place(self, tenants: list[_Tenant]) -> dict[str, int]:
        with obs.span("fleet.place", category="fleet",
                      placement=self.spec.placement,
                      tenants=len(tenants),
                      fabrics=len(self.spec.fabrics)):
            requests = [
                PlacementRequest(
                    tenant_id=t.spec.tenant_id, app=t.app_name,
                    load_hint=float(t.spec.inputs),
                )
                for t in tenants
            ]
            assignment = place_tenants(
                self.spec.placement, requests, self.spec.fabrics,
                seed=self.spec.seed,
            )
        for tenant in tenants:
            tenant.fabric_id = assignment[tenant.spec.tenant_id]
        return assignment

    def _compile(self, tenants: list[_Tenant], *, jobs: int,
                 use_cache: bool, cache_dir: str | Path | None,
                 ) -> dict[str, Partition]:
        partitions: dict[str, Partition] = {}
        with obs.span("fleet.compile", category="fleet", jobs=jobs):
            for tenant in tenants:
                name = tenant.app_name
                if name in partitions:
                    continue
                if self._injected is not None:
                    try:
                        partitions[name] = self._injected[name]
                        continue
                    except KeyError:
                        raise FleetError(
                            f"no injected partition for app {name!r}"
                        )
                scenario = make_scenario(
                    tenant.spec.scenario, seed=tenant.spec.seed,
                    n=tenant.spec.inputs,
                )
                profile = take_inputs(
                    scenario.feature_blocks(),
                    min(50, max(5, tenant.spec.inputs // 3)),
                )
                partitions[name] = partition_app(
                    scenario.app, streaming_cgra(), profile,
                    use_cache=use_cache, jobs=jobs,
                    cache_dir=cache_dir,
                )
        return partitions

    # -- simulation ------------------------------------------------------

    @staticmethod
    def _group_key(tenant: _Tenant):
        return (tenant.app_name, tenant.spec.window,
                tenant.spec.inputs, tenant.spec.strategy)

    def _simulate_batched(self, tenants: list[_Tenant],
                          partitions: dict[str, Partition],
                          ) -> tuple[dict[int, dict], int, int]:
        """Per-tenant summaries via the batched engine; returns
        ``(summaries by tenant index, batched groups, fallback runs)``.
        """
        groups: dict[tuple, list[_Tenant]] = {}
        for tenant in tenants:
            groups.setdefault(self._group_key(tenant), []).append(tenant)
        summaries: dict[int, dict] = {}
        num_batched = 0
        num_fallback = 0
        for key in sorted(groups):
            app_name, window, _inputs, strategy = key
            members = groups[key]
            partition = partitions[app_name]
            if strategy in BATCHABLE_STRATEGIES:
                num_batched += 1
                with obs.span("fleet.simulate_group", category="fleet",
                              app=app_name, strategy=strategy,
                              tenants=len(members)):
                    result = simulate_group_batched(
                        partition,
                        [t.blocks for t in members],
                        window, strategy=strategy, params=self.params,
                    )
                durations = result.end_cycles - result.start_cycles
                latencies = durations / result.window_inputs
                weights = result.window_inputs.tolist()
                nw = len(result.window_inputs)
                for t, tenant in enumerate(members):
                    summaries[tenant.index] = _summarize(
                        float(result.makespan_cycles[t]),
                        float(result.total_energy_uj[t]),
                        result.inputs, nw,
                        latencies[t].tolist(), weights,
                        result.frequency_mhz,
                    )
            else:
                num_fallback += len(members)
                runner = _SEQUENTIAL_RUNNERS[strategy]
                for tenant in members:
                    stream_result = runner(
                        partition, tenant.blocks,
                        window, self.params,
                    )
                    summaries[tenant.index] = (
                        _summarize_stream_result(stream_result)
                    )
        return summaries, num_batched, num_fallback

    def _simulate_reference(self, tenants: list[_Tenant],
                            partitions: dict[str, Partition],
                            ) -> dict[int, dict]:
        """The honest baseline: one sequential fast-engine run per
        tenant, in tenant order."""
        summaries: dict[int, dict] = {}
        for tenant in tenants:
            runner = _SEQUENTIAL_RUNNERS[tenant.spec.strategy]
            result = runner(
                partitions[tenant.app_name],
                tenant.blocks,
                tenant.spec.window, self.params,
            )
            summaries[tenant.index] = _summarize_stream_result(result)
        return summaries

    # -- the whole run ---------------------------------------------------

    def run(self, *, jobs: int = 1, use_cache: bool = True,
            cache_dir: str | Path | None = None,
            batched: bool = True) -> dict:
        """Simulate the fleet and return its canonical report dict.

        Everything outside the ``stats`` section is a deterministic
        function of the spec: independent of ``jobs``, of ``batched``
        (pinned by the differential suite) and of wall clock.
        """
        wall_start = time.perf_counter()
        registry = obs.metrics()
        tenants = self._bind()
        self._place(tenants)
        t_placed = time.perf_counter()
        self._materialize(tenants)
        t_streamed = time.perf_counter()
        partitions = self._compile(tenants, jobs=jobs,
                                   use_cache=use_cache,
                                   cache_dir=cache_dir)
        t_compiled = time.perf_counter()
        with obs.span("fleet.simulate", category="fleet",
                      tenants=len(tenants), batched=batched):
            if batched:
                summaries, num_batched, num_fallback = (
                    self._simulate_batched(tenants, partitions)
                )
            else:
                summaries = self._simulate_reference(tenants, partitions)
                num_batched, num_fallback = 0, len(tenants)
        t_simulated = time.perf_counter()

        tenant_rows: dict[str, dict] = {}
        fabric_rows: dict[str, dict] = {
            str(f.fabric_id): {
                "name": f.label,
                "failed": f.failed,
                "tenants": 0,
                "load_cycles": 0.0,
                "energy_uj": 0.0,
            }
            for f in self.spec.fabrics
        }
        total_inputs = 0
        total_windows = 0
        total_energy = 0.0
        violating = []
        total_violations = 0
        for tenant in tenants:
            summary = summaries[tenant.index]
            slo_row = _check_slo(summary, tenant.spec.slo)
            row = {
                "scenario": tenant.spec.scenario,
                "app": tenant.app_name,
                "strategy": tenant.spec.strategy,
                "fabric": tenant.fabric_id,
                **summary,
            }
            if slo_row is not None:
                row["slo"] = slo_row
                if slo_row["violations"]:
                    violating.append(tenant.spec.tenant_id)
                    total_violations += len(slo_row["violations"])
            tenant_rows[tenant.spec.tenant_id] = row
            fabric = fabric_rows[str(tenant.fabric_id)]
            fabric["tenants"] += 1
            fabric["load_cycles"] += summary["makespan_cycles"]
            fabric["energy_uj"] += summary["energy_uj"]
            total_inputs += summary["inputs"]
            total_windows += summary["windows"]
            total_energy += summary["energy_uj"]
        max_load = max(
            (row["load_cycles"] for row in fabric_rows.values()),
            default=0.0,
        )
        for row in fabric_rows.values():
            row["utilization"] = (
                row["load_cycles"] / max_load if max_load > 0 else 0.0
            )
        healthy = [f for f in self.spec.fabrics if not f.failed]
        utilizations = [
            fabric_rows[str(f.fabric_id)]["utilization"] for f in healthy
        ]
        wall_s = time.perf_counter() - wall_start
        registry.counter("fleet.tenants").inc(len(tenants))
        registry.counter("fleet.windows").inc(total_windows)
        registry.counter("fleet.slo_violations").inc(total_violations)
        if wall_s > 0:
            registry.gauge("fleet.inputs_per_sec").set(
                total_inputs / wall_s
            )
        return {
            "schema": FLEET_REPORT_SCHEMA,
            "placement": self.spec.placement,
            "seed": self.spec.seed,
            "num_tenants": len(tenants),
            "num_fabrics": len(self.spec.fabrics),
            "healthy_fabrics": len(healthy),
            "tenants": tenant_rows,
            "fabrics": fabric_rows,
            "rollup": {
                "total_inputs": total_inputs,
                "total_windows": total_windows,
                "total_energy_uj": total_energy,
                "max_fabric_load_cycles": max_load,
                "mean_utilization": (
                    float(np.mean(utilizations)) if utilizations else 0.0
                ),
                "slo_violations": total_violations,
                "violating_tenants": violating,
            },
            "stats": {
                "batched": batched,
                "batched_groups": num_batched,
                "fallback_runs": num_fallback,
                "place_s": round(t_placed - wall_start, 4),
                "stream_s": round(t_streamed - t_placed, 4),
                "compile_s": round(t_compiled - t_streamed, 4),
                "simulate_s": round(t_simulated - t_compiled, 4),
                "wall_s": round(wall_s, 4),
            },
        }


def canonical_report(report: dict) -> dict:
    """The report minus its volatile wall-clock section — the part
    that must be identical across ``jobs`` counts and engine paths."""
    return {k: v for k, v in report.items() if k != "stats"}


def write_report(report: dict, path: str | Path) -> None:
    """Canonical JSON (sorted keys, trailing newline)."""
    import json

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )


def render_fleet_summary(report: dict) -> str:
    """A terminal summary: rollup plus the per-fabric table."""
    rollup = report["rollup"]
    stats = report.get("stats", {})
    lines = [
        f"fleet: {report['num_tenants']} tenants on "
        f"{report['healthy_fabrics']}/{report['num_fabrics']} healthy "
        f"fabrics, placement={report['placement']}",
        f"  inputs {rollup['total_inputs']:,}  "
        f"energy {rollup['total_energy_uj'] / 1e3:.1f} mJ  "
        f"SLO violations {rollup['slo_violations']}",
    ]
    if stats:
        lines.append(
            f"  wall {stats.get('wall_s', 0):.2f}s "
            f"(compile {stats.get('compile_s', 0):.2f}s, "
            f"simulate {stats.get('simulate_s', 0):.2f}s; "
            f"{stats.get('batched_groups', 0)} batched groups, "
            f"{stats.get('fallback_runs', 0)} sequential runs)"
        )
    lines.append(f"  {'fabric':<12} {'tenants':>7} {'load cycles':>14} "
                 f"{'energy uJ':>12} {'util':>6}")
    for fid in sorted(report["fabrics"], key=int):
        row = report["fabrics"][fid]
        mark = " FAILED" if row["failed"] else ""
        lines.append(
            f"  {row['name']:<12} {row['tenants']:>7} "
            f"{row['load_cycles']:>14,.0f} {row['energy_uj']:>12,.1f} "
            f"{row['utilization']:>6.2f}{mark}"
        )
    return "\n".join(lines)
