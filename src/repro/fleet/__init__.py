"""Multi-tenant fleet simulation: thousands of streaming apps across
many CGRA fabrics, in one tenant-major batched pass.

Public surface:

* :class:`~repro.fleet.sim.FleetSim` / :class:`FleetSpec` /
  :class:`TenantSpec` / :class:`TenantSLO` — specify and run a fleet;
* :func:`synthesize_fleet` — deterministic synthetic fleets for the
  CLI and benchmarks;
* the placement registry (:func:`register_placement`,
  :func:`placement_names`, :func:`place_tenants`) with the built-in
  ``random`` / ``load_balanced`` / ``topology_aware`` strategies;
* the batched engine primitives (:func:`simulate_group_batched`,
  :func:`maxplus_scan_2d`) for anyone building other fleet-scale
  analyses.

See ``docs/fleet.md`` for the architecture and the float-identity
contract the differential suite pins.
"""

from repro.fleet.engine import (
    BatchedDVFS,
    BatchedGroupResult,
    maxplus_scan_2d,
    simulate_group_batched,
)
from repro.fleet.placement import (
    FabricInstance,
    PlacementRequest,
    PlacementSpec,
    describe_placements,
    get_placement,
    place_tenants,
    placement_names,
    register_placement,
)
from repro.fleet.sim import (
    FLEET_REPORT_SCHEMA,
    FleetSim,
    FleetSpec,
    TenantSLO,
    TenantSpec,
    canonical_report,
    render_fleet_summary,
    synthesize_fleet,
    write_report,
)

__all__ = [
    "BatchedDVFS",
    "BatchedGroupResult",
    "FLEET_REPORT_SCHEMA",
    "FabricInstance",
    "FleetSim",
    "FleetSpec",
    "PlacementRequest",
    "PlacementSpec",
    "TenantSLO",
    "TenantSpec",
    "canonical_report",
    "describe_placements",
    "get_placement",
    "maxplus_scan_2d",
    "place_tenants",
    "placement_names",
    "register_placement",
    "render_fleet_summary",
    "simulate_group_batched",
    "synthesize_fleet",
    "write_report",
]
