"""The benchmark kernel suite (Table I of the paper).

The paper's DFGs come out of LLVM 12 on specific C sources we do not
have; what Table I publishes is each kernel's graph statistics (nodes,
edges, RecMII) at unroll factors 1 and 2. This package synthesizes
DFGs that match those statistics *exactly* — same node/edge counts,
same recurrence-cycle structure, domain-flavoured opcode mixes, loads
and stores for the memory-column placement constraint — which is what
the mapping/DVFS experiments actually consume (DESIGN.md section 4).

Real, semantically meaningful kernels (executable end to end through
the frontend and interpreters) live in :mod:`repro.kernels.programs`;
they back the examples and functional tests.
"""

from repro.kernels.table1 import (
    KernelSpec,
    TABLE1_SPECS,
    STANDALONE_KERNELS,
    GCN_KERNELS,
    LU_KERNELS,
    kernel_spec,
)
from repro.kernels.synthesis import synthesize_dfg
from repro.kernels.suite import load_kernel, kernel_names
from repro.kernels.synthetic import fig1_kernel

__all__ = [
    "KernelSpec",
    "TABLE1_SPECS",
    "STANDALONE_KERNELS",
    "GCN_KERNELS",
    "LU_KERNELS",
    "kernel_spec",
    "synthesize_dfg",
    "load_kernel",
    "kernel_names",
    "fig1_kernel",
]
