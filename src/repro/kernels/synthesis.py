"""Deterministic DFG synthesis to target graph statistics.

``synthesize_dfg`` builds a dataflow graph with an exact node count,
edge count and RecMII. The construction mirrors how real kernels are
shaped:

* one *critical* recurrence chain of ``rec_mii`` nodes closed by a
  distance-1 back edge (the II-determining loop-carried dependence);
* where the budget allows, a second, shorter recurrence (at most half
  the critical length — the blue cycle of Fig 1, which Algorithm 1
  labels *relax*);
* LOAD sources (placement-constrained to the SPM column) feeding a
  DAG of domain-flavoured compute nodes into STORE sinks;
* remaining edge budget spent on extra forward dependences.

All dist-0 edges point forward in construction order, so the only
cycles are the two designed recurrences and RecMII is exact by
construction (and re-verified through the analysis module before the
graph is returned).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.dfg.analysis import dfg_stats
from repro.dfg.graph import DFG
from repro.dfg.ops import Opcode
from repro.errors import DFGError
from repro.utils.rng import make_rng

#: Domain-flavoured opcode mixes for 2-input compute nodes.
_BINOP_MIX = {
    "embedded": [Opcode.MUL, Opcode.ADD, Opcode.SUB, Opcode.SHL, Opcode.SHR],
    "ml": [Opcode.MUL, Opcode.ADD, Opcode.MAX, Opcode.ADD, Opcode.MUL],
    "hpc": [Opcode.MUL, Opcode.ADD, Opcode.SUB, Opcode.DIV, Opcode.ADD],
    "gcn": [Opcode.MUL, Opcode.ADD, Opcode.MAX, Opcode.ADD, Opcode.CMP],
    "lu": [Opcode.MUL, Opcode.SUB, Opcode.DIV, Opcode.ADD, Opcode.MUL],
}
_UNARY_MIX = [Opcode.MOV, Opcode.ABS, Opcode.NOT]

#: Max extra in-edges accepted per role (beyond the skeleton's wiring).
_ROLE_CAPACITY = {
    "load": 2, "phi": 4, "store": 3, "compute": 3, "cycle": 3,
}


def synthesize_dfg(name: str, nodes: int, edges: int, rec_mii: int,
                   domain: str = "ml", seed: int | None = None) -> DFG:
    """Build a DFG with exactly the requested statistics.

    Raises :class:`DFGError` when the combination is unsatisfiable
    (edge budget below the connectivity minimum or above the arity
    ceiling).
    """
    if domain not in _BINOP_MIX:
        raise DFGError(f"unknown domain {domain!r}")
    if nodes < rec_mii + 2:
        raise DFGError(f"{name}: need at least RecMII + 2 nodes")
    base_seed = seed if seed is not None else _stable_seed(name, nodes)
    plan = _plan(nodes, edges, rec_mii)

    # The random wiring can paint itself into an arity corner; retry
    # with derived seeds (still fully deterministic for a given name).
    last_error: Exception | None = None
    for attempt in range(64):
        rng = make_rng((base_seed + attempt * 7919) & 0x7FFFFFFF)
        dfg = DFG(name=name)
        try:
            _Wiring(dfg, rng).build(plan, domain)
        except DFGError as exc:
            last_error = exc
            continue
        stats = dfg_stats(dfg)
        if (stats.nodes, stats.edges, stats.rec_mii) != (
            nodes, edges, rec_mii
        ):
            last_error = DFGError(
                f"{name}: synthesis produced {stats}, wanted "
                f"({nodes}, {edges}, {rec_mii})"
            )
            continue
        dfg.validate()
        return dfg
    raise DFGError(f"{name}: synthesis failed after 64 seeds: {last_error}")


def _stable_seed(name: str, nodes: int) -> int:
    # zlib.crc32 is stable across processes; the builtin hash() is
    # salted per interpreter run and would make kernels irreproducible.
    return (zlib.crc32(name.encode()) ^ (nodes * 2654435761)) & 0x7FFFFFFF


class _Plan:
    """Node-budget split for one synthesis run."""

    def __init__(self, loads: int, computes: int, stores: int,
                 cycle_a: int, cycle_b: int, edges: int):
        self.loads = loads
        self.computes = computes
        self.stores = stores
        self.cycle_a = cycle_a
        self.cycle_b = cycle_b
        self.edges = edges


def _plan(nodes: int, edges: int, rec_mii: int) -> _Plan:
    loads = max(1, min(6, nodes // 6))
    stores = 1 if nodes < 25 else 2
    cycle_b = max(2, rec_mii // 2) if rec_mii >= 4 else 0
    computes = nodes - rec_mii - cycle_b - loads - stores
    if computes < 1 and cycle_b:
        cycle_b = 0
        computes = nodes - rec_mii - loads - stores
    while computes < 1 and loads > 1:
        loads -= 1
        computes += 1
    if computes < 0:
        raise DFGError("node budget too small for the requested RecMII")
    # Minimum edges: both cycles' internal chains + back edges, one
    # in-edge per compute/store/phi-head, one out-edge fixups come out
    # of the extra budget.
    minimum = (
        rec_mii + cycle_b + computes + stores
        + 1 + (1 if cycle_b else 0)
    )
    if edges < minimum:
        raise DFGError(
            f"edge budget {edges} below connectivity minimum {minimum}"
        )
    return _Plan(loads, computes, stores, rec_mii, cycle_b, edges)


class _Wiring:
    """Single-use helper that lays nodes out and wires the edge budget."""

    def __init__(self, dfg: DFG, rng: np.random.Generator):
        self.dfg = dfg
        self.rng = rng
        self.order: list[int] = []       # construction (topological) order
        self.role: dict[int, str] = {}
        self.in_deg: dict[int, int] = {}
        self.edge_set: set[tuple[int, int]] = set()

    # -- helpers ----------------------------------------------------------

    def _new(self, role: str, opcode: Opcode, name: str = "") -> int:
        node = self.dfg.add_node(opcode, name)
        self.order.append(node)
        self.role[node] = role
        self.in_deg[node] = 0
        return node

    def _connect(self, src: int, dst: int, dist: int = 0) -> bool:
        if (src, dst) in self.edge_set and dist == 0:
            return False
        self.dfg.add_edge(src, dst, dist=dist, port=self.in_deg[dst])
        self.edge_set.add((src, dst))
        self.in_deg[dst] += 1
        return True

    def _capacity(self, node: int) -> int:
        cap = _ROLE_CAPACITY[self.role[node]]
        if self.role[node] == "phi":
            cap = 3  # one slot stays reserved for the back edge
        return cap - self.in_deg[node]

    def _pick(self, pool: list[int]) -> int:
        return pool[int(self.rng.integers(0, len(pool)))]

    # -- construction --------------------------------------------------------

    def build(self, plan: _Plan, domain: str) -> None:
        for i in range(plan.loads):
            self._new("load", Opcode.LOAD, f"ld{i}")
        front = plan.computes // 2
        computes_a = [
            self._new("compute", Opcode.ADD, f"c{i}") for i in range(front)
        ]
        cycle_a = self._make_cycle(plan.cycle_a, "a")
        cycle_b = self._make_cycle(plan.cycle_b, "b") if plan.cycle_b else []
        computes_b = [
            self._new("compute", Opcode.ADD, f"c{front + i}")
            for i in range(plan.computes - front)
        ]
        stores = [
            self._new("store", Opcode.STORE, f"st{i}")
            for i in range(plan.stores)
        ]

        # Skeleton in-edges: every compute, store and cycle head pulls
        # from an earlier node — preferring producers that do not yet
        # feed anything, which keeps dangling values to a minimum.
        for node in computes_a + computes_b + stores:
            earlier = self.order[: self.order.index(node)]
            feeders = [n for n in earlier if self.role[n] != "store"]
            outless = [
                n for n in feeders if not self.dfg.out_edges(n)
                and (n, node) not in self.edge_set
            ]
            self._connect(self._pick(outless or feeders), node)
        for head in ([cycle_a[0]] + ([cycle_b[0]] if cycle_b else [])):
            earlier = self.order[: self.order.index(head)]
            feeders = [n for n in earlier if self.role[n] != "store"]
            if feeders:
                self._connect(self._pick(feeders), head)

        # Out-connectivity: every non-store node must feed something.
        self._fix_out_connectivity()

        # Spend the remaining edge budget on forward dependences.
        budget = plan.edges - self.dfg.num_edges
        if budget < 0:
            raise DFGError("edge budget overrun during skeleton wiring")
        self._add_extras(budget)

        self._assign_opcodes(domain)

    def _make_cycle(self, length: int, tag: str) -> list[int]:
        head = self._new("phi", Opcode.PHI, f"phi_{tag}")
        body = [
            self._new("cycle", Opcode.ADD, f"{tag}{i}")
            for i in range(1, length)
        ]
        chain = [head] + body
        for u, v in zip(chain, chain[1:]):
            self._connect(u, v)
        self.dfg.add_edge(chain[-1], head, dist=1, port=3)
        self.edge_set.add((chain[-1], head))
        return chain

    def _fix_out_connectivity(self) -> None:
        position = {n: i for i, n in enumerate(self.order)}
        has_out = {n: False for n in self.order}
        for edge in self.dfg.edges():
            has_out[edge.src] = True
        for node in self.order:
            if has_out[node] or self.role[node] == "store":
                continue
            targets = [
                t for t in self.order
                if position[t] > position[node] and self._capacity(t) > 0
                and (node, t) not in self.edge_set
            ]
            if not targets:
                raise DFGError("no arity left to connect a dangling node")
            # Prefer stores and phis: dangling values flow to sinks.
            sinks = [t for t in targets if self.role[t] in ("store", "phi")]
            self._connect(node, self._pick(sinks or targets))

    def _add_extras(self, budget: int) -> None:
        position = {n: i for i, n in enumerate(self.order)}
        attempts = 0
        while budget > 0:
            attempts += 1
            if attempts > 5000:
                raise DFGError("could not place the remaining edge budget")
            dst_pool = [n for n in self.order if self._capacity(n) > 0
                        and position[n] > 0]
            if not dst_pool:
                raise DFGError("no arity left for extra edges")
            dst = self._pick(dst_pool)
            src_pool = [
                n for n in self.order
                if position[n] < position[dst] and self.role[n] != "store"
                and (n, dst) not in self.edge_set
            ]
            if not src_pool:
                continue
            self._connect(self._pick(src_pool), dst)
            budget -= 1

    def _assign_opcodes(self, domain: str) -> None:
        """Rewrite placeholder opcodes to match final in-degrees."""
        binops = _BINOP_MIX[domain]
        replacements: dict[int, Opcode] = {}
        for node in self.order:
            role = self.role[node]
            if role in ("load", "phi", "store"):
                continue
            degree = self.in_deg[node]
            if degree <= 1:
                choice = _UNARY_MIX[int(self.rng.integers(0, len(_UNARY_MIX)))]
            elif degree == 2:
                choice = binops[int(self.rng.integers(0, len(binops)))]
            else:
                choice = Opcode.SELECT
            replacements[node] = choice
        # DFGNode is immutable; rebuild the node table in place.
        for node_id, opcode in replacements.items():
            old = self.dfg._nodes[node_id]
            self.dfg._nodes[node_id] = type(old)(old.id, opcode, old.name)
