"""Real, executable kernel programs (frontend AST form).

These back the examples and the functional tests: each program runs
both as an AST and as a lowered DFG, and the two must agree bit for
bit. They are deliberately small instances of the same computations as
the Table I suite — the synthesized suite matches the published graph
statistics, these match the published *semantics*.
"""

from __future__ import annotations

from repro.frontend.ast import (
    Accumulate,
    Assign,
    Bin,
    Cmp,
    Const,
    For,
    If,
    Kernel,
    Ref,
    Unary,
    Var,
)


def fir_program(n: int = 64, taps: int = 8) -> Kernel:
    """Finite impulse response filter: y[i] = sum_j x[i+j] * h[j]."""
    return Kernel(
        name="fir",
        arrays={"x": n + taps, "h": taps, "y": n},
        body=For("i", 0, n, [
            Assign(Var("acc"), Const(0.0)),
            For("j", 0, taps, [
                Accumulate(Var("acc"), "+",
                           Bin("*", Ref("x", Bin("+", Var("i"), Var("j"))),
                               Ref("h", Var("j")))),
            ]),
            Assign(Ref("y", Var("i")), Var("acc")),
        ]),
    )


def relu_program(n: int = 64) -> Kernel:
    """Rectified linear unit with explicit control flow (tests
    partial predication: the If lowers to SELECT)."""
    return Kernel(
        name="relu",
        arrays={"x": n, "y": n},
        body=For("i", 0, n, [
            Assign(Var("v"), Ref("x", Var("i"))),
            If(Cmp(">", Var("v"), Const(0.0)),
               then=[Assign(Ref("y", Var("i")), Var("v"))],
               orelse=[Assign(Ref("y", Var("i")), Const(0.0))]),
        ]),
    )


def mvt_program(n: int = 16) -> Kernel:
    """Matrix-vector product: y[i] = sum_j A[i*n+j] * x[j]."""
    return Kernel(
        name="mvt",
        arrays={"A": n * n, "x": n, "y": n},
        body=For("i", 0, n, [
            Assign(Var("acc"), Const(0.0)),
            For("j", 0, n, [
                Accumulate(Var("acc"), "+",
                           Bin("*",
                               Ref("A", Bin("+", Bin("*", Var("i"),
                                                     Const(n)), Var("j"))),
                               Ref("x", Var("j")))),
            ]),
            Assign(Ref("y", Var("i")), Var("acc")),
        ]),
    )


def conv1d_program(n: int = 32, k: int = 3) -> Kernel:
    """1-D convolution with an absolute-value activation."""
    return Kernel(
        name="conv1d",
        arrays={"x": n + k, "w": k, "y": n},
        body=For("i", 0, n, [
            Assign(Var("acc"), Const(0.0)),
            For("j", 0, k, [
                Accumulate(Var("acc"), "+",
                           Bin("*", Ref("x", Bin("+", Var("i"), Var("j"))),
                               Ref("w", Var("j")))),
            ]),
            Assign(Ref("y", Var("i")), Unary("abs", Var("acc"))),
        ]),
    )


def histogram_program(n: int = 128, bins: int = 8) -> Kernel:
    """Histogram: data-dependent store addresses (indirect access)."""
    return Kernel(
        name="histogram",
        arrays={"data": n, "hist": bins},
        body=For("i", 0, n, [
            Assign(Var("b"), Bin("%", Ref("data", Var("i")), Const(bins))),
            Assign(Ref("hist", Var("b")),
                   Bin("+", Ref("hist", Var("b")), Const(1.0))),
        ]),
    )


def dotprod_program(n: int = 64) -> Kernel:
    """Dot product — the smallest useful reduction."""
    return Kernel(
        name="dotprod",
        arrays={"a": n, "b": n, "out": 1},
        body=For("i", 0, n, [
            Accumulate(Var("acc"), "+",
                       Bin("*", Ref("a", Var("i")), Ref("b", Var("i")))),
            Assign(Ref("out", Const(0)), Var("acc")),
        ]),
    )


def spmv_program(rows: int = 8, nnz_per_row: int = 4) -> Kernel:
    """Sparse matrix-vector product in padded-CSR form.

    ``val``/``col`` hold ``nnz_per_row`` entries per row (zero-padded),
    so the indirect access pattern x[col[k]] — the load-feeding-a-load
    shape that makes spmv input-dependent — is exercised without
    variable trip counts.
    """
    nnz = rows * nnz_per_row
    return Kernel(
        name="spmv",
        arrays={"val": nnz, "col": nnz, "x": rows, "y": rows},
        body=For("i", 0, rows, [
            Assign(Var("acc"), Const(0.0)),
            For("k", 0, nnz_per_row, [
                Assign(Var("idx"),
                       Bin("+", Bin("*", Var("i"), Const(nnz_per_row)),
                           Var("k"))),
                Accumulate(Var("acc"), "+",
                           Bin("*", Ref("val", Var("idx")),
                               Ref("x", Ref("col", Var("idx"))))),
            ]),
            Assign(Ref("y", Var("i")), Var("acc")),
        ]),
    )


def dtw_band_program(n: int = 10) -> Kernel:
    """A diagonal-band dynamic-time-warping step.

    cost[i] = |a[i] - b[i]| + min(prev[i], prev[i+1]) — the min-of-
    neighbours recurrence that gives DTW kernels their loop-carried
    flavour, expressed over one anti-diagonal.
    """
    return Kernel(
        name="dtw_band",
        arrays={"a": n, "b": n, "prev": n + 1, "cost": n},
        body=For("i", 0, n, [
            Assign(Var("d"),
                   Unary("abs", Bin("-", Ref("a", Var("i")),
                                    Ref("b", Var("i"))))),
            Assign(Var("best"),
                   Bin("min", Ref("prev", Var("i")),
                       Ref("prev", Bin("+", Var("i"), Const(1))))),
            Assign(Ref("cost", Var("i")), Bin("+", Var("d"), Var("best"))),
        ]),
    )


def saxpy_program(n: int = 48) -> Kernel:
    """y = alpha * x + y with a loop-invariant scalar input."""
    return Kernel(
        name="saxpy",
        arrays={"x": n, "y": n},
        body=For("i", 0, n, [
            Assign(Ref("y", Var("i")),
                   Bin("+", Bin("*", Var("alpha"), Ref("x", Var("i"))),
                       Ref("y", Var("i")))),
        ]),
    )


ALL_PROGRAMS = {
    "fir": fir_program,
    "relu": relu_program,
    "mvt": mvt_program,
    "conv1d": conv1d_program,
    "histogram": histogram_program,
    "dotprod": dotprod_program,
    "spmv": spmv_program,
    "dtw_band": dtw_band_program,
}
