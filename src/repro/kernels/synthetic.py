"""The synthetic motivating kernel of Fig 1 / Fig 3.

Eleven operations: a four-node critical recurrence (n1, n4, n7, n9 —
green in the paper, RecMII 4), a two-node secondary recurrence (n10,
n11 — blue), a load that must sit on the SPM column (n5), and slack
operations (grey) including the multiplication n8 whose two inbound
data movements prevent tile0's frequency from dropping in Fig 3(b).
"""

from __future__ import annotations

from repro.dfg.builder import DFGBuilder
from repro.dfg.graph import DFG
from repro.dfg.ops import Opcode


def fig1_kernel() -> DFG:
    """Build the 11-node synthetic kernel of Fig 1."""
    b = DFGBuilder("fig1")
    # Critical recurrence: n1 -> n4 -> n7 -> n9 -(dist 1)-> n1.
    n1, n4, n7, n9 = b.recurrence(
        [Opcode.PHI, Opcode.ADD, Opcode.CMP, Opcode.SELECT],
        names=["n1", "n4", "n7", "n9"],
    )
    # Secondary recurrence: n10 -> n11 -(dist 1)-> n10.
    n10, n11 = b.recurrence(
        [Opcode.PHI, Opcode.ADD], names=["n10", "n11"],
    )
    # Grey slack operations. None of them may be a descendant of a
    # cycle that they feed back into, or the recurrence would lengthen.
    n5 = b.op(Opcode.LOAD, name="n5")
    n6 = b.op(Opcode.MOV, n5, name="n6")
    n8 = b.op(Opcode.MUL, n5, n6, name="n8")
    n2 = b.op(Opcode.MOV, n8, name="n2")
    n3 = b.op(Opcode.SHL, n2, name="n3")
    b.edge(n8, n10)
    b.edge(n3, n11)
    b.edge(n5, n4, port=1)
    b.edge(n6, n9, port=1)
    return b.build()
