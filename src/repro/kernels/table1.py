"""Table I: the published per-kernel graph statistics.

Each row records (nodes, edges, RecMII) at unroll factors 1 and 2, the
domain (which flavours the opcode mix), and the data-set size note from
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DFGError


@dataclass(frozen=True)
class KernelSpec:
    """One Table I row."""

    name: str
    domain: str
    data: str
    u1: tuple[int, int, int]  # (nodes, edges, RecMII) at unroll 1
    u2: tuple[int, int, int]  # (nodes, edges, RecMII) at unroll 2

    def stats(self, unroll: int) -> tuple[int, int, int]:
        if unroll == 1:
            return self.u1
        if unroll == 2:
            return self.u2
        raise DFGError(
            f"Table I only publishes unroll factors 1 and 2 for "
            f"{self.name!r}; use dfg.transforms.unroll for higher factors"
        )


#: The ten standalone kernels (embedded / ML / HPC domains).
STANDALONE_KERNELS = (
    "fir", "latnrm", "fft", "dtw",
    "spmv", "conv", "relu",
    "histogram", "mvt", "gemm",
)

#: The 2-layer GCN streaming application's unique kernels.
GCN_KERNELS = ("compress", "aggregate", "combine", "combrelu", "pooling")

#: The LU-decomposition streaming application's kernels.
LU_KERNELS = ("lu_init", "decompose", "solver0", "solver1", "invert",
              "determinant")

TABLE1_SPECS: dict[str, KernelSpec] = {
    spec.name: spec for spec in (
        # -- embedded domain -------------------------------------------------
        KernelSpec("fir", "embedded", "64",
                   (12, 16, 4), (20, 26, 4)),
        KernelSpec("latnrm", "embedded", "32",
                   (12, 16, 4), (19, 25, 4)),
        KernelSpec("fft", "embedded", "1024",
                   (42, 60, 4), (71, 100, 4)),
        KernelSpec("dtw", "embedded", "128^2",
                   (32, 49, 4), (51, 84, 4)),
        # -- machine learning ------------------------------------------------
        KernelSpec("spmv", "ml", "512",
                   (19, 24, 4), (37, 50, 7)),
        KernelSpec("conv", "ml", "32^2",
                   (17, 23, 4), (24, 34, 4)),
        KernelSpec("relu", "ml", "1024",
                   (14, 19, 4), (23, 32, 4)),
        # -- high performance computing ---------------------------------------
        KernelSpec("histogram", "hpc", "2048",
                   (15, 17, 4), (23, 26, 4)),
        KernelSpec("mvt", "hpc", "128^2",
                   (20, 29, 4), (37, 54, 4)),
        KernelSpec("gemm", "hpc", "128^2",
                   (17, 24, 4), (23, 37, 7)),
        # -- 2-layer GCN (ENZYMES, 600 graphs) ---------------------------------
        KernelSpec("compress", "gcn", "ENZYMES",
                   (24, 32, 4), (46, 65, 7)),
        KernelSpec("aggregate", "gcn", "ENZYMES",
                   (27, 34, 4), (53, 69, 7)),
        KernelSpec("combine", "gcn", "ENZYMES",
                   (26, 35, 4), (51, 71, 7)),
        KernelSpec("combrelu", "gcn", "ENZYMES",
                   (30, 42, 4), (59, 85, 7)),
        KernelSpec("pooling", "gcn", "ENZYMES",
                   (16, 21, 4), (31, 43, 7)),
        # -- LU decomposition (UF sparse collection, <=100x100) -----------------
        KernelSpec("lu_init", "lu", "150 matrices",
                   (11, 15, 4), (21, 32, 7)),
        KernelSpec("decompose", "lu", "150 matrices",
                   (15, 25, 4), (27, 50, 7)),
        KernelSpec("solver0", "lu", "150 matrices",
                   (33, 49, 8), (65, 98, 15)),
        KernelSpec("solver1", "lu", "150 matrices",
                   (35, 54, 12), (69, 108, 23)),
        KernelSpec("invert", "lu", "150 matrices",
                   (14, 22, 4), (24, 37, 4)),
        KernelSpec("determinant", "lu", "150 matrices",
                   (20, 36, 7), (38, 71, 13)),
    )
}


def kernel_spec(name: str) -> KernelSpec:
    try:
        return TABLE1_SPECS[name]
    except KeyError:
        raise DFGError(
            f"unknown kernel {name!r}; known: {sorted(TABLE1_SPECS)}"
        ) from None
