"""Loading Table I kernels by name and unroll factor.

Two registries live here. :func:`load_kernel` serves the *synthesized*
Table I suite — graphs matching the published statistics, with no
executable semantics. :func:`load_program` serves the *executable*
program suite (:data:`repro.kernels.programs.ALL_PROGRAMS`) — real
frontend ASTs whose reference interpretation, DFG interpretation and
mapped co-simulation must all agree (the differential tests).
"""

from __future__ import annotations

from repro.dfg.graph import DFG
from repro.dfg.transforms import unroll as unroll_transform
from repro.errors import DFGError
from repro.kernels.synthesis import synthesize_dfg
from repro.kernels.table1 import TABLE1_SPECS, kernel_spec


def kernel_names() -> list[str]:
    """All Table I kernel names."""
    return sorted(TABLE1_SPECS)


def executable_kernel_names() -> list[str]:
    """The kernels with real, executable semantics (frontend ASTs)."""
    from repro.kernels.programs import ALL_PROGRAMS

    return sorted(ALL_PROGRAMS)


def load_program(name: str, **sizes):
    """The executable program ``name``, optionally resized.

    ``sizes`` forwards to the program factory (e.g. ``n=10, taps=3``
    for ``fir``) so tests can shrink instances to simulation-friendly
    trip counts.
    """
    from repro.kernels.programs import ALL_PROGRAMS

    if name not in ALL_PROGRAMS:
        raise DFGError(
            f"no executable program {name!r} "
            f"(have: {', '.join(sorted(ALL_PROGRAMS))})"
        )
    return ALL_PROGRAMS[name](**sizes)


def load_kernel(name: str, unroll: int = 1) -> DFG:
    """The Table I kernel ``name`` at ``unroll``.

    Unroll factors 1 and 2 reproduce the published statistics exactly;
    higher factors apply the generic graph-level unrolling transform to
    the unroll-2 graph (Table I does not publish them).
    """
    spec = kernel_spec(name)
    if unroll < 1:
        raise DFGError("unroll factor must be >= 1")
    if unroll <= 2:
        n, e, r = spec.stats(unroll)
        dfg = synthesize_dfg(
            f"{name}_u{unroll}" if unroll > 1 else name,
            n, e, r, domain=spec.domain,
        )
        return dfg
    if unroll % 2:
        raise DFGError(
            "unroll factors above 2 must be even (they extend the "
            "published unroll-2 graph)"
        )
    base = load_kernel(name, 2)
    return unroll_transform(base, unroll // 2)
