"""Synthetic input streams with the published datasets' statistics.

The paper streams (a) the ENZYMES protein graphs through a 2-layer GCN
— 600 graphs, edge degree 2 to 126 with mean 32.6 — and (b) 150 sparse
matrices (within 100x100, from the UF collection) through an LU
pipeline. Neither dataset ships with this reproduction; these
generators produce streams with matched size/sparsity statistics, which
is all the experiment consumes: the bottleneck-shifting dynamics of
Fig 13 are driven purely by the *variance of per-input kernel
iteration counts* (DESIGN.md section 4).

Both generators expose two shapes of the **same** stream:

* :meth:`generate` — the whole stream as ``StreamInput`` objects
  (what the scalar reference engine and small experiments use);
* :meth:`feature_blocks` — the stream as lazily produced
  :class:`~repro.streaming.stage.FeatureBlock` chunks, holding
  O(block) memory regardless of stream length. A million-input run
  never materializes a million objects.

The two are value-identical input for input, for any block size —
pinned by tests. For the ENZYMES stream the block path is genuinely
vectorized: numpy fills broadcast-parameter draws in C order, one
variate per element, so ``lognormal(mean=(a, b), ..., size=(n, 2))``
consumes the bit stream exactly like the scalar loop's interleaved
per-input draws. The sparse-matrix stream interleaves ``integers``
(variable bit-stream consumption — Lemire rejection) with ``uniform``,
which has no batched equivalent on the same stream; its blocks are
produced by the scalar recurrence in chunks, still constant-memory.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.streaming.stage import (
    DEFAULT_BLOCK_SIZE,
    FeatureBlock,
    StreamInput,
    blocks_of,
    inputs_of,
)
from repro.utils.rng import make_rng

__all__ = [
    "EnzymeGraphStream",
    "SparseMatrixStream",
    "blocks_of",
    "inputs_of",
    "skip_blocks",
    "take_inputs",
]


def skip_blocks(blocks: Iterable[FeatureBlock],
                count: int) -> Iterator[FeatureBlock]:
    """Drop the first ``count`` inputs of a block stream (e.g. the
    profiling prefix a partitioner already consumed)."""
    remaining = count
    for block in blocks:
        if remaining <= 0:
            yield block
            continue
        n = len(block)
        if n <= remaining:
            remaining -= n
            continue
        yield FeatureBlock(
            {k: v[remaining:] for k, v in block.features.items()},
            start_index=block.start_index + remaining,
        )
        remaining = 0


def take_inputs(blocks: Iterable[FeatureBlock],
                count: int) -> list[StreamInput]:
    """Materialize the first ``count`` inputs of a block stream as
    ``StreamInput`` objects (profiling prefixes), consuming only the
    blocks it needs."""
    taken: list[StreamInput] = []
    for block in blocks:
        for row in block.rows():
            if len(taken) >= count:
                return taken
            taken.append(row)
    return taken


@dataclass
class EnzymeGraphStream:
    """ENZYMES-like graph stream for the GCN application.

    Node counts follow the dataset's spread (a few to ~125 nodes,
    mean ~33); per-graph average degree is drawn log-normally and
    clipped to the published 2..126 range, centred so the long-run mean
    degree lands near 32.6.
    """

    num_graphs: int = 150
    seed: int = 7

    def generate(self) -> list[StreamInput]:
        rng = make_rng(self.seed)
        inputs = []
        for i in range(self.num_graphs):
            n_nodes = int(np.clip(rng.lognormal(mean=3.4, sigma=0.45), 3, 126))
            degree = float(np.clip(rng.lognormal(mean=3.3, sigma=0.55), 2, 126))
            nnz = max(n_nodes, int(n_nodes * degree))
            inputs.append(StreamInput(i, {
                "n_nodes": float(n_nodes),
                "degree": degree,
                "nnz": float(nnz),
                "features": 16.0,
            }))
        return inputs

    def feature_blocks(self, block_size: int = DEFAULT_BLOCK_SIZE,
                       ) -> Iterator[FeatureBlock]:
        """The same stream as :meth:`generate`, vectorized and lazy.

        One broadcast lognormal draw per block: column 0 is the node
        draw, column 1 the degree draw, filled in C order — the exact
        interleaving the scalar loop consumes — so the values match
        :meth:`generate` bit for bit at any block size.
        """
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        rng = make_rng(self.seed)
        start = 0
        while start < self.num_graphs:
            n = min(block_size, self.num_graphs - start)
            draws = rng.lognormal(mean=(3.4, 3.3), sigma=(0.45, 0.55),
                                  size=(n, 2))
            n_nodes = np.clip(draws[:, 0], 3, 126).astype(np.int64)
            degree = np.clip(draws[:, 1], 2, 126)
            nnz = np.maximum(n_nodes, (n_nodes * degree).astype(np.int64))
            yield FeatureBlock({
                "n_nodes": n_nodes.astype(np.float64),
                "degree": degree,
                "nnz": nnz.astype(np.float64),
                "features": np.full(n, 16.0),
            }, start_index=start)
            start += n


@dataclass
class SparseMatrixStream:
    """UF-collection-like sparse matrix stream for the LU application.

    Matrix orders are uniform up to 100; densities are log-uniform so
    the stream mixes near-diagonal and fairly dense instances — the
    variance that shifts the LU pipeline's bottleneck between the
    solvers and the lighter stages.
    """

    num_matrices: int = 150
    max_order: int = 100
    seed: int = 11

    def generate(self) -> list[StreamInput]:
        rng = make_rng(self.seed)
        inputs = []
        for i in range(self.num_matrices):
            n = int(rng.integers(16, self.max_order + 1))
            density = float(np.exp(rng.uniform(np.log(0.02), np.log(0.35))))
            nnz = max(n, int(n * n * density))
            inputs.append(StreamInput(i, {
                "n": float(n),
                "density": density,
                "nnz": float(nnz),
            }))
        return inputs

    def feature_blocks(self, block_size: int = DEFAULT_BLOCK_SIZE,
                       ) -> Iterator[FeatureBlock]:
        """The same stream as :meth:`generate`, in O(block) memory.

        The per-input draws interleave ``integers`` (variable bit-
        stream consumption) with ``uniform``, so there is no batched
        draw on the same stream; blocks run the scalar recurrence in
        chunks instead — constant memory, identical values.
        """
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        rng = make_rng(self.seed)
        lo, hi = np.log(0.02), np.log(0.35)
        start = 0
        while start < self.num_matrices:
            count = min(block_size, self.num_matrices - start)
            ns = np.empty(count)
            densities = np.empty(count)
            nnzs = np.empty(count)
            for j in range(count):
                n = int(rng.integers(16, self.max_order + 1))
                density = float(np.exp(rng.uniform(lo, hi)))
                ns[j] = float(n)
                densities[j] = density
                nnzs[j] = float(max(n, int(n * n * density)))
            yield FeatureBlock({
                "n": ns, "density": densities, "nnz": nnzs,
            }, start_index=start)
            start += count
