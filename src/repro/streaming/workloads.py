"""Synthetic input streams with the published datasets' statistics.

The paper streams (a) the ENZYMES protein graphs through a 2-layer GCN
— 600 graphs, edge degree 2 to 126 with mean 32.6 — and (b) 150 sparse
matrices (within 100x100, from the UF collection) through an LU
pipeline. Neither dataset ships with this reproduction; these
generators produce streams with matched size/sparsity statistics, which
is all the experiment consumes: the bottleneck-shifting dynamics of
Fig 13 are driven purely by the *variance of per-input kernel
iteration counts* (DESIGN.md section 4).

Every generator derives from :class:`SegmentedWorkload` and exposes two
shapes of the **same** stream:

* :meth:`SegmentedWorkload.generate` — the whole stream as
  ``StreamInput`` objects (what the scalar reference engine and small
  experiments use);
* :meth:`SegmentedWorkload.feature_blocks` — the stream as lazily
  produced :class:`~repro.streaming.stage.FeatureBlock` chunks, holding
  O(block) memory regardless of stream length. A million-input run
  never materializes a million objects.

Seeding convention (the SweepExecutor one, see ``repro.utils.rng``):
the stream is cut into fixed :data:`SEGMENT_INPUTS`-input segments and
segment ``i`` draws from ``worker_rng(seed, i)`` — a ``SeedSequence``
spawn-key child of the parent seed. Segment content is therefore a
pure function of ``(seed, segment index)``:

* two streams built from the same seed are byte-equal, in the same
  process or across processes (no dependence on consumption order,
  object identity or hash randomization);
* ``feature_blocks(block_size)`` *re-chunks* the fixed segments, so
  every block size yields the same values — and ``generate()`` is
  defined as the flattened block stream, so the two shapes cannot
  drift apart;
* each segment is one batched numpy draw, so block production is
  vectorized for every generator (the old scalar-recurrence fallback
  for interleaved draws is gone).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.streaming.stage import (
    DEFAULT_BLOCK_SIZE,
    FeatureBlock,
    StreamInput,
    blocks_of,
    inputs_of,
)
from repro.utils.rng import worker_rng

__all__ = [
    "SEGMENT_INPUTS",
    "EnzymeGraphStream",
    "SegmentedWorkload",
    "SparseMatrixStream",
    "blocks_of",
    "inputs_of",
    "rechunk_blocks",
    "skip_blocks",
    "take_inputs",
]

#: Inputs per RNG segment. Fixed — independent of the block size a
#: consumer asks for — so the drawn values are addressed purely by
#: (seed, segment index). 4096 keeps per-segment numpy dispatch
#: negligible while holding well under a MB of column state.
SEGMENT_INPUTS = 4096


def skip_blocks(blocks: Iterable[FeatureBlock],
                count: int) -> Iterator[FeatureBlock]:
    """Drop the first ``count`` inputs of a block stream (e.g. the
    profiling prefix a partitioner already consumed)."""
    remaining = count
    for block in blocks:
        if remaining <= 0:
            yield block
            continue
        n = len(block)
        if n <= remaining:
            remaining -= n
            continue
        yield FeatureBlock(
            {k: v[remaining:] for k, v in block.features.items()},
            start_index=block.start_index + remaining,
        )
        remaining = 0


def take_inputs(blocks: Iterable[FeatureBlock],
                count: int) -> list[StreamInput]:
    """Materialize the first ``count`` inputs of a block stream as
    ``StreamInput`` objects (profiling prefixes), consuming only the
    blocks it needs."""
    taken: list[StreamInput] = []
    for block in blocks:
        for row in block.rows():
            if len(taken) >= count:
                return taken
            taken.append(row)
    return taken


def rechunk_blocks(segments: Iterable[dict[str, np.ndarray]],
                   block_size: int) -> Iterator[FeatureBlock]:
    """Re-chunk an iterable of equal-key feature-column dicts into
    ``block_size``-input :class:`FeatureBlock`s.

    Blocks are exactly ``block_size`` long except a final partial one;
    ``start_index`` counts the stream from 0. Column values pass
    through untouched, so the emitted stream is independent of how the
    producer segmented it.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    pending: dict[str, list[np.ndarray]] = {}
    buffered = 0
    emitted = 0
    for segment in segments:
        n = len(next(iter(segment.values()))) if segment else 0
        pos = 0
        while pos < n:
            take = min(block_size - buffered, n - pos)
            for key, column in segment.items():
                pending.setdefault(key, []).append(column[pos:pos + take])
            buffered += take
            pos += take
            if buffered == block_size:
                yield FeatureBlock(
                    {k: _cat(v) for k, v in pending.items()},
                    start_index=emitted,
                )
                emitted += buffered
                pending = {}
                buffered = 0
    if buffered:
        yield FeatureBlock({k: _cat(v) for k, v in pending.items()},
                           start_index=emitted)


def _cat(parts: list[np.ndarray]) -> np.ndarray:
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


class SegmentedWorkload:
    """Base class for segment-addressed synthetic streams.

    Subclasses provide ``num_inputs()`` and ``segment_features(rng,
    start, count)`` — one batched draw of ``count`` consecutive inputs
    beginning at absolute stream position ``start``, using ``rng``
    (already derived for that segment). Everything else — the fixed
    segmentation, re-chunking to arbitrary block sizes, and the scalar
    ``generate()`` shape — is shared.
    """

    #: Subclasses are dataclasses carrying their own ``seed`` field.
    seed: int

    def num_inputs(self) -> int:
        raise NotImplementedError

    def segment_features(self, rng: np.random.Generator, start: int,
                         count: int) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def _segments(self) -> Iterator[dict[str, np.ndarray]]:
        total = self.num_inputs()
        for index, start in enumerate(range(0, total, SEGMENT_INPUTS)):
            count = min(SEGMENT_INPUTS, total - start)
            yield self.segment_features(worker_rng(self.seed, index),
                                        start, count)

    def feature_blocks(self, block_size: int = DEFAULT_BLOCK_SIZE,
                       ) -> Iterator[FeatureBlock]:
        """The stream as lazy, constant-memory feature blocks.

        Values are identical for every ``block_size`` (blocks re-chunk
        the fixed segments) and equal to :meth:`generate` input for
        input.
        """
        return rechunk_blocks(self._segments(), block_size)

    def generate(self) -> list[StreamInput]:
        """The whole stream, materialized as ``StreamInput`` objects."""
        return inputs_of(self.feature_blocks())


@dataclass
class EnzymeGraphStream(SegmentedWorkload):
    """ENZYMES-like graph stream for the GCN application.

    Node counts follow the dataset's spread (a few to ~125 nodes,
    mean ~33); per-graph average degree is drawn log-normally and
    clipped to the published 2..126 range, centred so the long-run mean
    degree lands near 32.6.
    """

    num_graphs: int = 150
    seed: int = 7

    def num_inputs(self) -> int:
        return self.num_graphs

    def segment_features(self, rng: np.random.Generator, start: int,
                         count: int) -> dict[str, np.ndarray]:
        # One broadcast lognormal draw per segment: column 0 is the
        # node draw, column 1 the degree draw.
        draws = rng.lognormal(mean=(3.4, 3.3), sigma=(0.45, 0.55),
                              size=(count, 2))
        n_nodes = np.clip(draws[:, 0], 3, 126).astype(np.int64)
        degree = np.clip(draws[:, 1], 2, 126)
        nnz = np.maximum(n_nodes, (n_nodes * degree).astype(np.int64))
        return {
            "n_nodes": n_nodes.astype(np.float64),
            "degree": degree,
            "nnz": nnz.astype(np.float64),
            "features": np.full(count, 16.0),
        }


@dataclass
class SparseMatrixStream(SegmentedWorkload):
    """UF-collection-like sparse matrix stream for the LU application.

    Matrix orders are uniform up to 100; densities are log-uniform so
    the stream mixes near-diagonal and fairly dense instances — the
    variance that shifts the LU pipeline's bottleneck between the
    solvers and the lighter stages.
    """

    num_matrices: int = 150
    max_order: int = 100
    seed: int = 11

    def num_inputs(self) -> int:
        return self.num_matrices

    def segment_features(self, rng: np.random.Generator, start: int,
                         count: int) -> dict[str, np.ndarray]:
        n = rng.integers(16, self.max_order + 1, size=count)
        density = np.exp(
            rng.uniform(np.log(0.02), np.log(0.35), size=count)
        )
        nnz = np.maximum(n, (n * n * density).astype(np.int64))
        return {
            "n": n.astype(np.float64),
            "density": density,
            "nnz": nnz.astype(np.float64),
        }
