"""Synthetic input streams with the published datasets' statistics.

The paper streams (a) the ENZYMES protein graphs through a 2-layer GCN
— 600 graphs, edge degree 2 to 126 with mean 32.6 — and (b) 150 sparse
matrices (within 100x100, from the UF collection) through an LU
pipeline. Neither dataset ships with this reproduction; these
generators produce streams with matched size/sparsity statistics, which
is all the experiment consumes: the bottleneck-shifting dynamics of
Fig 13 are driven purely by the *variance of per-input kernel
iteration counts* (DESIGN.md section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streaming.stage import StreamInput
from repro.utils.rng import make_rng


@dataclass
class EnzymeGraphStream:
    """ENZYMES-like graph stream for the GCN application.

    Node counts follow the dataset's spread (a few to ~125 nodes,
    mean ~33); per-graph average degree is drawn log-normally and
    clipped to the published 2..126 range, centred so the long-run mean
    degree lands near 32.6.
    """

    num_graphs: int = 150
    seed: int = 7

    def generate(self) -> list[StreamInput]:
        rng = make_rng(self.seed)
        inputs = []
        for i in range(self.num_graphs):
            n_nodes = int(np.clip(rng.lognormal(mean=3.4, sigma=0.45), 3, 126))
            degree = float(np.clip(rng.lognormal(mean=3.3, sigma=0.55), 2, 126))
            nnz = max(n_nodes, int(n_nodes * degree))
            inputs.append(StreamInput(i, {
                "n_nodes": float(n_nodes),
                "degree": degree,
                "nnz": float(nnz),
                "features": 16.0,
            }))
        return inputs


@dataclass
class SparseMatrixStream:
    """UF-collection-like sparse matrix stream for the LU application.

    Matrix orders are uniform up to 100; densities are log-uniform so
    the stream mixes near-diagonal and fairly dense instances — the
    variance that shifts the LU pipeline's bottleneck between the
    solvers and the lighter stages.
    """

    num_matrices: int = 150
    max_order: int = 100
    seed: int = 11

    def generate(self) -> list[StreamInput]:
        rng = make_rng(self.seed)
        inputs = []
        for i in range(self.num_matrices):
            n = int(rng.integers(16, self.max_order + 1))
            density = float(np.exp(rng.uniform(np.log(0.02), np.log(0.35))))
            nnz = max(n, int(n * n * density))
            inputs.append(StreamInput(i, {
                "n": float(n),
                "density": density,
                "nnz": float(nnz),
            }))
        return inputs
