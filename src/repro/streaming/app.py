"""The evaluated streaming applications: a 2-layer GCN, LU, and a
control-flow-heavy pipeline (``branchy_app``) for the scenario library.

Stage graphs follow the paper (Table I's island column and section V):

* **GCN inference** — 5 unique kernels, ``aggregate`` instantiated
  twice (one per layer): compress -> aggregate -> combine ->
  aggregate -> combrelu -> pooling, preferring 1+2+1+2+2+1 = 9
  islands on the 6x6 prototype. compress and aggregate scale with the
  input graph's non-zeros; combine/combrelu/pooling with its node
  count — so sparse graphs bottleneck on combine, dense ones on the
  aggregates, and the bottleneck shifts per input.
* **LU decomposition** — 6 kernels in 4 pipeline stages (the two
  solvers run in parallel, as do invert/determinant):
  init -> decompose -> (solver0 | solver1) -> (invert | determinant),
  preferring 1+1+(2+2)+(1+2) = 9 islands.

Iteration models are written as pure feature arithmetic (``item.get``
plus ``*``/``+``), so the same lambda evaluates one
:class:`~repro.streaming.stage.StreamInput` *or* a whole
:class:`~repro.streaming.stage.FeatureBlock` — truncation to an
iteration count happens once, in ``KernelStage.iterations``. The only
exception is solver0's ``** 1.5``: numpy's vectorized pow rounds
differently than libm's, so its batch model runs libm pow per element
to stay bit-identical with the scalar engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.suite import load_kernel
from repro.streaming.stage import KernelStage


@dataclass
class StreamingApp:
    """A pipeline of stages; each stage is one or more parallel kernels."""

    name: str
    stages: list[list[KernelStage]] = field(default_factory=list)

    def all_kernels(self) -> list[KernelStage]:
        return [k for stage in self.stages for k in stage]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def preferred_islands(self) -> int:
        return sum(k.preferred_islands for k in self.all_kernels())

    def __repr__(self) -> str:
        shape = " -> ".join(
            "|".join(k.name for k in stage) for stage in self.stages
        )
        return f"StreamingApp({self.name}: {shape})"


def _stage(name: str, model, islands: int, unroll: int = 1,
           instance: str = "", batch_model=None,
           alias: str = "") -> KernelStage:
    dfg = load_kernel(name, unroll)
    if alias:
        dfg = dfg.copy(name=alias)
    elif instance:
        dfg = dfg.copy(name=f"{name}.{instance}")
    return KernelStage(
        name=dfg.name, dfg=dfg, iteration_model=model,
        preferred_islands=islands,
        # Feature-arithmetic models vectorize as themselves unless a
        # bit-exact twin is supplied explicitly.
        batch_model=batch_model if batch_model is not None else model,
    )


def gcn_app(unroll: int = 1) -> StreamingApp:
    """The 2-layer GCN inference pipeline over graph inputs."""
    def by_nnz(scale: float):
        return lambda item: scale * item.get("nnz")

    def by_nodes(scale: float):
        return lambda item: scale * item.get("n_nodes") * item.get("features")

    return StreamingApp(name="gcn", stages=[
        [_stage("compress", by_nnz(1.0), 1, unroll)],
        [_stage("aggregate", by_nnz(2.0), 2, unroll, instance="l1")],
        [_stage("combine", by_nodes(2.0), 1, unroll)],
        [_stage("aggregate", by_nnz(2.0), 2, unroll, instance="l2")],
        [_stage("combrelu", by_nodes(1.5), 2, unroll)],
        [_stage("pooling", lambda item: item.get("n_nodes"), 1, unroll)],
    ])


def _solver0_model(item):
    return item.get("n") ** 1.5 * 0.9


def _solver0_batch(block):
    # libm pow per element: python's ``**`` and numpy's vectorized pow
    # disagree in the last ulp, and bit-identity with the scalar
    # engine matters more here than one vectorized op.
    n = block.get("n")
    return np.array([v ** 1.5 for v in n.tolist()], dtype=np.float64) * 0.9


def _predicated_model(item):
    # If-converted nested conditional under *partial predication*: the
    # fabric executes both branch arms every outer iteration and
    # selects, so the per-iteration cost is the max of the arm trip
    # counts (heavy arm scales with the input's nesting depth, light
    # arm is constant).
    return item.get("outer") * max(item.get("depth") * 4.0, 6.0)


def _predicated_batch(block):
    # np.maximum is an exact elementwise float64 select — bit-identical
    # to the scalar max() per row (no NaNs in these features).
    return block.get("outer") * np.maximum(block.get("depth") * 4.0, 6.0)


def branchy_app(unroll: int = 1) -> StreamingApp:
    """A control-flow-heavy pipeline stressing partial predication.

    Models the MLIR control-flow CGRA workload class (PAPERS.md):
    kernels whose per-input work is dominated by nested conditionals
    and irregular loops rather than dense array arithmetic. Inputs
    carry three features — ``outer`` (outer-loop trip count), ``taken``
    (fraction of iterations taking the heavy branch) and ``depth``
    (data-dependent inner nesting) — and the four kernels translate
    them differently:

    * ``cond_scan`` — if-converted conditional, both arms execute
      (partial predication): cost is the *max* of the arm trip counts;
    * ``branch_mix`` — branch-skipping form of the same conditional:
      only the taken fraction pays the heavy arm;
    * ``irregular`` — triangular inner loop (trip count grows with the
      iteration index), the classic irregular-loop iteration model;
    * ``merge`` — a regular tail stage.

    The split between ``cond_scan`` (predication pays for rarely-taken
    branches) and ``branch_mix`` (skipping pays for frequently-taken
    ones) is what shifts the bottleneck with ``taken`` — the
    control-flow analogue of the GCN's sparse/dense shift.
    """
    return StreamingApp(name="branchy", stages=[
        [_stage("fir", _predicated_model, 1, unroll, alias="cond_scan",
                batch_model=_predicated_batch)],
        [
            _stage("relu",
                   lambda x: x.get("outer") * (1.0 + 7.0 * x.get("taken")),
                   2, unroll, alias="branch_mix"),
            _stage("histogram",
                   lambda x: x.get("outer") * (x.get("depth") + 1.0)
                   * x.get("depth") * 0.5,
                   2, unroll, alias="irregular"),
        ],
        [_stage("pooling", lambda x: x.get("outer") * 2.0, 1, unroll,
                alias="merge")],
    ])


def lu_app(unroll: int = 1) -> StreamingApp:
    """The synthesized LU-decomposition pipeline over sparse matrices."""
    return StreamingApp(name="lu", stages=[
        [_stage("lu_init", lambda x: x.get("n") * 4, 1, unroll)],
        [_stage("decompose", lambda x: x.get("nnz") * 0.8, 1, unroll)],
        [
            _stage("solver0", _solver0_model, 2, unroll,
                   batch_model=_solver0_batch),
            _stage("solver1",
                   lambda x: x.get("nnz") * 0.35 + x.get("n"), 2,
                   unroll),
        ],
        [
            _stage("invert", lambda x: x.get("n") * 3, 1, unroll),
            _stage("determinant", lambda x: x.get("n") * 2.5, 2,
                   unroll),
        ],
    ])
