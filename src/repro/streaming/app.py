"""The two evaluated streaming applications: a 2-layer GCN and LU.

Stage graphs follow the paper (Table I's island column and section V):

* **GCN inference** — 5 unique kernels, ``aggregate`` instantiated
  twice (one per layer): compress -> aggregate -> combine ->
  aggregate -> combrelu -> pooling, preferring 1+2+1+2+2+1 = 9
  islands on the 6x6 prototype. compress and aggregate scale with the
  input graph's non-zeros; combine/combrelu/pooling with its node
  count — so sparse graphs bottleneck on combine, dense ones on the
  aggregates, and the bottleneck shifts per input.
* **LU decomposition** — 6 kernels in 4 pipeline stages (the two
  solvers run in parallel, as do invert/determinant):
  init -> decompose -> (solver0 | solver1) -> (invert | determinant),
  preferring 1+1+(2+2)+(1+2) = 9 islands.

Iteration models are written as pure feature arithmetic (``item.get``
plus ``*``/``+``), so the same lambda evaluates one
:class:`~repro.streaming.stage.StreamInput` *or* a whole
:class:`~repro.streaming.stage.FeatureBlock` — truncation to an
iteration count happens once, in ``KernelStage.iterations``. The only
exception is solver0's ``** 1.5``: numpy's vectorized pow rounds
differently than libm's, so its batch model runs libm pow per element
to stay bit-identical with the scalar engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.suite import load_kernel
from repro.streaming.stage import KernelStage


@dataclass
class StreamingApp:
    """A pipeline of stages; each stage is one or more parallel kernels."""

    name: str
    stages: list[list[KernelStage]] = field(default_factory=list)

    def all_kernels(self) -> list[KernelStage]:
        return [k for stage in self.stages for k in stage]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def preferred_islands(self) -> int:
        return sum(k.preferred_islands for k in self.all_kernels())

    def __repr__(self) -> str:
        shape = " -> ".join(
            "|".join(k.name for k in stage) for stage in self.stages
        )
        return f"StreamingApp({self.name}: {shape})"


def _stage(name: str, model, islands: int, unroll: int = 1,
           instance: str = "", batch_model=None) -> KernelStage:
    dfg = load_kernel(name, unroll)
    if instance:
        dfg = dfg.copy(name=f"{name}.{instance}")
    return KernelStage(
        name=dfg.name, dfg=dfg, iteration_model=model,
        preferred_islands=islands,
        # Feature-arithmetic models vectorize as themselves unless a
        # bit-exact twin is supplied explicitly.
        batch_model=batch_model if batch_model is not None else model,
    )


def gcn_app(unroll: int = 1) -> StreamingApp:
    """The 2-layer GCN inference pipeline over graph inputs."""
    def by_nnz(scale: float):
        return lambda item: scale * item.get("nnz")

    def by_nodes(scale: float):
        return lambda item: scale * item.get("n_nodes") * item.get("features")

    return StreamingApp(name="gcn", stages=[
        [_stage("compress", by_nnz(1.0), 1, unroll)],
        [_stage("aggregate", by_nnz(2.0), 2, unroll, instance="l1")],
        [_stage("combine", by_nodes(2.0), 1, unroll)],
        [_stage("aggregate", by_nnz(2.0), 2, unroll, instance="l2")],
        [_stage("combrelu", by_nodes(1.5), 2, unroll)],
        [_stage("pooling", lambda item: item.get("n_nodes"), 1, unroll)],
    ])


def _solver0_model(item):
    return item.get("n") ** 1.5 * 0.9


def _solver0_batch(block):
    # libm pow per element: python's ``**`` and numpy's vectorized pow
    # disagree in the last ulp, and bit-identity with the scalar
    # engine matters more here than one vectorized op.
    n = block.get("n")
    return np.array([v ** 1.5 for v in n.tolist()], dtype=np.float64) * 0.9


def lu_app(unroll: int = 1) -> StreamingApp:
    """The synthesized LU-decomposition pipeline over sparse matrices."""
    return StreamingApp(name="lu", stages=[
        [_stage("lu_init", lambda x: x.get("n") * 4, 1, unroll)],
        [_stage("decompose", lambda x: x.get("nnz") * 0.8, 1, unroll)],
        [
            _stage("solver0", _solver0_model, 2, unroll,
                   batch_model=_solver0_batch),
            _stage("solver1",
                   lambda x: x.get("nnz") * 0.35 + x.get("n"), 2,
                   unroll),
        ],
        [
            _stage("invert", lambda x: x.get("n") * 3, 1, unroll),
            _stage("determinant", lambda x: x.get("n") * 2.5, 2,
                   unroll),
        ],
    ])
