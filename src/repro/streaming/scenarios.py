"""The traffic-scenario library: named workload regimes for streaming.

ICED's claim is that DVFS-aware acceleration beats DRIPS-style
re-shaping and static clocking *across workload regimes*, not on one
lognormal arrival process. This registry turns "regime" into a named,
seedable object:

    from repro.streaming.scenarios import make_scenario, scenario_names

    scenario = make_scenario("bursty", seed=3, n=10_000)
    scenario.app               # the StreamingApp its features drive
    scenario.feature_blocks()  # lazy FeatureBlocks for the fast engine
    scenario.generate()        # the same stream for the scalar engine

Every scenario pairs a stream generator with the application whose
iteration models consume its features, so one ``FeatureBlock`` stream
drives both simulation engines unchanged — the fast-vs-reference
float-identity contract (``docs/streaming_runtime.md``) extends to
every registered scenario and is pinned by the differential suite.

Generators follow the segment-addressed seeding convention of
:class:`~repro.streaming.workloads.SegmentedWorkload`: values are a
pure function of ``(seed, segment index)``, so same-seed streams are
byte-equal across processes and block-size choices. The CSV replay
scenario is deterministic and ignores its seed (a replay *is* its
trace).

``repro.streaming.envelopes`` runs every scenario through every DVFS
strategy and gates the results against committed golden envelopes —
see ``docs/streaming_scenarios.md`` for the schema and for how to add
a scenario.
"""

from __future__ import annotations

import csv
import math
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ScenarioError, TraceFormatError
from repro.streaming.app import StreamingApp, branchy_app, gcn_app, lu_app
from repro.streaming.stage import (
    DEFAULT_BLOCK_SIZE,
    FeatureBlock,
    StreamInput,
    inputs_of,
)
from repro.streaming.workloads import (
    EnzymeGraphStream,
    SegmentedWorkload,
    SparseMatrixStream,
    rechunk_blocks,
)

__all__ = [
    "DEFAULT_SCENARIO_INPUTS",
    "FLEET_TRACE_PATH",
    "BranchyStream",
    "DiurnalStream",
    "ParetoBurstStream",
    "PhaseShiftStream",
    "Scenario",
    "ScenarioSpec",
    "TraceReplayStream",
    "describe_scenarios",
    "get_scenario",
    "make_scenario",
    "register_scenario",
    "scenario_names",
]

#: Default stream length for ``make_scenario`` (the ENZYMES dataset's
#: 600 graphs).
DEFAULT_SCENARIO_INPUTS = 600

#: The bundled sample trace the ``trace_replay`` scenario cycles.
DEFAULT_TRACE_PATH = Path(__file__).parent / "traces" / "enzyme_sample.csv"

#: One simulated day of real-shaped arrivals (5-minute bins: diurnal
#: curve, lunch dip, evening peak, two flash-crowd incidents) — the
#: ``trace_fleet`` scenario and the fleet simulator's default stream.
FLEET_TRACE_PATH = Path(__file__).parent / "traces" / "fleet_arrivals.csv"


# ---------------------------------------------------------------------------
# Scenario streams


@dataclass
class DiurnalStream(SegmentedWorkload):
    """A diurnal load curve over ENZYMES-like graph arrivals.

    Per-input size draws are modulated by a sinusoidal day curve of
    ``period`` inputs: graphs near the peak are ``1 + amplitude`` times
    heavier than the long-run mean, graphs in the trough
    ``1 - amplitude`` times lighter. The modulation is a pure function
    of the absolute input index, so it survives re-chunking.
    """

    num_inputs_: int = DEFAULT_SCENARIO_INPUTS
    seed: int = 7
    period: int = 288
    amplitude: float = 0.6

    def num_inputs(self) -> int:
        return self.num_inputs_

    def segment_features(self, rng: np.random.Generator, start: int,
                         count: int) -> dict[str, np.ndarray]:
        draws = rng.lognormal(mean=(3.4, 3.3), sigma=(0.45, 0.55),
                              size=(count, 2))
        index = np.arange(start, start + count, dtype=np.float64)
        load = 1.0 + self.amplitude * np.sin(
            2.0 * math.pi * index / self.period
        )
        n_nodes = np.clip(draws[:, 0] * load, 3, 126).astype(np.int64)
        degree = np.clip(draws[:, 1] * load, 2, 126)
        nnz = np.maximum(n_nodes, (n_nodes * degree).astype(np.int64))
        return {
            "n_nodes": n_nodes.astype(np.float64),
            "degree": degree,
            "nnz": nnz.astype(np.float64),
            "features": np.full(count, 16.0),
        }


@dataclass
class ParetoBurstStream(SegmentedWorkload):
    """Bursty, heavy-tailed graph arrivals (Pareto degree tail).

    Degrees follow ``2 + 4 * Pareto(alpha)`` clipped to the published
    2..126 range: most inputs are light, but the tail produces rare
    graphs hundreds of times denser than the median — the regime where
    a window-reactive controller is most easily whipsawed.
    """

    num_inputs_: int = DEFAULT_SCENARIO_INPUTS
    seed: int = 7
    alpha: float = 1.3

    def num_inputs(self) -> int:
        return self.num_inputs_

    def segment_features(self, rng: np.random.Generator, start: int,
                         count: int) -> dict[str, np.ndarray]:
        node_draw = rng.lognormal(mean=3.4, sigma=0.45, size=count)
        tail = rng.pareto(self.alpha, size=count)
        n_nodes = np.clip(node_draw, 3, 126).astype(np.int64)
        degree = np.clip(2.0 + 4.0 * tail, 2, 126)
        nnz = np.maximum(n_nodes, (n_nodes * degree).astype(np.int64))
        return {
            "n_nodes": n_nodes.astype(np.float64),
            "degree": degree,
            "nnz": nnz.astype(np.float64),
            "features": np.full(count, 16.0),
        }


@dataclass
class PhaseShiftStream(SegmentedWorkload):
    """Adversarial bottleneck-shifting phase schedule.

    Alternates ``phase_len``-input phases of *dense-small* graphs (few
    nodes, high degree — the aggregates bottleneck) and *sparse-large*
    graphs (many nodes, low degree — combine/combrelu bottleneck). The
    schedule is the worst case for a window-reactive controller: every
    phase boundary invalidates the levels the previous window chose.
    """

    num_inputs_: int = DEFAULT_SCENARIO_INPUTS
    seed: int = 7
    phase_len: int = 40

    def num_inputs(self) -> int:
        return self.num_inputs_

    def segment_features(self, rng: np.random.Generator, start: int,
                         count: int) -> dict[str, np.ndarray]:
        z = rng.standard_normal(size=(count, 2))
        index = np.arange(start, start + count)
        dense_phase = (index // self.phase_len) % 2 == 0
        node_mean = np.where(dense_phase, 2.9, 4.2)
        degree_mean = np.where(dense_phase, 4.1, 1.3)
        n_nodes = np.clip(
            np.exp(node_mean + 0.35 * z[:, 0]), 3, 126
        ).astype(np.int64)
        degree = np.clip(np.exp(degree_mean + 0.4 * z[:, 1]), 2, 126)
        nnz = np.maximum(n_nodes, (n_nodes * degree).astype(np.int64))
        return {
            "n_nodes": n_nodes.astype(np.float64),
            "degree": degree,
            "nnz": nnz.astype(np.float64),
            "features": np.full(count, 16.0),
        }


@dataclass
class BranchyStream(SegmentedWorkload):
    """Inputs for the control-flow-heavy ``branchy`` application.

    Features: ``outer`` (outer-loop trip count, lognormal), ``taken``
    (fraction of iterations taking the heavy branch, uniform 0..1) and
    ``depth`` (data-dependent inner nesting, uniform 1..8).
    """

    num_inputs_: int = DEFAULT_SCENARIO_INPUTS
    seed: int = 7

    def num_inputs(self) -> int:
        return self.num_inputs_

    def segment_features(self, rng: np.random.Generator, start: int,
                         count: int) -> dict[str, np.ndarray]:
        outer = np.clip(
            rng.lognormal(mean=3.0, sigma=0.6, size=count), 4, 512
        ).astype(np.int64)
        taken = rng.uniform(0.0, 1.0, size=count)
        depth = rng.integers(1, 9, size=count)
        return {
            "outer": outer.astype(np.float64),
            # Quantized to 1/64 so every downstream product stays an
            # exact binary fraction (the engines' float-identity
            # argument wants exactly representable latencies).
            "taken": np.floor(taken * 64.0) / 64.0,
            "depth": depth.astype(np.float64),
        }


class TraceReplayStream:
    """Replay a CSV trace of per-input features, cycling to length.

    The file must have a header row naming every feature column and at
    least one data row; every cell must parse as a finite float. Pass
    ``columns`` to additionally require a specific feature set (the
    scenario registry requires the GCN features for the bundled
    sample). Schema violations raise
    :class:`~repro.errors.TraceFormatError` naming the offending
    row/column.

    Replay is deterministic — the stream *is* the trace, cycled to
    ``num_inputs`` — so the scenario seed is ignored.
    """

    def __init__(self, path: str | Path, num_inputs: int | None = None,
                 columns: tuple[str, ...] | None = None):
        self.path = Path(path)
        self._columns = self._load(self.path, columns)
        self._rows = len(next(iter(self._columns.values())))
        self.num_inputs_ = self._rows if num_inputs is None else num_inputs

    @staticmethod
    def _load(path: Path, required: tuple[str, ...] | None,
              ) -> dict[str, np.ndarray]:
        try:
            fh = open(path, newline="")
        except OSError as exc:
            raise TraceFormatError(f"{path}: cannot open trace: {exc}")
        with fh:
            reader = csv.reader(fh)
            try:
                header = next(reader)
            except StopIteration:
                raise TraceFormatError(f"{path}: empty trace (no header)")
            names = [h.strip() for h in header]
            if any(not name for name in names):
                raise TraceFormatError(f"{path}: blank column name in "
                                       f"header {names}")
            if len(set(names)) != len(names):
                raise TraceFormatError(f"{path}: duplicate columns in "
                                       f"header {names}")
            if required is not None:
                missing = sorted(set(required) - set(names))
                if missing:
                    raise TraceFormatError(
                        f"{path}: trace is missing required columns "
                        f"{missing} (header: {names})"
                    )
            values: list[list[float]] = [[] for _ in names]
            for lineno, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) != len(names):
                    raise TraceFormatError(
                        f"{path}:{lineno}: expected {len(names)} "
                        f"columns, got {len(row)}: {row!r}",
                        path=str(path), line=lineno,
                        value=",".join(row),
                    )
                for name, column, cell in zip(names, values, row):
                    try:
                        value = float(cell)
                    except ValueError:
                        raise TraceFormatError(
                            f"{path}:{lineno}: column {name!r}: "
                            f"{cell!r} is not a number",
                            path=str(path), line=lineno, column=name,
                            value=cell,
                        )
                    if not math.isfinite(value):
                        raise TraceFormatError(
                            f"{path}:{lineno}: column {name!r}: "
                            f"non-finite value {cell!r}",
                            path=str(path), line=lineno, column=name,
                            value=cell,
                        )
                    column.append(value)
        if not values[0]:
            raise TraceFormatError(f"{path}: trace has no data rows")
        return {
            name: np.array(column, dtype=np.float64)
            for name, column in zip(names, values)
        }

    def num_inputs(self) -> int:
        return self.num_inputs_

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def feature_blocks(self, block_size: int = DEFAULT_BLOCK_SIZE,
                       ) -> Iterator[FeatureBlock]:
        def segments():
            start = 0
            while start < self.num_inputs_:
                count = min(8192, self.num_inputs_ - start)
                index = np.arange(start, start + count) % self._rows
                yield {
                    name: column[index]
                    for name, column in self._columns.items()
                }
                start += count
        return rechunk_blocks(segments(), block_size)

    def generate(self) -> list[StreamInput]:
        return inputs_of(self.feature_blocks())


# ---------------------------------------------------------------------------
# Registry


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario: a stream factory plus its application."""

    name: str
    description: str
    app_factory: Callable[[], StreamingApp]
    stream_factory: Callable[[int, int], object]
    default_seed: int = 7


@dataclass
class Scenario:
    """A scenario bound to a concrete (seed, length) instance."""

    spec: ScenarioSpec
    seed: int
    n: int
    app: StreamingApp
    stream: object = field(repr=False)

    @property
    def name(self) -> str:
        return self.spec.name

    def feature_blocks(self, block_size: int = DEFAULT_BLOCK_SIZE,
                       ) -> Iterator[FeatureBlock]:
        return self.stream.feature_blocks(block_size)

    def generate(self) -> list[StreamInput]:
        return self.stream.generate()


_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(name: str, *, app: Callable[[], StreamingApp],
                      description: str, default_seed: int = 7):
    """Class/function decorator registering a scenario stream factory.

    The decorated callable receives ``(seed, n)`` and must return an
    object with ``feature_blocks(block_size)`` and ``generate()``
    yielding value-identical streams (``SegmentedWorkload`` subclasses
    qualify by construction).
    """
    if not name or any(c.isspace() for c in name):
        raise ScenarioError(f"invalid scenario name {name!r}")

    def decorate(factory):
        if name in _SCENARIOS:
            raise ScenarioError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = ScenarioSpec(
            name=name, description=description, app_factory=app,
            stream_factory=factory, default_seed=default_seed,
        )
        return factory

    return decorate


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """The registered spec for ``name``; raises ``ScenarioError`` with
    the known names on a miss."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r} (known: {', '.join(scenario_names())})"
        )


def make_scenario(name: str, seed: int | None = None,
                  n: int = DEFAULT_SCENARIO_INPUTS) -> Scenario:
    """Instantiate scenario ``name`` with ``n`` inputs.

    ``seed=None`` uses the scenario's registered default, so two calls
    with the same arguments build byte-equal streams — in any process.
    """
    spec = get_scenario(name)
    if n < 0:
        raise ScenarioError(f"scenario {name!r}: n must be >= 0, got {n}")
    if seed is None:
        seed = spec.default_seed
    return Scenario(spec=spec, seed=seed, n=n, app=spec.app_factory(),
                    stream=spec.stream_factory(seed, n))


def describe_scenarios() -> list[dict[str, str]]:
    """Name / application / description rows for the CLI listing."""
    return [
        {
            "name": spec.name,
            "app": spec.app_factory().name,
            "description": spec.description,
        }
        for spec in (_SCENARIOS[name] for name in scenario_names())
    ]


# ---------------------------------------------------------------------------
# Registered scenarios


@register_scenario(
    "enzyme", app=gcn_app,
    description="lognormal ENZYMES-statistics graph arrivals (the "
                "paper's Fig 13 regime)")
def _enzyme(seed: int, n: int):
    return EnzymeGraphStream(num_graphs=n, seed=seed)


@register_scenario(
    "sparse_lu", app=lu_app, default_seed=11,
    description="UF-collection-statistics sparse matrices through the "
                "LU pipeline")
def _sparse_lu(seed: int, n: int):
    return SparseMatrixStream(num_matrices=n, seed=seed)


@register_scenario(
    "diurnal", app=gcn_app,
    description="sinusoidal day curve: graph sizes swell and shrink "
                "over a 288-input period")
def _diurnal(seed: int, n: int):
    return DiurnalStream(num_inputs_=n, seed=seed)


@register_scenario(
    "bursty", app=gcn_app,
    description="heavy-tailed Pareto degree bursts: mostly light "
                "inputs, rare very dense graphs")
def _bursty(seed: int, n: int):
    return ParetoBurstStream(num_inputs_=n, seed=seed)


@register_scenario(
    "phase_shift", app=gcn_app,
    description="adversarial 40-input phases alternating dense-small "
                "and sparse-large graphs (bottleneck flips every phase)")
def _phase_shift(seed: int, n: int):
    return PhaseShiftStream(num_inputs_=n, seed=seed)


@register_scenario(
    "trace_replay", app=gcn_app,
    description="deterministic CSV replay of the bundled ENZYMES "
                "sample trace (seed ignored), schema-checked")
def _trace_replay(seed: int, n: int):
    return TraceReplayStream(
        DEFAULT_TRACE_PATH, num_inputs=n,
        columns=("n_nodes", "degree", "nnz", "features"),
    )


@register_scenario(
    "trace_fleet", app=gcn_app,
    description="one simulated day of real-shaped arrivals (diurnal "
                "curve, lunch dip, evening peak, two flash crowds), "
                "replayed from the bundled fleet trace (seed ignored)")
def _trace_fleet(seed: int, n: int):
    return TraceReplayStream(
        FLEET_TRACE_PATH, num_inputs=n,
        columns=("n_nodes", "degree", "nnz", "features"),
    )


@register_scenario(
    "branchy", app=branchy_app,
    description="control-flow-heavy kernels: nested conditionals under "
                "partial predication and irregular triangular loops")
def _branchy(seed: int, n: int):
    return BranchyStream(num_inputs_=n, seed=seed)
