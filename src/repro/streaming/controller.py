"""The runtime DVFS controller (section III-B).

The hardware keeps an ``exeTable`` (per-kernel busy time in the current
observation window) and a ``mapTable`` (kernel -> islands). Every
``window`` consumed inputs it identifies the bottleneck kernel, raises
that kernel's islands one V/F level and lowers every other kernel's
islands one level (down to rest). Level switches themselves are ns
scale (integrated LDO + ADPLL); the decision cadence is the 10-input
window, exactly as DRIPS does its re-shaping, for a fair Fig 13
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.arch.dvfs import DVFSConfig, DVFSLevel


@dataclass
class DVFSController:
    """Window-based bottleneck detection and per-kernel level control."""

    dvfs: DVFSConfig
    kernel_names: list[str]
    window: int = 10
    #: A kernel is lowered only "if possible" (section III-B): its
    #: projected busy time at the slower level must stay below this
    #: fraction of the bottleneck's, or it would become the new
    #: bottleneck and throughput would degrade.
    headroom: float = 0.9
    #: Keep the per-window decision log. Million-input runs turn this
    #: off so controller state stays O(kernels); levels still adjust
    #: identically — only the ``decisions`` history is skipped.
    record_decisions: bool = True
    levels: dict[str, DVFSLevel] = field(init=False)
    exe_table: dict[str, float] = field(init=False)
    decisions: list[dict[str, str]] = field(init=False)
    #: Decisions made so far (== ``len(decisions)`` when recording).
    num_decisions: int = field(init=False)

    def __post_init__(self) -> None:
        self.levels = {name: self.dvfs.normal for name in self.kernel_names}
        self.exe_table = {name: 0.0 for name in self.kernel_names}
        self.decisions = []
        self.num_decisions = 0

    def level_of(self, kernel_name: str) -> DVFSLevel:
        return self.levels[kernel_name]

    def record_execution(self, kernel_name: str, busy_cycles: float) -> None:
        """A kernel finished one input; update the exeTable."""
        self.exe_table[kernel_name] += busy_cycles

    def end_of_window(self) -> None:
        """The window-th input was consumed: adjust levels and reset.

        An all-idle window (no recorded execution — e.g. an empty
        window at the end of a stream) makes no decision and leaves
        every level untouched; with a tracer installed it still records
        an ``idle`` decision span so the timeline shows the gap.
        """
        if not any(self.exe_table.values()):
            with obs.span("dvfs_decision", category="streaming",
                          outcome="idle", window=self.num_decisions):
                pass
            return
        with obs.span("dvfs_decision", category="streaming",
                      window=self.num_decisions) as span:
            bottleneck = max(self.exe_table,
                             key=lambda k: self.exe_table[k])
            bn_level = self.levels[bottleneck]
            bn_next = self.dvfs.faster(bn_level)
            # The bottleneck speeds up; project its new busy time as
            # the bar every other kernel must stay under after its own
            # change.
            bar = self.headroom * self.exe_table[bottleneck] * (
                bn_next.slowdown / bn_level.slowdown
            )
            self.levels[bottleneck] = bn_next
            for name in self.kernel_names:
                if name == bottleneck:
                    continue
                current = self.levels[name]
                slower = self.dvfs.slower(current)
                if slower is current:
                    continue
                projected = self.exe_table[name] * (
                    slower.slowdown / current.slowdown
                )
                if projected <= bar:
                    self.levels[name] = slower
                elif self.exe_table[name] > bar and current is not bn_next:
                    # Already over the bar at the current level: raise
                    # it back toward normal instead of stalling the
                    # pipeline.
                    self.levels[name] = self.dvfs.faster(current)
            if obs.current_tracer() is not None:
                # Span attributes are built lazily: the exeTable is
                # not reset until after this block, so the values
                # match what an eager snapshot would have captured.
                span.set(
                    outcome="adjusted",
                    bottleneck=bottleneck,
                    busy_cycles={
                        name: round(cycles, 3)
                        for name, cycles in self.exe_table.items()
                    },
                    levels={n: lv.name for n, lv in self.levels.items()},
                )
        registry = obs.metrics()
        registry.counter("streaming.dvfs_decisions").inc()
        if self.record_decisions:
            self.decisions.append(
                {name: level.name for name, level in self.levels.items()}
                | {"_bottleneck": bottleneck}
            )
        self.num_decisions += 1
        self.exe_table = {name: 0.0 for name in self.kernel_names}
