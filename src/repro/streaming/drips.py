"""DRIPS re-implemented: dynamic island re-balancing, no DVFS.

DRIPS (HPCA'22, [29] in the paper) watches the same 10-input window but
responds by *re-shaping*: it moves an island from the most idle kernel
to the bottleneck kernel, reloading configurations (a reshape penalty
charged to both kernels' next input). Every allocated tile always runs
at the nominal V/F — DRIPS optimizes throughput, ICED optimizes energy
at equal throughput, which is why Fig 13 compares performance-per-watt.

The re-shaper consults the same II table the ICED partitioner profiled
(II as a function of island count per kernel) and starts from the same
initial partition, mirroring the paper's "first 50 input instances are
used to profile the initial mapping for DRIPS and ICED".

The reshape logic lives in :class:`_DripsState`, shared verbatim
between the scalar reference engine and the fast window-batched engine
so the two cannot drift apart.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.power.model import DEFAULT_POWER_PARAMS, PowerParams
from repro.streaming.engine import (
    FastPipelineSim,
    StreamResult,
    _as_blocks,
    _PipelineSim,
)
from repro.streaming.partitioner import Partition
from repro.streaming.stage import StreamInput

#: Cycles to reload one island's tile configurations after a reshape.
RESHAPE_CONFIG_CYCLES = 256

#: Inputs' worth of work each reshaped kernel loses draining and
#: refilling its in-flight state (DRIPS must quiesce a kernel before
#: remapping its tiles).
RESHAPE_DRAIN_INPUTS = 1.0


def simulate_static(partition: Partition, inputs: list[StreamInput],
                    window: int = 10,
                    params: PowerParams = DEFAULT_POWER_PARAMS,
                    ) -> StreamResult:
    """A DynPaC-style static baseline: fixed partition, fixed nominal
    V/f, no reshaping — the floor both DRIPS and ICED improve on."""
    sim = _PipelineSim(partition, params)

    def latency_of(kernel, item: StreamInput) -> float:
        return kernel.iterations(item) * partition.placement_of(
            kernel.name
        ).ii

    return sim.run(
        inputs, window,
        latency_of=latency_of,
        level_name_of=lambda name: partition.cgra.dvfs.normal.name,
        on_window_end=lambda: None,
        strategy="static",
    )


def fast_simulate_static(partition: Partition, stream, window: int = 10,
                         params: PowerParams = DEFAULT_POWER_PARAMS,
                         keep_windows: bool = True) -> StreamResult:
    """The static baseline on the fast engine — float-identical to
    :func:`simulate_static`."""
    sim = FastPipelineSim(partition, params)
    adapter = _FastStatic(partition)
    return sim.run_blocks(_as_blocks(stream), window, adapter,
                          keep_windows=keep_windows)


class _FastStatic:
    """Fast-engine adapter for the static baseline: fixed IIs, nominal
    level everywhere, no window-end action. Latencies are pure integer
    products, so the numpy scan applies."""

    vector_ok = True
    strategy = "static"

    def __init__(self, partition: Partition):
        self._ii = {
            p.kernel.name: float(p.ii) for p in partition.placements
        }
        self._normal = partition.cgra.dvfs.normal.name

    def level_name_of(self, name: str) -> str:
        return self._normal

    def latency_window(self, name: str, counts: np.ndarray) -> np.ndarray:
        # float multiplier -> float64 latencies in one op; exact, since
        # every operand and product is an integer below 2**53.
        return counts * self._ii[name]

    def on_window_end(self) -> None:
        pass


class _DripsState:
    """The DRIPS re-shaper's mutable state and window-end decision.

    Both engines drive this one implementation: the scalar engine
    through a per-input ``latency_of`` closure, the fast engine through
    :class:`_FastDrips` — identical arithmetic either way.
    """

    def __init__(self, sim: _PipelineSim, partition: Partition,
                 window: int, max_islands_per_kernel: int):
        self.sim = sim
        self.partition = partition
        self.table = partition.ii_table
        self.window = window
        self.max_islands = max_islands_per_kernel
        self.allocation = {
            p.kernel.name: len(p.island_ids) for p in partition.placements
        }
        self.busy: dict[str, float] = {name: 0.0 for name in self.allocation}
        self.penalty: dict[str, float] = {
            name: 0.0 for name in self.allocation
        }

    def current_ii(self, name: str) -> int:
        ii = self.table.get((name, self.allocation[name]))
        if ii is None:  # fall back to the realized mapping's II
            ii = self.partition.placement_of(name).ii
        return ii

    def end_of_window(self) -> None:
        if not any(self.busy.values()):
            return
        with obs.span("reshape", category="streaming") as span:
            self._reshape(span)

    def _reshape(self, span) -> None:
        busy = self.busy
        allocation = self.allocation
        table = self.table
        bottleneck = max(busy, key=lambda k: busy[k])
        donors = sorted(
            (k for k in busy if k != bottleneck and allocation[k] > 1),
            key=lambda k: busy[k],
        )
        grown = allocation[bottleneck] + 1
        can_grow = (
            grown <= self.max_islands
            and table.get((bottleneck, grown)) is not None
            and donors
        )
        if can_grow:
            donor = donors[0]
            shrunk = allocation[donor] - 1
            new_donor_ii = table.get((donor, shrunk))
            if new_donor_ii is not None:
                # Reshape only when the projected throughput gain over
                # the next window beats the drain/reload cost.
                bn_gain = busy[bottleneck] * (
                    1.0 - table[(bottleneck, grown)]
                    / self.current_ii(bottleneck)
                )
                donor_loss = max(
                    0.0,
                    busy[donor]
                    * (new_donor_ii / self.current_ii(donor) - 1.0)
                    - (busy[bottleneck] - busy[donor]),
                )
                drain = RESHAPE_DRAIN_INPUTS * (
                    busy[bottleneck] + busy[donor]
                ) / max(1, self.window) + 2 * RESHAPE_CONFIG_CYCLES
                if bn_gain - donor_loss > drain:
                    allocation[donor] = shrunk
                    allocation[bottleneck] = grown
                    self.penalty[donor] += (
                        RESHAPE_DRAIN_INPUTS * busy[donor]
                        / max(1, self.window) + RESHAPE_CONFIG_CYCLES
                    )
                    self.penalty[bottleneck] += (
                        RESHAPE_DRAIN_INPUTS * busy[bottleneck]
                        / max(1, self.window) + RESHAPE_CONFIG_CYCLES
                    )
                    span.set(outcome="reshaped", donor=donor)
        span.set(bottleneck=bottleneck, allocation=dict(allocation))
        for name in busy:
            busy[name] = 0.0
        # Power accounting follows the new allocation.
        for placement in self.partition.placements:
            name = placement.kernel.name
            tiles_per_island = len(
                placement.tile_ids(self.partition.cgra)
            ) // max(1, len(placement.island_ids))
            self.sim.kernel_tiles[name] = (
                tiles_per_island * allocation[name]
            )


class _FastDrips:
    """Fast-engine adapter for DRIPS.

    Reshape penalties are fractional (``busy / window``), so the
    cumsum-based numpy scan could round differently than the
    sequential recurrence — this adapter opts out (``vector_ok =
    False``) and reproduces the scalar engine's per-input arithmetic
    exactly: penalty consumed by the kernel's first input of the
    window, busy time accumulated sequentially in the same order.
    """

    vector_ok = False

    def __init__(self, state: _DripsState):
        self.state = state
        self._normal = state.partition.cgra.dvfs.normal.name

    strategy = "drips"

    def level_name_of(self, name: str) -> str:
        return self._normal

    def latency_window(self, name: str, counts: np.ndarray) -> list[float]:
        state = self.state
        ii = state.current_ii(name)
        busy = state.busy[name]
        lats: list[float] = []
        for count in counts.tolist():
            cycles = count * ii
            cycles += state.penalty[name]
            state.penalty[name] = 0.0
            busy += cycles
            lats.append(cycles)
        state.busy[name] = busy
        return lats

    def on_window_end(self) -> None:
        self.state.end_of_window()


def simulate_drips(partition: Partition, inputs: list[StreamInput],
                   window: int = 10,
                   params: PowerParams = DEFAULT_POWER_PARAMS,
                   max_islands_per_kernel: int = 4) -> StreamResult:
    """Run the DRIPS configuration on the same partition and inputs
    (scalar reference engine)."""
    sim = _PipelineSim(partition, params)
    state = _DripsState(sim, partition, window, max_islands_per_kernel)

    def latency_of(kernel, item: StreamInput) -> float:
        cycles = kernel.iterations(item) * state.current_ii(kernel.name)
        cycles += state.penalty[kernel.name]
        state.penalty[kernel.name] = 0.0
        state.busy[kernel.name] += cycles
        return cycles

    return sim.run(
        inputs, window,
        latency_of=latency_of,
        level_name_of=lambda name: partition.cgra.dvfs.normal.name,
        on_window_end=state.end_of_window,
        strategy="drips",
    )


def fast_simulate_drips(partition: Partition, stream, window: int = 10,
                        params: PowerParams = DEFAULT_POWER_PARAMS,
                        max_islands_per_kernel: int = 4,
                        keep_windows: bool = True) -> StreamResult:
    """The DRIPS configuration on the fast engine — float-identical to
    :func:`simulate_drips`."""
    sim = FastPipelineSim(partition, params)
    state = _DripsState(sim, partition, window, max_islands_per_kernel)
    adapter = _FastDrips(state)
    return sim.run_blocks(_as_blocks(stream), window, adapter,
                          keep_windows=keep_windows)
