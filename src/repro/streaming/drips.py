"""DRIPS re-implemented: dynamic island re-balancing, no DVFS.

DRIPS (HPCA'22, [29] in the paper) watches the same 10-input window but
responds by *re-shaping*: it moves an island from the most idle kernel
to the bottleneck kernel, reloading configurations (a reshape penalty
charged to both kernels' next input). Every allocated tile always runs
at the nominal V/F — DRIPS optimizes throughput, ICED optimizes energy
at equal throughput, which is why Fig 13 compares performance-per-watt.

The re-shaper consults the same II table the ICED partitioner profiled
(II as a function of island count per kernel) and starts from the same
initial partition, mirroring the paper's "first 50 input instances are
used to profile the initial mapping for DRIPS and ICED".
"""

from __future__ import annotations

from repro import obs
from repro.power.model import DEFAULT_POWER_PARAMS, PowerParams
from repro.streaming.engine import StreamResult, _PipelineSim
from repro.streaming.partitioner import Partition
from repro.streaming.stage import StreamInput

#: Cycles to reload one island's tile configurations after a reshape.
RESHAPE_CONFIG_CYCLES = 256

#: Inputs' worth of work each reshaped kernel loses draining and
#: refilling its in-flight state (DRIPS must quiesce a kernel before
#: remapping its tiles).
RESHAPE_DRAIN_INPUTS = 1.0


def simulate_static(partition: Partition, inputs: list[StreamInput],
                    window: int = 10,
                    params: PowerParams = DEFAULT_POWER_PARAMS,
                    ) -> StreamResult:
    """A DynPaC-style static baseline: fixed partition, fixed nominal
    V/f, no reshaping — the floor both DRIPS and ICED improve on."""
    sim = _PipelineSim(partition, params)

    def latency_of(kernel, item: StreamInput) -> float:
        return kernel.iterations(item) * partition.placement_of(
            kernel.name
        ).ii

    return sim.run(
        inputs, window,
        latency_of=latency_of,
        level_name_of=lambda name: partition.cgra.dvfs.normal.name,
        on_window_end=lambda: None,
        strategy="static",
    )


def simulate_drips(partition: Partition, inputs: list[StreamInput],
                   window: int = 10,
                   params: PowerParams = DEFAULT_POWER_PARAMS,
                   max_islands_per_kernel: int = 4) -> StreamResult:
    """Run the DRIPS configuration on the same partition and inputs."""
    sim = _PipelineSim(partition, params)
    table = partition.ii_table

    allocation = {
        p.kernel.name: len(p.island_ids) for p in partition.placements
    }
    busy: dict[str, float] = {name: 0.0 for name in allocation}
    penalty: dict[str, float] = {name: 0.0 for name in allocation}

    def current_ii(name: str) -> int:
        ii = table.get((name, allocation[name]))
        if ii is None:  # fall back to the realized mapping's II
            ii = partition.placement_of(name).ii
        return ii

    def latency_of(kernel, item: StreamInput) -> float:
        cycles = kernel.iterations(item) * current_ii(kernel.name)
        cycles += penalty[kernel.name]
        penalty[kernel.name] = 0.0
        busy[kernel.name] += cycles
        return cycles

    def reshape() -> None:
        if not any(busy.values()):
            return
        with obs.span("reshape", category="streaming") as span:
            _reshape(span)

    def _reshape(span) -> None:
        bottleneck = max(busy, key=lambda k: busy[k])
        donors = sorted(
            (k for k in busy if k != bottleneck and allocation[k] > 1),
            key=lambda k: busy[k],
        )
        grown = allocation[bottleneck] + 1
        can_grow = (
            grown <= max_islands_per_kernel
            and table.get((bottleneck, grown)) is not None
            and donors
        )
        if can_grow:
            donor = donors[0]
            shrunk = allocation[donor] - 1
            new_donor_ii = table.get((donor, shrunk))
            if new_donor_ii is not None:
                # Reshape only when the projected throughput gain over
                # the next window beats the drain/reload cost.
                bn_gain = busy[bottleneck] * (
                    1.0 - table[(bottleneck, grown)]
                    / current_ii(bottleneck)
                )
                donor_loss = max(
                    0.0,
                    busy[donor] * (new_donor_ii / current_ii(donor) - 1.0)
                    - (busy[bottleneck] - busy[donor]),
                )
                drain = RESHAPE_DRAIN_INPUTS * (
                    busy[bottleneck] + busy[donor]
                ) / max(1, window) + 2 * RESHAPE_CONFIG_CYCLES
                if bn_gain - donor_loss > drain:
                    allocation[donor] = shrunk
                    allocation[bottleneck] = grown
                    penalty[donor] += (
                        RESHAPE_DRAIN_INPUTS * busy[donor] / max(1, window)
                        + RESHAPE_CONFIG_CYCLES
                    )
                    penalty[bottleneck] += (
                        RESHAPE_DRAIN_INPUTS * busy[bottleneck]
                        / max(1, window) + RESHAPE_CONFIG_CYCLES
                    )
                    span.set(outcome="reshaped", donor=donor)
        span.set(bottleneck=bottleneck, allocation=dict(allocation))
        for name in busy:
            busy[name] = 0.0
        # Power accounting follows the new allocation.
        for placement in partition.placements:
            name = placement.kernel.name
            tiles_per_island = len(placement.tile_ids(partition.cgra)) // max(
                1, len(placement.island_ids)
            )
            sim.kernel_tiles[name] = tiles_per_island * allocation[name]

    result = sim.run(
        inputs, window,
        latency_of=latency_of,
        level_name_of=lambda name: partition.cgra.dvfs.normal.name,
        on_window_end=reshape,
        strategy="drips",
    )
    return result
