"""Offline CGRA partitioning across a streaming application's kernels.

Section IV-B: every kernel gets at least one island; the partitioner
profiles 50 input instances, builds an II table per (kernel, island
count) by actually mapping the kernel onto restricted tile sets, then
exhaustively searches island compositions for the one minimizing the
average bottleneck-stage latency (the pipeline's throughput limiter).
The search is offline, at compile time; at runtime only DVFS levels
change (the configuration of each kernel stays put).

Deviation noted in DESIGN.md: streaming kernels are mapped with uniform
normal-level islands, and the runtime DVFS level scales the whole
kernel's latency — the paper's per-island normal/relax mix inside one
kernel is folded into this uniform model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.arch.cgra import CGRA
from repro.compile import (
    Instrumentation,
    SweepExecutor,
    SweepItem,
    compile_dfg,
)
from repro.errors import MappingError, PartitionError
from repro.mapper.engine import EngineConfig
from repro.mapper.mapping import Mapping
from repro.streaming.app import StreamingApp
from repro.streaming.stage import KernelStage, StreamInput


def streaming_cgra(rows: int = 6, cols: int = 6,
                   island_shape: tuple[int, int] = (2, 2)) -> CGRA:
    """The streaming fabric variant: SPM reachable from every column.

    Partitions hand islands anywhere on the fabric to kernels, so each
    island needs scratchpad access; this variant models the row-bus
    distributed SPM access such partitioned CGRAs (DRIPS-like) use.
    """
    return CGRA.build(
        rows, cols, island_shape=island_shape,
        memory_columns=tuple(range(cols)),
        name=f"streaming{rows}x{cols}",
    )


@dataclass
class KernelPlacement:
    """One kernel's share of the fabric."""

    stage_index: int
    kernel: KernelStage
    island_ids: tuple[int, ...]
    mapping: Mapping

    @property
    def ii(self) -> int:
        return self.mapping.ii

    def tile_ids(self, cgra: CGRA) -> list[int]:
        return [
            t for isl in self.island_ids for t in cgra.island(isl).tile_ids
        ]


@dataclass
class Partition:
    """A complete fabric partition for a streaming application."""

    app: StreamingApp
    cgra: CGRA
    placements: list[KernelPlacement]
    ii_table: dict[tuple[str, int], int | None] = field(default_factory=dict)

    def placement_of(self, kernel_name: str) -> KernelPlacement:
        for placement in self.placements:
            if placement.kernel.name == kernel_name:
                return placement
        raise PartitionError(f"no placement for kernel {kernel_name!r}")

    def islands_used(self) -> int:
        return sum(len(p.island_ids) for p in self.placements)

    def summary(self) -> str:
        parts = ", ".join(
            f"{p.kernel.name}:{len(p.island_ids)}isl II={p.ii}"
            for p in self.placements
        )
        return f"{self.app.name} on {self.cgra.name}: {parts}"


def _snake_island_order(cgra: CGRA) -> list[int]:
    """Island ids in boustrophedon order over the island grid.

    Consecutive ids in this order are always grid-adjacent, so any
    kernel's contiguous slice of the order is a spatially connected
    region — handing a kernel two islands from opposite fabric corners
    would inflate its II with long routes.
    """
    first = cgra.islands[0]
    per_row = max(1, -(-cgra.cols // first.width))
    rows = -(-len(cgra.islands) // per_row)
    order: list[int] = []
    for row in range(rows):
        ids = [
            i for i in range(row * per_row, min((row + 1) * per_row,
                                                len(cgra.islands)))
        ]
        order.extend(reversed(ids) if row % 2 else ids)
    return order


def _island_config(cgra: CGRA, island_ids: tuple[int, ...],
                   max_ii: int = 32) -> EngineConfig:
    """The restricted engine configuration of one island allocation."""
    tiles = frozenset(
        t for isl in island_ids for t in cgra.island(isl).tile_ids
    )
    return EngineConfig(
        dvfs_aware=True,
        allowed_tiles=tiles,
        allowed_level_names=("normal",),
        max_ii=max_ii,
    )


def _map_on_islands(kernel: KernelStage, cgra: CGRA,
                    island_ids: tuple[int, ...], max_ii: int = 32, *,
                    use_cache: bool = True,
                    instrument: Instrumentation | None = None,
                    ) -> Mapping | None:
    """Map one kernel restricted to ``island_ids``, through the pipeline.

    ``allowed_tiles`` is part of the mapping cache key, so the table
    probe for k islands and the final realization on the same k islands
    share one engine run — and a restricted compile is never served a
    whole-fabric cached artifact.
    """
    config = _island_config(cgra, island_ids, max_ii)
    try:
        return compile_dfg(kernel.dfg, cgra, "iced", config, refine=False,
                           use_cache=use_cache,
                           instrument=instrument).mapping
    except MappingError:
        return None


def build_ii_table(app: StreamingApp, cgra: CGRA,
                   max_islands_per_kernel: int = 4, *,
                   use_cache: bool = True,
                   instrument: Instrumentation | None = None,
                   jobs: int = 1, cache_dir: str | None = None,
                   ) -> dict[tuple[str, int], int | None]:
    """II of every kernel on 1..N islands (None = unmappable).

    The probe uses the first k islands as a representative tile set;
    islands are homogeneous on the streaming fabric, so the II depends
    on the count (and rough shape), not the identity.

    The (kernel x island-count) probe grid is independent work — with
    ``jobs > 1`` it fans out across a process pool (the probes dominate
    partitioning time), with deterministic results either way.
    """
    snake = _snake_island_order(cgra)
    probes = [
        (kernel, count)
        for kernel in app.all_kernels()
        for count in range(1, max_islands_per_kernel + 1)
    ]
    if jobs > 1 and use_cache:
        from repro.compile import DiskCache, TieredCache, get_cache

        # Engine artifacts promote into the process-wide cache so the
        # realization step below the table search hits warm.
        parent_cache = (
            TieredCache(get_cache(), DiskCache(cache_dir))
            if cache_dir else get_cache()
        )
        executor = SweepExecutor(jobs=jobs, cache=parent_cache,
                                 cache_dir=cache_dir,
                                 instrument=instrument)
        items = [
            SweepItem(dfg=kernel.dfg, strategy="iced",
                      config=_island_config(cgra, tuple(snake[:count])),
                      refine=False, tag=kernel.name)
            for kernel, count in probes
        ]
        outcomes = executor.run(items, cgra)
        return {
            (kernel.name, count):
                outcome.result.mapping.ii if outcome.ok else None
            for (kernel, count), outcome in zip(probes, outcomes)
        }
    table: dict[tuple[str, int], int | None] = {}
    for kernel, count in probes:
        probe_islands = tuple(snake[:count])
        mapping = _map_on_islands(kernel, cgra, probe_islands,
                                  use_cache=use_cache,
                                  instrument=instrument)
        table[(kernel.name, count)] = mapping.ii if mapping else None
    return table


def _stage_latency(app: StreamingApp, table, allocation: dict[str, int],
                   item: StreamInput) -> float:
    """Bottleneck latency of one input under an allocation."""
    worst = 0.0
    for stage in app.stages:
        stage_latency = 0.0
        for kernel in stage:
            ii = table[(kernel.name, allocation[kernel.name])]
            stage_latency = max(stage_latency, kernel.iterations(item) * ii)
        worst = max(worst, stage_latency)
    return worst


def partition_app(app: StreamingApp, cgra: CGRA,
                  profile_inputs: list[StreamInput],
                  max_islands_per_kernel: int = 4,
                  ii_table: dict | None = None, *,
                  use_cache: bool = True,
                  instrument: Instrumentation | None = None,
                  jobs: int = 1,
                  cache_dir: str | None = None) -> Partition:
    """Choose and realize the throughput-optimal island composition."""
    kernels = app.all_kernels()
    total_islands = len(cgra.islands)
    if len(kernels) > total_islands:
        raise PartitionError(
            f"{app.name}: {len(kernels)} kernels exceed "
            f"{total_islands} islands (merge kernels first)"
        )
    table = ii_table if ii_table is not None else build_ii_table(
        app, cgra, max_islands_per_kernel,
        use_cache=use_cache, instrument=instrument,
        jobs=jobs, cache_dir=cache_dir,
    )

    names = [k.name for k in kernels]
    feasible_counts = {
        name: [
            c for c in range(1, max_islands_per_kernel + 1)
            if table.get((name, c)) is not None
        ]
        for name in names
    }
    for name, counts in feasible_counts.items():
        if not counts:
            raise PartitionError(f"kernel {name!r} fits on no island count")

    best_alloc: dict[str, int] | None = None
    best_cost = float("inf")
    for combo in itertools.product(*(feasible_counts[n] for n in names)):
        if sum(combo) > total_islands:
            continue
        allocation = dict(zip(names, combo))
        cost = sum(
            _stage_latency(app, table, allocation, item)
            for item in profile_inputs
        )
        if cost < best_cost:
            best_cost = cost
            best_alloc = allocation
    if best_alloc is None:
        raise PartitionError(
            f"{app.name}: no island composition fits in "
            f"{total_islands} islands"
        )

    # Realize the allocation on concrete, spatially contiguous island
    # groups (consecutive slices of the snake order) and produce each
    # kernel's final mapping on its own islands.
    snake = _snake_island_order(cgra)
    placements: list[KernelPlacement] = []
    next_island = 0
    for stage_index, stage in enumerate(app.stages):
        for kernel in stage:
            count = best_alloc[kernel.name]
            island_ids = tuple(snake[next_island:next_island + count])
            next_island += count
            mapping = _map_on_islands(kernel, cgra, island_ids,
                                      use_cache=use_cache,
                                      instrument=instrument)
            if mapping is None:
                raise PartitionError(
                    f"kernel {kernel.name!r} failed to map on its "
                    f"allocated islands {island_ids}"
                )
            placements.append(
                KernelPlacement(stage_index, kernel, island_ids, mapping)
            )
    return Partition(app=app, cgra=cgra, placements=placements,
                     ii_table=table)
