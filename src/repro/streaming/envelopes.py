"""Per-scenario energy/latency envelopes and their regression gates.

An *envelope* is the canonical JSON summary of one traffic scenario run
through every DVFS strategy (iced / drips / static) on the fast engine:
total energy, p50/p99 per-input latency, throughput and average power
per strategy, plus the identifying parameters (scenario, seed, inputs,
window, schema version).

Committed goldens under ``tests/envelopes/`` gate regressions:
:func:`compare_envelopes` checks a freshly computed envelope against
its golden with a relative tolerance band on floats (integers and
identifying fields must match exactly) and returns the list of
violations. The band absorbs deliberate model retuning noise while
catching strategy-level regressions; bit-level drift between the fast
and reference engines is caught separately by the differential suite,
which pins exact float identity per scenario.

Latency percentiles are weighted nearest-rank percentiles over the
run's observation windows: each window contributes its mean per-input
latency (``duration_cycles / inputs``) with weight ``inputs``. That
makes p99 sensitive to short heavy windows — exactly the bursts the
``bursty`` and ``phase_shift`` scenarios exist to produce — while
staying a pure function of the ``WindowStats`` the differential suite
already pins.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import obs
from repro.errors import ScenarioError
from repro.power.model import DEFAULT_POWER_PARAMS, PowerParams
from repro.streaming.drips import fast_simulate_drips, fast_simulate_static
from repro.streaming.engine import StreamResult, fast_simulate_stream
from repro.streaming.partitioner import Partition, partition_app, streaming_cgra
from repro.streaming.scenarios import make_scenario, scenario_names
from repro.streaming.workloads import take_inputs

__all__ = [
    "DEFAULT_ENVELOPE_INPUTS",
    "ENVELOPE_SCHEMA",
    "STRATEGIES",
    "all_envelopes",
    "compare_envelopes",
    "envelope_path",
    "load_envelope",
    "scenario_envelope",
    "summarize_result",
    "weighted_percentile",
    "write_envelope",
]

#: Version stamp written into every envelope; bump when the summary
#: shape changes so stale goldens fail loudly instead of drifting.
ENVELOPE_SCHEMA = 1

#: Strategy order in envelopes and CLI tables.
STRATEGIES = ("iced", "drips", "static")

#: Default stream length for envelope runs: long enough for several
#: controller windows per phase, short enough for CI.
DEFAULT_ENVELOPE_INPUTS = 240

#: Profiling prefix used to build the partition (matches the CLI's
#: sizing rule).
def _profile_count(n: int) -> int:
    return min(50, max(5, n // 3))


def weighted_percentile(values, weights, q: float) -> float:
    """Weighted nearest-rank percentile: the smallest value whose
    cumulative weight reaches ``q`` of the total. Deterministic (ties
    resolved by value order) and exact for the small window counts
    envelopes deal in."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    pairs = sorted(
        (float(v), float(w)) for v, w in zip(values, weights) if w > 0
    )
    if not pairs:
        return 0.0
    total = sum(w for _, w in pairs)
    threshold = q * total
    cumulative = 0.0
    for value, weight in pairs:
        cumulative += weight
        if cumulative >= threshold:
            return value
    return pairs[-1][0]


def summarize_result(result: StreamResult) -> dict:
    """One strategy's envelope entry from its ``StreamResult``."""
    latencies = [w.duration_cycles / w.inputs for w in result.windows
                 if w.inputs > 0]
    weights = [w.inputs for w in result.windows if w.inputs > 0]
    makespan = result.makespan_cycles
    return {
        "energy_uj": result.total_energy_uj,
        "makespan_cycles": makespan,
        "inputs": result.inputs,
        "windows": len(result.windows),
        "throughput_inputs_per_kcycle":
            (1e3 * result.inputs / makespan) if makespan > 0 else 0.0,
        "p50_latency_cycles": weighted_percentile(latencies, weights, 0.50),
        "p99_latency_cycles": weighted_percentile(latencies, weights, 0.99),
        "average_power_mw": result.average_power_mw,
    }


_RUNNERS = {
    "iced": fast_simulate_stream,
    "drips": fast_simulate_drips,
    "static": fast_simulate_static,
}


def scenario_envelope(name: str, *, seed: int | None = None,
                      inputs: int = DEFAULT_ENVELOPE_INPUTS,
                      window: int = 10,
                      strategies: tuple[str, ...] = STRATEGIES,
                      partition: Partition | None = None,
                      params: PowerParams = DEFAULT_POWER_PARAMS,
                      use_cache: bool = True, jobs: int = 1) -> dict:
    """Run scenario ``name`` through every requested strategy on the
    fast engine and return its envelope dict.

    Pass ``partition`` to skip the (mapping-heavy) partitioning step —
    tests with fake partitions use this; the default builds a real
    partition from the scenario's own profiling prefix, exactly as
    ``repro stream`` does.

    Emits a ``scenario`` span carrying the ``streaming.scenario``
    attribute, plus ``streaming.energy_mj`` / ``streaming.p99_latency``
    gauges (last-strategy values) and per-scenario qualified gauges
    (``streaming.energy_mj.<scenario>.<strategy>``).
    """
    unknown = [s for s in strategies if s not in _RUNNERS]
    if unknown:
        raise ScenarioError(
            f"unknown strategies {unknown} (known: {list(_RUNNERS)})"
        )
    scenario = make_scenario(name, seed=seed, n=inputs)
    registry = obs.metrics()
    with obs.span("scenario", category="streaming") as span:
        span.set(**{"streaming.scenario": name,
                    "streaming.inputs": inputs})
        if partition is None:
            profile = take_inputs(scenario.feature_blocks(),
                                  _profile_count(inputs))
            partition = partition_app(
                scenario.app, streaming_cgra(), profile,
                use_cache=use_cache, jobs=jobs,
            )
        entries = {}
        for strategy in strategies:
            result = _RUNNERS[strategy](
                partition, scenario.feature_blocks(), window, params
            )
            summary = summarize_result(result)
            entries[strategy] = summary
            energy_mj = summary["energy_uj"] / 1e3
            p99 = summary["p99_latency_cycles"]
            registry.gauge("streaming.energy_mj").set(energy_mj)
            registry.gauge("streaming.p99_latency").set(p99)
            registry.gauge(
                f"streaming.energy_mj.{name}.{strategy}"
            ).set(energy_mj)
            registry.gauge(
                f"streaming.p99_latency.{name}.{strategy}"
            ).set(p99)
    return {
        "schema": ENVELOPE_SCHEMA,
        "scenario": name,
        "app": scenario.app.name,
        "seed": scenario.seed,
        "inputs": inputs,
        "window": window,
        "strategies": entries,
    }


def all_envelopes(*, inputs: int = DEFAULT_ENVELOPE_INPUTS,
                  window: int = 10, use_cache: bool = True,
                  jobs: int = 1) -> dict[str, dict]:
    """Envelopes for every registered scenario, keyed by name."""
    return {
        name: scenario_envelope(name, inputs=inputs, window=window,
                                use_cache=use_cache, jobs=jobs)
        for name in scenario_names()
    }


def envelope_path(root: str | Path, name: str) -> Path:
    """Canonical golden location for scenario ``name`` under ``root``."""
    return Path(root) / f"{name}.json"


def write_envelope(envelope: dict, path: str | Path) -> None:
    """Write an envelope canonically (sorted keys, trailing newline) so
    regeneration produces byte-stable diffs."""
    path = Path(path)
    os.makedirs(path.parent, exist_ok=True)
    path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")


def load_envelope(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


#: Identifying fields that must match exactly between golden and fresh.
_EXACT_KEYS = {"schema", "scenario", "app", "seed", "inputs", "window",
               "windows"}


def compare_envelopes(golden: dict, fresh: dict, *,
                      rtol: float = 0.05) -> list[str]:
    """Differences between a golden and a fresh envelope.

    Identifying fields and integer counts must match exactly; float
    metrics must agree within a relative tolerance band of ``rtol``
    (absolute floor 1e-9 so zero-valued metrics compare cleanly).
    Returns human-readable violation strings — empty means the gate
    passes.
    """
    problems: list[str] = []

    def walk(g, f, path):
        if isinstance(g, dict) and isinstance(f, dict):
            for key in sorted(set(g) | set(f)):
                here = f"{path}.{key}" if path else key
                if key not in g:
                    problems.append(f"{here}: unexpected key in fresh")
                elif key not in f:
                    problems.append(f"{here}: missing from fresh")
                else:
                    walk(g[key], f[key], here)
            return
        leaf = path.rsplit(".", 1)[-1]
        if leaf in _EXACT_KEYS or isinstance(g, (str, int)):
            if g != f:
                problems.append(f"{path}: expected {g!r}, got {f!r}")
            return
        if isinstance(g, float):
            band = max(rtol * abs(g), 1e-9)
            if abs(float(f) - g) > band:
                problems.append(
                    f"{path}: {f!r} outside {g!r} ± {band:.6g} "
                    f"(rtol={rtol})"
                )
            return
        if g != f:
            problems.append(f"{path}: expected {g!r}, got {f!r}")

    walk(golden, fresh, "")
    return problems
