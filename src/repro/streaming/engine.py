"""Streaming pipeline simulation and energy accounting.

The pipeline recurrence is the standard one: kernel k starts input i
once (a) every kernel of the previous stage finished input i and
(b) k itself finished input i-1. Per-input kernel latency is
``iterations(input) * II * slowdown(level)`` base cycles. Window
boundaries (every ``window`` inputs leaving the last stage) trigger the
DVFS controller (ICED) or the island re-shaper (DRIPS).

Energy integrates per window: each kernel's islands burn their level's
tile power for the window's duration (idle-but-clocked tiles burn like
busy ones at the same level — which is precisely the waste DVFS
recovers), plus island DVFS controllers and the SPM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.power.model import (
    DEFAULT_POWER_PARAMS,
    PowerParams,
    level_tile_power_mw,
)
from repro.power.sram import SRAMModel
from repro.streaming.controller import DVFSController
from repro.streaming.partitioner import Partition
from repro.streaming.stage import StreamInput


@dataclass
class WindowStats:
    """One observation window's outcome."""

    index: int
    start_cycle: float
    end_cycle: float
    inputs: int
    energy_uj: float
    levels: dict[str, str]
    frequency_mhz: float = 434.0

    @property
    def duration_cycles(self) -> float:
        return self.end_cycle - self.start_cycle

    @property
    def power_mw(self) -> float:
        if self.duration_cycles <= 0:
            return 0.0
        return self.energy_uj * 1e3 / self._duration_us

    @property
    def _duration_us(self) -> float:
        return self.duration_cycles / self.frequency_mhz

    def perf_per_watt(self) -> float:
        """Inputs per microjoule — throughput per watt."""
        if self.energy_uj <= 0:
            return 0.0
        return self.inputs / self.energy_uj


@dataclass
class StreamResult:
    """The outcome of streaming a whole input set."""

    app: str
    strategy: str
    makespan_cycles: float
    total_energy_uj: float
    inputs: int
    windows: list[WindowStats] = field(default_factory=list)
    frequency_mhz: float = 434.0

    @property
    def makespan_us(self) -> float:
        return self.makespan_cycles / self.frequency_mhz

    @property
    def average_power_mw(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return self.total_energy_uj * 1e3 / self.makespan_us

    @property
    def throughput_per_us(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return self.inputs / self.makespan_us

    def perf_per_watt(self) -> float:
        if self.total_energy_uj <= 0:
            return 0.0
        return self.inputs / self.total_energy_uj


class _PipelineSim:
    """Shared pipeline-recurrence machinery for ICED and DRIPS runs."""

    def __init__(self, partition: Partition,
                 params: PowerParams = DEFAULT_POWER_PARAMS):
        self.partition = partition
        self.app = partition.app
        self.cgra = partition.cgra
        self.params = params
        spm = self.cgra.spm
        self.sram = SRAMModel(size_bytes=spm.size_bytes,
                              num_banks=spm.num_banks)
        self.kernel_tiles = {
            p.kernel.name: len(p.tile_ids(self.cgra))
            for p in partition.placements
        }
        self.prev_finish: dict[str, float] = {
            p.kernel.name: 0.0 for p in partition.placements
        }

    def run(self, inputs: list[StreamInput], window: int,
            latency_of, level_name_of, on_window_end, strategy: str,
            ) -> StreamResult:
        stage_finish = 0.0
        windows: list[WindowStats] = []
        window_start = 0.0
        window_inputs = 0
        window_index = 0
        energy_total = 0.0

        base_mhz = self.cgra.dvfs.normal.frequency_mhz
        for item in inputs:
            prev_stage_done = 0.0
            for stage in self.app.stages:
                stage_done = prev_stage_done
                for kernel in stage:
                    name = kernel.name
                    start = max(prev_stage_done, self.prev_finish[name])
                    latency = latency_of(kernel, item)
                    finish = start + latency
                    self.prev_finish[name] = finish
                    stage_done = max(stage_done, finish)
                prev_stage_done = stage_done
            stage_finish = max(stage_finish, prev_stage_done)
            window_inputs += 1

            if window_inputs == window or item is inputs[-1]:
                duration = stage_finish - window_start
                power = self._power_mw(level_name_of)
                energy = power * (duration / base_mhz) * 1e-3  # mW*us -> uJ
                stats = WindowStats(
                    index=window_index,
                    start_cycle=window_start,
                    end_cycle=stage_finish,
                    inputs=window_inputs,
                    energy_uj=energy,
                    levels={
                        p.kernel.name: level_name_of(p.kernel.name)
                        for p in self.partition.placements
                    },
                    frequency_mhz=base_mhz,
                )
                windows.append(stats)
                energy_total += energy
                tracer = obs.current_tracer()
                if tracer is not None:
                    # Logical span on the simulated-cycles track: the
                    # window's extent in base cycles, the levels its
                    # kernels ran at, and its energy.
                    tracer.add_span(
                        f"window[{window_index}]",
                        category="streaming",
                        start_ns=int(window_start * 1000),
                        dur_ns=int(duration * 1000),
                        track=obs.SIM_TRACK,
                        app=self.app.name,
                        strategy=strategy,
                        inputs=window_inputs,
                        energy_uj=round(energy, 3),
                        power_mw=round(power, 3),
                        levels=dict(stats.levels),
                    )
                registry = obs.metrics()
                registry.counter("streaming.windows").inc()
                registry.counter("streaming.inputs").inc(window_inputs)
                on_window_end()
                window_start = stage_finish
                window_inputs = 0
                window_index += 1

        return StreamResult(
            app=self.app.name,
            strategy=strategy,
            makespan_cycles=stage_finish,
            total_energy_uj=energy_total,
            inputs=len(inputs),
            windows=windows,
            frequency_mhz=base_mhz,
        )

    def _power_mw(self, level_name_of) -> float:
        dvfs = self.cgra.dvfs
        total = 0.0
        used_islands = 0
        for placement in self.partition.placements:
            level = dvfs.level_named(level_name_of(placement.kernel.name))
            total += self.kernel_tiles[placement.kernel.name] * (
                level_tile_power_mw(self.params, level,
                                    self.params.streaming_activity)
            )
            used_islands += len(placement.island_ids)
        # Unallocated islands are power gated.
        gated_tiles = self.cgra.num_tiles - sum(self.kernel_tiles.values())
        total += gated_tiles * level_tile_power_mw(self.params,
                                                   dvfs.power_gated)
        total += (
            self.params.controller_mw() * self.params.island_controller_scale
            * len(self.cgra.islands)
        )
        total += self.sram.power_mw(dvfs.normal.frequency_mhz,
                                    self.params.sram_activity)
        return total


def simulate_stream(partition: Partition, inputs: list[StreamInput],
                    window: int = 10,
                    params: PowerParams = DEFAULT_POWER_PARAMS,
                    controller: DVFSController | None = None) -> StreamResult:
    """Run the ICED configuration: fixed partition, dynamic DVFS."""
    sim = _PipelineSim(partition, params)
    controller = controller or DVFSController(
        dvfs=partition.cgra.dvfs,
        kernel_names=[p.kernel.name for p in partition.placements],
        window=window,
    )

    def latency_of(kernel, item) -> float:
        level = controller.level_of(kernel.name)
        ii = partition.placement_of(kernel.name).ii
        cycles = kernel.iterations(item) * ii * max(level.slowdown, 1)
        controller.record_execution(kernel.name, cycles)
        return cycles

    return sim.run(
        inputs, window,
        latency_of=latency_of,
        level_name_of=lambda name: controller.level_of(name).name,
        on_window_end=controller.end_of_window,
        strategy="iced",
    )
