"""Streaming pipeline simulation and energy accounting.

The pipeline recurrence is the standard one: kernel k starts input i
once (a) every kernel of the previous stage finished input i and
(b) k itself finished input i-1. Per-input kernel latency is
``iterations(input) * II * slowdown(level)`` base cycles. Window
boundaries (every ``window`` inputs leaving the last stage) trigger the
DVFS controller (ICED) or the island re-shaper (DRIPS).

Energy integrates per window: each kernel's islands burn their level's
tile power for the window's duration (idle-but-clocked tiles burn like
busy ones at the same level — which is precisely the waste DVFS
recovers), plus island DVFS controllers and the SPM.

Two engines share that contract:

* :class:`_PipelineSim` — the scalar reference: one input at a time
  through nested Python loops, trivially auditable.
* :class:`FastPipelineSim` — window-batched and numpy-vectorized.
  Levels (and DRIPS shapes) only change at window boundaries, so
  within a window every kernel's latency vector is known up front and
  the recurrence ``finish[i] = max(s[i], finish[i-1]) + lat[i]``
  becomes a max-plus scan: with ``C = cumsum(lat)``,
  ``finish[i] = C[i] + max(carry, max_{j<=i}(s[j] - C[j-1]))`` —
  a ``cumsum`` plus a ``maximum.accumulate``. Every quantity involved
  is an integer-valued float64 far below 2**53 (iterations, IIs and
  slowdowns are integers), so each operation is exact and the scan is
  **bit-identical** to the sequential recurrence, not merely close.
  Strategies whose latencies are fractional (DRIPS charges
  ``busy/window`` reshape penalties) opt out of the numpy scan
  (``vector_ok = False``) and run an exact sequential scan in the
  scalar engine's operation order instead — still window-batched, so
  they keep the batched iteration-model evaluation and power
  memoization. The differential hypothesis suite pins equality of the
  full ``StreamResult``/``WindowStats``/decision stream.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.power.model import (
    DEFAULT_POWER_PARAMS,
    PowerParams,
    level_tile_power_mw,
)
from repro.power.sram import SRAMModel
from repro.streaming.controller import DVFSController
from repro.streaming.partitioner import Partition
from repro.streaming.stage import (
    FeatureBlock,
    KernelStage,
    StreamInput,
    blocks_of,
)

#: Below this window size the numpy scan's per-call overhead outweighs
#: the vectorization win, so the fast engine runs its exact Python-list
#: scan instead (identical results either way — the threshold is purely
#: a speed knob).
_VECTOR_WINDOW_MIN = 24

#: Buckets (wall ms) for the per-window decision latency histogram —
#: decisions are microsecond-scale, far below the default buckets.
_DECISION_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                     1.0, 5.0, 25.0)


@dataclass
class WindowStats:
    """One observation window's outcome."""

    index: int
    start_cycle: float
    end_cycle: float
    inputs: int
    energy_uj: float
    levels: dict[str, str]
    frequency_mhz: float

    @property
    def duration_cycles(self) -> float:
        return self.end_cycle - self.start_cycle

    @property
    def power_mw(self) -> float:
        if self.duration_cycles <= 0:
            return 0.0
        return self.energy_uj * 1e3 / self._duration_us

    @property
    def _duration_us(self) -> float:
        return self.duration_cycles / self.frequency_mhz

    def perf_per_watt(self) -> float:
        """Inputs per microjoule — throughput per watt."""
        if self.energy_uj <= 0:
            return 0.0
        return self.inputs / self.energy_uj


@dataclass
class StreamResult:
    """The outcome of streaming a whole input set."""

    app: str
    strategy: str
    makespan_cycles: float
    total_energy_uj: float
    inputs: int
    frequency_mhz: float
    windows: list[WindowStats] = field(default_factory=list)

    @property
    def makespan_us(self) -> float:
        return self.makespan_cycles / self.frequency_mhz

    @property
    def average_power_mw(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return self.total_energy_uj * 1e3 / self.makespan_us

    @property
    def throughput_per_us(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return self.inputs / self.makespan_us

    def perf_per_watt(self) -> float:
        if self.total_energy_uj <= 0:
            return 0.0
        return self.inputs / self.total_energy_uj


class _PipelineSim:
    """Shared pipeline-recurrence machinery for ICED and DRIPS runs."""

    def __init__(self, partition: Partition,
                 params: PowerParams = DEFAULT_POWER_PARAMS):
        self.partition = partition
        self.app = partition.app
        self.cgra = partition.cgra
        self.params = params
        spm = self.cgra.spm
        self.sram = SRAMModel(size_bytes=spm.size_bytes,
                              num_banks=spm.num_banks)
        self.kernel_tiles = {
            p.kernel.name: len(p.tile_ids(self.cgra))
            for p in partition.placements
        }
        self.prev_finish: dict[str, float] = {
            p.kernel.name: 0.0 for p in partition.placements
        }

    def run(self, inputs: list[StreamInput], window: int,
            latency_of, level_name_of, on_window_end, strategy: str,
            ) -> StreamResult:
        wall_start = time.perf_counter()
        stage_finish = 0.0
        windows: list[WindowStats] = []
        window_start = 0.0
        window_inputs = 0
        window_index = 0
        energy_total = 0.0

        base_mhz = self.cgra.dvfs.normal.frequency_mhz
        last_index = len(inputs) - 1
        for index, item in enumerate(inputs):
            prev_stage_done = 0.0
            for stage in self.app.stages:
                stage_done = prev_stage_done
                for kernel in stage:
                    name = kernel.name
                    start = max(prev_stage_done, self.prev_finish[name])
                    latency = latency_of(kernel, item)
                    finish = start + latency
                    self.prev_finish[name] = finish
                    stage_done = max(stage_done, finish)
                prev_stage_done = stage_done
            stage_finish = max(stage_finish, prev_stage_done)
            window_inputs += 1

            if window_inputs == window or index == last_index:
                duration = stage_finish - window_start
                power = self._power_mw(level_name_of)
                energy = power * (duration / base_mhz) * 1e-3  # mW*us -> uJ
                stats = WindowStats(
                    index=window_index,
                    start_cycle=window_start,
                    end_cycle=stage_finish,
                    inputs=window_inputs,
                    energy_uj=energy,
                    levels={
                        p.kernel.name: level_name_of(p.kernel.name)
                        for p in self.partition.placements
                    },
                    frequency_mhz=base_mhz,
                )
                windows.append(stats)
                energy_total += energy
                _emit_window_span(self.app.name, strategy, window_index,
                                  window_start, duration, window_inputs,
                                  energy, power, stats.levels)
                registry = obs.metrics()
                registry.counter("streaming.windows").inc()
                registry.counter("streaming.inputs").inc(window_inputs)
                _timed_window_end(registry, on_window_end)
                window_start = stage_finish
                window_inputs = 0
                window_index += 1

        _set_throughput_gauge(len(inputs), wall_start)
        return StreamResult(
            app=self.app.name,
            strategy=strategy,
            makespan_cycles=stage_finish,
            total_energy_uj=energy_total,
            inputs=len(inputs),
            frequency_mhz=base_mhz,
            windows=windows,
        )

    def _power_mw(self, level_name_of) -> float:
        dvfs = self.cgra.dvfs
        total = 0.0
        used_islands = 0
        for placement in self.partition.placements:
            level = dvfs.level_named(level_name_of(placement.kernel.name))
            total += self.kernel_tiles[placement.kernel.name] * (
                level_tile_power_mw(self.params, level,
                                    self.params.streaming_activity)
            )
            used_islands += len(placement.island_ids)
        # Unallocated islands are power gated.
        gated_tiles = self.cgra.num_tiles - sum(self.kernel_tiles.values())
        total += gated_tiles * level_tile_power_mw(self.params,
                                                   dvfs.power_gated)
        total += (
            self.params.controller_mw() * self.params.island_controller_scale
            * len(self.cgra.islands)
        )
        total += self.sram.power_mw(dvfs.normal.frequency_mhz,
                                    self.params.sram_activity)
        return total


def _emit_window_span(app_name: str, strategy: str, window_index: int,
                      window_start: float, duration: float,
                      window_inputs: int, energy: float, power: float,
                      levels: dict[str, str]) -> None:
    tracer = obs.current_tracer()
    if tracer is None:
        return
    # Logical span on the simulated-cycles track: the window's extent
    # in base cycles, the levels its kernels ran at, and its energy.
    tracer.add_span(
        f"window[{window_index}]",
        category="streaming",
        start_ns=int(window_start * 1000),
        dur_ns=int(duration * 1000),
        track=obs.SIM_TRACK,
        app=app_name,
        strategy=strategy,
        inputs=window_inputs,
        energy_uj=round(energy, 3),
        power_mw=round(power, 3),
        levels=dict(levels),
    )


def _timed_window_end(registry, on_window_end) -> None:
    t0 = time.perf_counter()
    on_window_end()
    registry.histogram("streaming.decision_latency_ms",
                       buckets=_DECISION_BUCKETS).observe(
        (time.perf_counter() - t0) * 1e3
    )


def _set_throughput_gauge(total_inputs: int, wall_start: float) -> None:
    elapsed = time.perf_counter() - wall_start
    if elapsed > 0:
        obs.metrics().gauge("streaming.inputs_per_sec").set(
            total_inputs / elapsed
        )


def _maxplus_scan_array(s: np.ndarray, carry: float,
                        lat: np.ndarray) -> np.ndarray:
    """``finish[i] = max(s[i], finish[i-1]) + lat[i]`` with
    ``finish[-1] = carry``, vectorized.

    Unrolling the recurrence:
    ``finish[i] = C[i] + max(carry, max_{j<=i}(s[j] - C[j-1]))`` with
    ``C = cumsum(lat)`` and ``C[-1] = 0``. For integer-valued float64
    operands below 2**53 every subtraction/summation here is exact, so
    the result is bit-identical to evaluating the recurrence
    sequentially.
    """
    c = np.add.accumulate(lat)
    g = np.empty_like(s)
    g[0] = s[0] if s[0] >= carry else carry
    np.subtract(s[1:], c[:-1], out=g[1:])
    np.maximum.accumulate(g, out=g)
    g += c
    return g


def _maxplus_scan_list(s: list[float], carry: float,
                       lat: list[float]) -> list[float]:
    """The same recurrence as :func:`_maxplus_scan_array`, evaluated
    sequentially in the scalar engine's exact operation order — used
    for small windows and for strategies with fractional latencies
    (where the cumsum form could round differently)."""
    out = []
    prev = carry
    for done, latency in zip(s, lat):
        start = done if done >= prev else prev
        prev = start + latency
        out.append(prev)
    return out


def _window_iteration_chunks(
    blocks: Iterable[FeatureBlock],
    kernels: Sequence[KernelStage],
    window: int,
) -> Iterator[tuple[dict[str, np.ndarray], int]]:
    """Re-chunk a block stream into per-window iteration-count arrays.

    Iteration models evaluate once per *block* (amortizing Python
    dispatch over thousands of inputs); the resulting int64 arrays are
    sliced into window-sized pieces, stitching across block boundaries
    as needed. Yields ``({kernel_name: counts}, n_inputs)`` with
    ``n_inputs == window`` everywhere except a final partial window.
    """
    names = [k.name for k in kernels]
    pending: dict[str, list[np.ndarray]] = {name: [] for name in names}
    buffered = 0
    for block in blocks:
        counts = {k.name: k.iterations_block(block) for k in kernels}
        n = len(block)
        pos = 0
        while pos < n:
            take = min(window - buffered, n - pos)
            for name in names:
                pending[name].append(counts[name][pos:pos + take])
            buffered += take
            pos += take
            if buffered == window:
                yield {name: _cat(pending[name]) for name in names}, window
                pending = {name: [] for name in names}
                buffered = 0
    if buffered:
        yield {name: _cat(pending[name]) for name in names}, buffered


def _cat(parts: list[np.ndarray]) -> np.ndarray:
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


class FastPipelineSim(_PipelineSim):
    """Window-batched, vectorized pipeline simulation.

    Consumes the stream as :class:`FeatureBlock` chunks (never the
    whole input list), advances the recurrence one *window* at a time
    via max-plus scans, and memoizes the power model per
    (levels, shape) configuration. Produces results float-identical to
    :class:`_PipelineSim` — same ``WindowStats`` sequence, same
    decisions, same makespan/energy.
    """

    def __init__(self, partition: Partition,
                 params: PowerParams = DEFAULT_POWER_PARAMS):
        super().__init__(partition, params)
        self._power_memo: dict[tuple, float] = {}
        self._placement_names = [
            p.kernel.name for p in partition.placements
        ]

    def _power_mw_cached(self, level_names: tuple[str, ...],
                         level_name_of) -> float:
        key = (
            level_names,
            tuple(self.kernel_tiles[name]
                  for name in self._placement_names),
        )
        power = self._power_memo.get(key)
        if power is None:
            power = self._power_mw(level_name_of)
            self._power_memo[key] = power
        return power

    def run_blocks(self, blocks: Iterable[FeatureBlock], window: int,
                   adapter, *, keep_windows: bool = True) -> StreamResult:
        """Stream ``blocks`` through the pipeline under ``adapter``.

        ``adapter`` supplies the strategy: per-window latency vectors
        (with whatever bookkeeping the strategy's controller needs),
        level names for the power model, and the window-end hook.
        ``keep_windows=False`` drops the per-window stats list so a
        million-input run holds O(window) state.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        wall_start = time.perf_counter()
        stage_finish = 0.0
        windows: list[WindowStats] = []
        window_start = 0.0
        window_index = 0
        energy_total = 0.0
        total_inputs = 0

        base_mhz = self.cgra.dvfs.normal.frequency_mhz
        kernels = self.app.all_kernels()
        use_vector = adapter.vector_ok and window >= _VECTOR_WINDOW_MIN
        level_name_of = adapter.level_name_of
        on_window_end = adapter.on_window_end
        placement_names = self._placement_names
        # Hoisted instruments: one registry lookup per run, not per
        # window.
        registry = obs.metrics()
        windows_counter = registry.counter("streaming.windows")
        inputs_counter = registry.counter("streaming.inputs")
        decision_hist = registry.histogram("streaming.decision_latency_ms",
                                           buckets=_DECISION_BUCKETS)

        for counts, n_inputs in _window_iteration_chunks(
                blocks, kernels, window):
            total_inputs += n_inputs
            if use_vector:
                last_done = self._advance_window_vector(counts, n_inputs,
                                                        adapter)
            else:
                last_done = self._advance_window_list(counts, n_inputs,
                                                      adapter)
            # Last-stage finishes increase strictly (every latency is
            # >= 1 cycle), so the window's running max is its final
            # element.
            if last_done > stage_finish:
                stage_finish = last_done

            duration = stage_finish - window_start
            level_names = tuple(
                level_name_of(name) for name in placement_names
            )
            power = self._power_mw_cached(level_names, level_name_of)
            energy = power * (duration / base_mhz) * 1e-3  # mW*us -> uJ
            levels = dict(zip(placement_names, level_names))
            if keep_windows:
                windows.append(WindowStats(
                    index=window_index,
                    start_cycle=window_start,
                    end_cycle=stage_finish,
                    inputs=n_inputs,
                    energy_uj=energy,
                    levels=levels,
                    frequency_mhz=base_mhz,
                ))
            energy_total += energy
            _emit_window_span(self.app.name, adapter.strategy, window_index,
                              window_start, duration, n_inputs,
                              energy, power, levels)
            windows_counter.inc()
            inputs_counter.inc(n_inputs)
            t0 = time.perf_counter()
            on_window_end()
            decision_hist.observe((time.perf_counter() - t0) * 1e3)
            window_start = stage_finish
            window_index += 1

        _set_throughput_gauge(total_inputs, wall_start)
        return StreamResult(
            app=self.app.name,
            strategy=adapter.strategy,
            makespan_cycles=stage_finish,
            total_energy_uj=energy_total,
            inputs=total_inputs,
            frequency_mhz=base_mhz,
            windows=windows,
        )

    _zeros: np.ndarray | None = None

    def _advance_window_vector(self, counts: dict[str, np.ndarray],
                               n_inputs: int, adapter) -> float:
        zeros = self._zeros
        if zeros is None or len(zeros) != n_inputs:
            zeros = self._zeros = np.zeros(n_inputs)
        prev_stage: np.ndarray | None = None
        for stage in self.app.stages:
            s = zeros if prev_stage is None else prev_stage
            stage_done: np.ndarray | None = None
            for kernel in stage:
                name = kernel.name
                lat = adapter.latency_window(name, counts[name])
                finish = _maxplus_scan_array(s, self.prev_finish[name], lat)
                self.prev_finish[name] = float(finish[-1])
                if stage_done is None:
                    stage_done = finish
                else:
                    np.maximum(stage_done, finish, out=stage_done)
            prev_stage = stage_done
        return float(prev_stage[-1])

    def _advance_window_list(self, counts: dict[str, np.ndarray],
                             n_inputs: int, adapter) -> float:
        prev_stage: list[float] = [0.0] * n_inputs
        for stage in self.app.stages:
            stage_done: list[float] | None = None
            for kernel in stage:
                name = kernel.name
                lat = adapter.latency_window(name, counts[name])
                if not isinstance(lat, list):
                    lat = lat.tolist()
                finish = _maxplus_scan_list(prev_stage,
                                            self.prev_finish[name], lat)
                self.prev_finish[name] = float(finish[-1])
                if stage_done is None:
                    stage_done = finish
                else:
                    stage_done = [
                        a if a >= b else b
                        for a, b in zip(stage_done, finish)
                    ]
            prev_stage = stage_done
        return float(prev_stage[-1])


class _FastIced:
    """Fast-engine strategy adapter for the ICED DVFS configuration.

    Latencies are ``iterations * II * slowdown`` — products of
    integers — so the numpy scan applies. The controller's exeTable
    gets the window's exact busy sum (integer summation is
    order-independent), making decisions identical to the scalar
    engine's per-input accumulation.
    """

    vector_ok = True
    strategy = "iced"

    def __init__(self, partition: Partition, controller: DVFSController):
        self.controller = controller
        self._ii = {p.kernel.name: p.ii for p in partition.placements}

    def level_name_of(self, name: str) -> str:
        return self.controller.level_of(name).name

    def latency_window(self, name: str, counts: np.ndarray) -> np.ndarray:
        level = self.controller.level_of(name)
        # float multiplier -> float64 latencies in one op; exact, since
        # every operand and product is an integer below 2**53.
        factor = float(self._ii[name] * max(level.slowdown, 1))
        lat = counts * factor
        self.controller.record_execution(name, float(lat.sum()))
        return lat

    def on_window_end(self) -> None:
        self.controller.end_of_window()


def _as_blocks(stream) -> Iterable[FeatureBlock]:
    """Accept either a materialized ``StreamInput`` sequence or an
    iterable of feature blocks."""
    if isinstance(stream, (list, tuple)):
        if not stream:
            return iter(())
        if isinstance(stream[0], StreamInput):
            return blocks_of(stream)
    return stream


def simulate_stream(partition: Partition, inputs: list[StreamInput],
                    window: int = 10,
                    params: PowerParams = DEFAULT_POWER_PARAMS,
                    controller: DVFSController | None = None) -> StreamResult:
    """Run the ICED configuration: fixed partition, dynamic DVFS
    (scalar reference engine)."""
    sim = _PipelineSim(partition, params)
    controller = controller or DVFSController(
        dvfs=partition.cgra.dvfs,
        kernel_names=[p.kernel.name for p in partition.placements],
        window=window,
    )

    def latency_of(kernel, item) -> float:
        level = controller.level_of(kernel.name)
        ii = partition.placement_of(kernel.name).ii
        cycles = kernel.iterations(item) * ii * max(level.slowdown, 1)
        controller.record_execution(kernel.name, cycles)
        return cycles

    return sim.run(
        inputs, window,
        latency_of=latency_of,
        level_name_of=lambda name: controller.level_of(name).name,
        on_window_end=controller.end_of_window,
        strategy="iced",
    )


def fast_simulate_stream(partition: Partition, stream, window: int = 10,
                         params: PowerParams = DEFAULT_POWER_PARAMS,
                         controller: DVFSController | None = None,
                         keep_windows: bool = True) -> StreamResult:
    """Run the ICED configuration on the fast engine.

    ``stream`` is either an iterable of :class:`FeatureBlock` (the
    constant-memory path) or a materialized ``StreamInput`` list (auto
    chunked). Float-identical to :func:`simulate_stream`.
    """
    sim = FastPipelineSim(partition, params)
    controller = controller or DVFSController(
        dvfs=partition.cgra.dvfs,
        kernel_names=[p.kernel.name for p in partition.placements],
        window=window,
    )
    adapter = _FastIced(partition, controller)
    return sim.run_blocks(_as_blocks(stream), window, adapter,
                          keep_windows=keep_windows)
