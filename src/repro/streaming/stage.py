"""Pipeline stages and stream inputs."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.dfg.graph import DFG


@dataclass(frozen=True)
class StreamInput:
    """One input instance of a streaming application.

    ``features`` carries whatever the iteration models consume — for
    the GCN stream the graph's node count and non-zeros, for the LU
    stream the matrix order and density.
    """

    index: int
    features: dict[str, float] = field(hash=False)

    def get(self, key: str) -> float:
        return self.features[key]


@dataclass
class KernelStage:
    """One kernel of a streaming pipeline.

    Attributes:
        name: Kernel name (Table I row).
        dfg: The kernel's dataflow graph.
        iteration_model: Input -> loop iterations this kernel executes
            for that input. Data-dependent kernels (SpMV-like) vary
            with the input; fixed-shape kernels return a constant.
        preferred_islands: Table I's island allocation for the 6x6
            prototype (used as the partitioner's search seed).
    """

    name: str
    dfg: DFG
    iteration_model: Callable[[StreamInput], int]
    preferred_islands: int = 1

    def iterations(self, item: StreamInput) -> int:
        count = int(self.iteration_model(item))
        return max(1, count)

    def __repr__(self) -> str:
        return f"KernelStage({self.name}, pref={self.preferred_islands})"
