"""Pipeline stages and stream inputs.

Two input representations coexist:

* :class:`StreamInput` — one input instance as a Python object, what
  the scalar reference engine and the iteration models consume;
* :class:`FeatureBlock` — a *batch* of consecutive inputs as a dict of
  equal-length numpy feature arrays, what the vectorized fast engine
  consumes. A block answers the same ``get(key)`` protocol as a
  ``StreamInput`` (returning arrays instead of scalars), so iteration
  models written as pure feature arithmetic work on both without
  change.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.dfg.graph import DFG

#: Default batch size for block-based input pipelines. Big enough that
#: per-block Python overhead vanishes, small enough that a streaming
#: run holds only a few hundred KB of input state.
DEFAULT_BLOCK_SIZE = 8192


@dataclass(frozen=True)
class StreamInput:
    """One input instance of a streaming application.

    ``features`` carries whatever the iteration models consume — for
    the GCN stream the graph's node count and non-zeros, for the LU
    stream the matrix order and density.
    """

    index: int
    features: dict[str, float] = field(hash=False)

    def get(self, key: str) -> float:
        return self.features[key]


class FeatureBlock:
    """A batch of consecutive stream inputs as feature arrays.

    ``get(key)`` returns the whole column (a float64 array), mirroring
    ``StreamInput.get``; ``row(i)`` materializes one input as a
    :class:`StreamInput` for scalar-only iteration models.
    """

    __slots__ = ("features", "start_index", "_length")

    def __init__(self, features: dict[str, np.ndarray],
                 start_index: int = 0):
        self.features = features
        self.start_index = start_index
        lengths = {len(v) for v in features.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged feature block: lengths {lengths}")
        self._length = lengths.pop() if lengths else 0

    def get(self, key: str) -> np.ndarray:
        return self.features[key]

    def __len__(self) -> int:
        return self._length

    def row(self, i: int) -> StreamInput:
        """Input ``i`` of the block as a scalar :class:`StreamInput`."""
        return StreamInput(self.start_index + i, {
            key: float(column[i]) for key, column in self.features.items()
        })

    def rows(self) -> Iterator[StreamInput]:
        for i in range(self._length):
            yield self.row(i)

    def __repr__(self) -> str:
        keys = ",".join(sorted(self.features))
        return (f"FeatureBlock({self._length} inputs @ "
                f"{self.start_index}: {keys})")


def blocks_of(inputs: Sequence[StreamInput],
              block_size: int = DEFAULT_BLOCK_SIZE,
              ) -> Iterator[FeatureBlock]:
    """Chunk a materialized ``StreamInput`` list into feature blocks.

    The bridge from the scalar representation to the fast engine: the
    arrays hold exactly the inputs' feature values, so a fast run over
    ``blocks_of(inputs)`` sees the same stream the reference engine
    sees over ``inputs``.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    for start in range(0, len(inputs), block_size):
        chunk = inputs[start:start + block_size]
        keys = list(chunk[0].features)
        yield FeatureBlock(
            {k: np.array([item.features[k] for item in chunk],
                         dtype=np.float64) for k in keys},
            start_index=chunk[0].index,
        )


def inputs_of(blocks: Iterable[FeatureBlock]) -> list[StreamInput]:
    """Materialize a block stream back into ``StreamInput`` objects
    (tests and the scalar reference engine use this)."""
    return [row for block in blocks for row in block.rows()]


@dataclass
class KernelStage:
    """One kernel of a streaming pipeline.

    Attributes:
        name: Kernel name (Table I row).
        dfg: The kernel's dataflow graph.
        iteration_model: Input -> loop iterations this kernel executes
            for that input. Data-dependent kernels (SpMV-like) vary
            with the input; fixed-shape kernels return a constant.
        preferred_islands: Table I's island allocation for the 6x6
            prototype (used as the partitioner's search seed).
        batch_model: Optional vectorized twin of ``iteration_model``:
            FeatureBlock -> per-input iteration counts (array-like).
            Only set when its floating-point results are bit-identical
            to mapping ``iteration_model`` over the rows — numpy
            elementwise ``*``/``+`` on float64 qualify, ``**`` does
            not (numpy's SIMD pow rounds differently than libm).
            Without one, :meth:`iterations_block` falls back to the
            scalar model row by row, which is always exact.
    """

    name: str
    dfg: DFG
    iteration_model: Callable[[StreamInput], int]
    preferred_islands: int = 1
    batch_model: Callable[[FeatureBlock], object] | None = None

    def iterations(self, item: StreamInput) -> int:
        count = int(self.iteration_model(item))
        return max(1, count)

    def iterations_block(self, block: FeatureBlock) -> np.ndarray:
        """Per-input iteration counts for a whole block (int64 array).

        Element ``i`` equals ``self.iterations(block.row(i))`` exactly:
        the vectorized path truncates toward zero (what ``int()`` does)
        and clamps at 1, and models without a ``batch_model`` are
        evaluated row by row through the scalar path.
        """
        if self.batch_model is not None:
            counts = np.asarray(self.batch_model(block))
            if counts.shape == ():  # constant (fixed-shape kernel)
                return np.full(len(block), max(1, int(counts)),
                               dtype=np.int64)
            if counts.shape != (len(block),):
                raise ValueError(
                    f"batch model of {self.name!r} returned shape "
                    f"{counts.shape} for a {len(block)}-input block"
                )
            ints = counts.astype(np.int64, copy=False)
            return np.maximum(ints, 1)
        return np.array([self.iterations(row) for row in block.rows()],
                        dtype=np.int64)

    def __repr__(self) -> str:
        return f"KernelStage({self.name}, pref={self.preferred_islands})"
