"""Multi-kernel data-dependent streaming applications (sections III-B, IV-B).

A streaming application is a pipeline of kernels whose per-input
execution time varies with the input (SpMV time follows the graph's
non-zeros). The compiler partitions the fabric's islands across the
kernels offline; at runtime the DVFS controller watches a 10-input
window, raises the bottleneck kernel's islands one level and lowers the
others — trading idle time in non-bottleneck kernels for energy, which
is the Fig 13 experiment. DRIPS, the comparison point, instead
re-allocates islands toward the bottleneck at full voltage.

Two simulation engines share one contract (see
``docs/streaming_runtime.md``): the scalar reference
(``simulate_stream`` / ``simulate_drips`` / ``simulate_static``) and
the window-batched vectorized fast engine (``fast_simulate_*``), which
produces float-identical results while streaming million-input runs in
O(window) memory from lazy ``FeatureBlock`` chunks.

The traffic-scenario library (``repro.streaming.scenarios``) names
workload regimes — diurnal, bursty, phase-shifting, trace replay,
control-flow-heavy — and ``repro.streaming.envelopes`` turns each into
a per-strategy energy/latency envelope gated by committed goldens
(``docs/streaming_scenarios.md``).
"""

from repro.streaming.stage import (
    DEFAULT_BLOCK_SIZE,
    FeatureBlock,
    KernelStage,
    StreamInput,
    blocks_of,
    inputs_of,
)
from repro.streaming.app import StreamingApp, branchy_app, gcn_app, lu_app
from repro.streaming.workloads import (
    EnzymeGraphStream,
    SegmentedWorkload,
    SparseMatrixStream,
    skip_blocks,
    take_inputs,
)
from repro.streaming.scenarios import (
    Scenario,
    ScenarioSpec,
    TraceReplayStream,
    describe_scenarios,
    get_scenario,
    make_scenario,
    register_scenario,
    scenario_names,
)
from repro.streaming.envelopes import (
    STRATEGIES,
    all_envelopes,
    compare_envelopes,
    load_envelope,
    scenario_envelope,
    summarize_result,
    write_envelope,
)
from repro.streaming.partitioner import Partition, partition_app, streaming_cgra
from repro.streaming.controller import DVFSController
from repro.streaming.engine import (
    FastPipelineSim,
    StreamResult,
    WindowStats,
    fast_simulate_stream,
    simulate_stream,
)
from repro.streaming.drips import (
    fast_simulate_drips,
    fast_simulate_static,
    simulate_drips,
    simulate_static,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "FeatureBlock",
    "KernelStage",
    "StreamInput",
    "blocks_of",
    "inputs_of",
    "StreamingApp",
    "branchy_app",
    "gcn_app",
    "lu_app",
    "EnzymeGraphStream",
    "SegmentedWorkload",
    "SparseMatrixStream",
    "skip_blocks",
    "take_inputs",
    "Scenario",
    "ScenarioSpec",
    "TraceReplayStream",
    "describe_scenarios",
    "get_scenario",
    "make_scenario",
    "register_scenario",
    "scenario_names",
    "STRATEGIES",
    "all_envelopes",
    "compare_envelopes",
    "load_envelope",
    "scenario_envelope",
    "summarize_result",
    "write_envelope",
    "Partition",
    "partition_app",
    "streaming_cgra",
    "DVFSController",
    "FastPipelineSim",
    "StreamResult",
    "WindowStats",
    "fast_simulate_stream",
    "fast_simulate_drips",
    "fast_simulate_static",
    "simulate_stream",
    "simulate_drips",
    "simulate_static",
]
