"""Multi-kernel data-dependent streaming applications (sections III-B, IV-B).

A streaming application is a pipeline of kernels whose per-input
execution time varies with the input (SpMV time follows the graph's
non-zeros). The compiler partitions the fabric's islands across the
kernels offline; at runtime the DVFS controller watches a 10-input
window, raises the bottleneck kernel's islands one level and lowers the
others — trading idle time in non-bottleneck kernels for energy, which
is the Fig 13 experiment. DRIPS, the comparison point, instead
re-allocates islands toward the bottleneck at full voltage.
"""

from repro.streaming.stage import KernelStage, StreamInput
from repro.streaming.app import StreamingApp, gcn_app, lu_app
from repro.streaming.workloads import EnzymeGraphStream, SparseMatrixStream
from repro.streaming.partitioner import Partition, partition_app, streaming_cgra
from repro.streaming.controller import DVFSController
from repro.streaming.engine import StreamResult, simulate_stream
from repro.streaming.drips import simulate_drips, simulate_static

__all__ = [
    "KernelStage",
    "StreamInput",
    "StreamingApp",
    "gcn_app",
    "lu_app",
    "EnzymeGraphStream",
    "SparseMatrixStream",
    "Partition",
    "partition_app",
    "streaming_cgra",
    "DVFSController",
    "StreamResult",
    "simulate_stream",
    "simulate_drips",
    "simulate_static",
]
