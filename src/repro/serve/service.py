"""The compile service behind ``repro serve``.

One long-lived :class:`CompileService` fronts the compilation pipeline
for many concurrent clients, the way one CLI invocation never could:

* **admission control** — a bounded two-class priority queue.
  ``interactive`` requests are always dequeued before ``batch`` ones;
  when the backlog reaches ``max_queue`` a *new* request is refused
  with :class:`QueueFullError` (HTTP 429 + ``Retry-After``) instead of
  growing the queue without bound. Coalesced joins never consume a
  queue slot — attaching a waiter to work already promised is free.
* **request coalescing** — every request is fingerprinted through the
  existing :func:`repro.compile.fingerprint.mapping_cache_key`
  machinery (plus the post-pass fields the engine key deliberately
  excludes: strategy and seed). Identical in-flight requests share one
  future and therefore one compile; all waiters receive the *same*
  serialized payload, byte for byte.
* **a shared cache** — worker threads compile through
  :class:`~repro.compile.parallel.SweepExecutor` items over one
  :class:`~repro.compile.diskcache.TieredCache`, so a request that
  misses the coalescing window still hits warm artifacts, and N
  daemons pointed at one artifact store stay isolated through
  per-server cache shards (``DiskCache(root, shard=...)``).
* **observability** — every request opens a ``serve.request`` span and
  feeds the always-on metrics registry: ``serve.queue_depth``,
  ``serve.in_flight``, ``serve.coalesced``, ``serve.rejected`` and the
  ``serve.latency_ms`` / ``serve.queue_wait_ms`` / ``serve.compile_ms``
  histograms the load-test report aggregates.

The service is transport-agnostic: :mod:`repro.serve.server` puts an
HTTP/1.1 face on it, and the unit tests drive it directly.
"""

from __future__ import annotations

import asyncio
import hashlib
import heapq
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.arch.cgra import CGRA
from repro.compile.cache import MappingCache
from repro.compile.diskcache import DiskCache, TieredCache
from repro.compile.fingerprint import mapping_cache_key
from repro.compile.parallel import SweepExecutor, SweepItem
from repro.compile.pipeline import resolve_config
from repro.errors import MappingError
from repro.kernels.suite import kernel_names, load_kernel
from repro.mapper.backends import backend_names, resolve_strategy

#: Admission classes, in dequeue-precedence order.
PRIORITIES = ("interactive", "batch")

#: Default worker threads behind the queue.
DEFAULT_WORKERS = 2

#: Default queue bound (pending, not yet compiling).
DEFAULT_MAX_QUEUE = 64

#: Schema tag on every response payload.
RESPONSE_SCHEMA = 1


class RequestError(ValueError):
    """A malformed or unserviceable request (HTTP 400)."""


class QueueFullError(RuntimeError):
    """Admission control refused the request (HTTP 429)."""

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"compile queue is full; retry after {retry_after_s:g}s"
        )
        self.retry_after_s = retry_after_s


class ServiceClosedError(RuntimeError):
    """The service is draining and accepts no new work (HTTP 503)."""


def canonical_json(payload) -> str:
    """The repository-wide canonical encoding (sorted keys, compact)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _parse_shape(value, what: str) -> tuple[int, int]:
    if isinstance(value, str):
        rows, sep, cols = value.partition("x")
        if not sep:
            raise RequestError(f"{what} must look like '6x6', got {value!r}")
        try:
            shape = (int(rows), int(cols))
        except ValueError:
            raise RequestError(
                f"{what} must look like '6x6', got {value!r}"
            ) from None
    elif (isinstance(value, (list, tuple)) and len(value) == 2
          and all(isinstance(v, int) for v in value)):
        shape = (value[0], value[1])
    else:
        raise RequestError(f"{what} must be 'RxC' or [rows, cols]")
    if shape[0] < 1 or shape[1] < 1:
        raise RequestError(f"{what} dimensions must be positive")
    return shape


def _parse_tenant(value) -> str:
    """Validate the optional ``tenant`` identity tag: a short opaque
    token (no whitespace) or empty for anonymous requests."""
    if not isinstance(value, str):
        raise RequestError("tenant must be a string")
    if any(c.isspace() for c in value):
        raise RequestError(f"tenant must not contain whitespace: {value!r}")
    if len(value) > 128:
        raise RequestError("tenant must be at most 128 characters")
    return value


@dataclass(frozen=True)
class CompileRequest:
    """One validated ``POST /compile`` body."""

    kernel: str
    strategy: str = "iced"
    backend: str = "engine"
    unroll: int = 1
    cgra: tuple[int, int] = (6, 6)
    island: tuple[int, int] = (2, 2)
    seed: int = 0
    priority: str = "batch"
    tenant: str = ""

    @classmethod
    def from_dict(cls, body: dict) -> "CompileRequest":
        if not isinstance(body, dict):
            raise RequestError("request body must be a JSON object")
        unknown = set(body) - {
            "kernel", "strategy", "backend", "unroll", "cgra", "island",
            "seed", "priority", "tenant",
        }
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        kernel = body.get("kernel")
        if kernel not in kernel_names():
            raise RequestError(
                f"unknown kernel {kernel!r}; known: {kernel_names()}"
            )
        try:
            strategy = resolve_strategy(str(body.get("strategy", "iced")))
        except ValueError as exc:
            raise RequestError(str(exc)) from None
        backend = str(body.get("backend", "engine"))
        if backend not in backend_names():
            raise RequestError(
                f"unknown backend {backend!r}; known: {backend_names()}"
            )
        priority = str(body.get("priority", "batch"))
        if priority not in PRIORITIES:
            raise RequestError(
                f"unknown priority {priority!r}; known: {PRIORITIES}"
            )
        try:
            unroll = int(body.get("unroll", 1))
            seed = int(body.get("seed", 0))
        except (TypeError, ValueError):
            raise RequestError("unroll and seed must be integers") from None
        if unroll < 1:
            raise RequestError("unroll must be >= 1")
        return cls(
            kernel=kernel, strategy=strategy, backend=backend,
            unroll=unroll,
            cgra=_parse_shape(body.get("cgra", "6x6"), "cgra"),
            island=_parse_shape(body.get("island", "2x2"), "island"),
            seed=seed, priority=priority,
            tenant=_parse_tenant(body.get("tenant", "")),
        )

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel, "strategy": self.strategy,
            "backend": self.backend, "unroll": self.unroll,
            "cgra": list(self.cgra), "island": list(self.island),
            "seed": self.seed, "priority": self.priority,
            "tenant": self.tenant,
        }


@dataclass(frozen=True)
class StreamRequest:
    """One validated ``POST /stream`` body (a scenario run)."""

    scenario: str
    strategy: str = "iced"
    inputs: int = 120
    window: int = 10
    seed: int | None = None
    priority: str = "batch"
    tenant: str = ""

    @classmethod
    def from_dict(cls, body: dict) -> "StreamRequest":
        from repro.streaming.envelopes import STRATEGIES
        from repro.streaming.scenarios import scenario_names

        if not isinstance(body, dict):
            raise RequestError("request body must be a JSON object")
        unknown = set(body) - {
            "scenario", "strategy", "inputs", "window", "seed", "priority",
            "tenant",
        }
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        scenario = body.get("scenario")
        if scenario not in scenario_names():
            raise RequestError(
                f"unknown scenario {scenario!r}; known: {scenario_names()}"
            )
        strategy = str(body.get("strategy", "iced"))
        if strategy not in STRATEGIES:
            raise RequestError(
                f"unknown stream strategy {strategy!r}; "
                f"known: {STRATEGIES}"
            )
        priority = str(body.get("priority", "batch"))
        if priority not in PRIORITIES:
            raise RequestError(
                f"unknown priority {priority!r}; known: {PRIORITIES}"
            )
        try:
            inputs = int(body.get("inputs", 120))
            window = int(body.get("window", 10))
            seed = body.get("seed")
            seed = None if seed is None else int(seed)
        except (TypeError, ValueError):
            raise RequestError(
                "inputs, window and seed must be integers"
            ) from None
        if inputs < 1 or window < 1:
            raise RequestError("inputs and window must be >= 1")
        return cls(scenario=scenario, strategy=strategy, inputs=inputs,
                   window=window, seed=seed, priority=priority,
                   tenant=_parse_tenant(body.get("tenant", "")))

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario, "strategy": self.strategy,
            "inputs": self.inputs, "window": self.window,
            "seed": self.seed, "priority": self.priority,
            "tenant": self.tenant,
        }


@dataclass
class _Job:
    """One unit of promised work; every coalesced waiter shares it."""

    fingerprint: str
    kind: str                       # "compile" | "stream"
    request: object
    future: asyncio.Future = field(repr=False)
    enqueued_at: float = 0.0
    waiters: int = 1
    seq: int = 0
    #: Tenant tag of every waiter (joins included), for quota release.
    tenants: list[str] = field(default_factory=list)

    @property
    def priority_rank(self) -> int:
        return PRIORITIES.index(self.request.priority)


class CompileService:
    """The queue + coalescing + worker-pool core of ``repro serve``.

    Construct it, then :meth:`start` inside a running event loop;
    :meth:`submit` returns the (possibly shared) response future.
    ``compile_fn``/``stream_fn`` are test seams replacing the real
    pipeline calls — production code never passes them.
    """

    def __init__(self, *, workers: int = DEFAULT_WORKERS,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 cache_dir: str | None = None,
                 shard: str | None = None,
                 retry_after_s: float = 1.0,
                 tenant_quota: int | None = None,
                 compile_fn=None, stream_fn=None):
        self.workers = max(1, int(workers))
        self.max_queue = max(1, int(max_queue))
        self.retry_after_s = float(retry_after_s)
        self.tenant_quota = (None if tenant_quota is None
                             else max(1, int(tenant_quota)))
        self.cache_dir = cache_dir
        self.shard = shard
        memory = MappingCache()
        self.cache = (
            TieredCache(memory, DiskCache(cache_dir, shard=shard))
            if cache_dir else memory
        )
        self._compile_fn = compile_fn or self._pipeline_compile
        self._stream_fn = stream_fn or self._pipeline_stream
        self._heap: list[tuple[int, int, _Job]] = []
        self._heap_cond: asyncio.Condition | None = None
        self._inflight: dict[str, _Job] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._seq = 0
        self._tenant_pending: dict[str, int] = {}
        self._closing = False
        self._started_at = time.monotonic()
        # Per-process memos: fabrics and lowered DFGs are pure values
        # keyed by their constructor arguments, so fingerprinting a
        # request does not re-lower the kernel every time.
        self._fabric_memo: dict[tuple, CGRA] = {}
        self._dfg_memo: dict[tuple, object] = {}
        self._fp_memo: dict[object, str] = {}
        self._memo_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._heap_cond = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]
        self._started_at = time.monotonic()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish everything accepted.

        Every job already admitted (queued or compiling) resolves its
        future before the workers are torn down — no accepted request
        is ever dropped on the floor.
        """
        self._closing = True
        pending = [job.future for job in self._inflight.values()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for task in self._worker_tasks:
            task.cancel()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks,
                                 return_exceptions=True)
        self._worker_tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def closing(self) -> bool:
        return self._closing

    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    # -- fingerprints -------------------------------------------------------

    def _fabric(self, request: CompileRequest) -> CGRA:
        key = (request.cgra, request.island)
        with self._memo_lock:
            fabric = self._fabric_memo.get(key)
        if fabric is None:
            fabric = CGRA.build(request.cgra[0], request.cgra[1],
                                island_shape=request.island)
            with self._memo_lock:
                fabric = self._fabric_memo.setdefault(key, fabric)
        return fabric

    def _dfg(self, request: CompileRequest):
        key = (request.kernel, request.unroll)
        with self._memo_lock:
            dfg = self._dfg_memo.get(key)
        if dfg is None:
            dfg = load_kernel(request.kernel, request.unroll)
            with self._memo_lock:
                dfg = self._dfg_memo.setdefault(key, dfg)
        return dfg

    def fingerprint(self, request) -> str:
        """The coalescing identity of one request.

        For compiles this is the engine's content-addressed
        ``mapping_cache_key`` extended by the post-pass inputs the
        engine key deliberately ignores (strategy and seed — two
        requests that share a placement but diverge in the post-pass
        must not share a response). Stream requests hash their full
        parameter tuple. Requests are frozen dataclasses, so repeats
        (the load-test common case) hit a memo instead of re-hashing
        the fabric.
        """
        memo_key = (type(request).__name__, request)
        with self._memo_lock:
            cached = self._fp_memo.get(memo_key)
        if cached is not None:
            return cached
        if isinstance(request, CompileRequest):
            engine_key = mapping_cache_key(
                self._dfg(request), self._fabric(request),
                resolve_config(request.strategy, None), request.backend,
            )
            payload = {"compile": engine_key,
                       "strategy": request.strategy,
                       "seed": request.seed}
        else:
            payload = {"stream": request.to_dict()}
            # Neither priority nor tenant changes the computed result:
            # identical work coalesces across admission classes and
            # across tenants (quota accounting is per-waiter, not
            # per-fingerprint).
            payload["stream"].pop("priority", None)
            payload["stream"].pop("tenant", None)
        digest = hashlib.sha256(
            canonical_json(payload).encode("utf-8")
        ).hexdigest()
        with self._memo_lock:
            self._fp_memo[memo_key] = digest
        return digest

    # -- submission ---------------------------------------------------------

    def submit(self, request) -> asyncio.Future:
        """Admit, coalesce or refuse one request; returns its future.

        Synchronous by design: callers on the event loop observe an
        atomic admit-or-coalesce decision, so a burst of identical
        requests submitted back-to-back deterministically shares one
        job.
        """
        if self._loop is None:
            raise RuntimeError("CompileService.start() was never awaited")
        if self._closing:
            obs.metrics().counter("serve.rejected_closing").inc()
            raise ServiceClosedError("service is draining; no new work")
        registry = obs.metrics()
        registry.counter("serve.requests").inc()
        tenant = getattr(request, "tenant", "")
        if (tenant and self.tenant_quota is not None
                and self._tenant_pending.get(tenant, 0)
                >= self.tenant_quota):
            # Per-tenant fairness: one tenant flooding the daemon is
            # pushed back before it can consume the shared queue (even
            # via coalesced joins — a pending response is a pending
            # response, however it is produced).
            registry.counter("serve.tenant_rejected").inc()
            raise QueueFullError(self.retry_after_s)
        fingerprint = self.fingerprint(request)
        job = self._inflight.get(fingerprint)
        if job is not None:
            job.waiters += 1
            if tenant:
                job.tenants.append(tenant)
                self._tenant_pending[tenant] = (
                    self._tenant_pending.get(tenant, 0) + 1)
            registry.counter("serve.coalesced").inc()
            return job.future
        if len(self._heap) >= self.max_queue:
            registry.counter("serve.rejected").inc()
            raise QueueFullError(self.retry_after_s)
        kind = ("compile" if isinstance(request, CompileRequest)
                else "stream")
        self._seq += 1
        job = _Job(
            fingerprint=fingerprint, kind=kind, request=request,
            future=self._loop.create_future(),
            enqueued_at=time.monotonic(), seq=self._seq,
        )
        if tenant:
            job.tenants.append(tenant)
            self._tenant_pending[tenant] = (
                self._tenant_pending.get(tenant, 0) + 1)
        self._inflight[fingerprint] = job
        heapq.heappush(self._heap, (job.priority_rank, job.seq, job))
        registry.gauge("serve.queue_depth").set(len(self._heap))
        registry.gauge("serve.in_flight").set(len(self._inflight))
        self._kick()
        return job.future

    def _kick(self) -> None:
        async def _notify():
            async with self._heap_cond:
                self._heap_cond.notify()

        asyncio.ensure_future(_notify())

    def queue_depth(self) -> int:
        return len(self._heap)

    def in_flight(self) -> int:
        return len(self._inflight)

    # -- workers ------------------------------------------------------------

    async def _worker(self) -> None:
        registry = obs.metrics()
        while True:
            async with self._heap_cond:
                while not self._heap:
                    await self._heap_cond.wait()
                _, _, job = heapq.heappop(self._heap)
            registry.gauge("serve.queue_depth").set(len(self._heap))
            wait_ms = (time.monotonic() - job.enqueued_at) * 1e3
            registry.histogram("serve.queue_wait_ms").observe(wait_ms)
            started = time.monotonic()
            try:
                fn = (self._compile_fn if job.kind == "compile"
                      else self._stream_fn)
                payload = await self._loop.run_in_executor(
                    self._executor, self._run_job, fn, job
                )
            except MappingError as exc:
                self._finish(job, error=(422, f"unmappable: {exc}"))
                continue
            except RequestError as exc:
                self._finish(job, error=(400, str(exc)))
                continue
            except Exception as exc:  # a crash is a bug, not a data point
                registry.counter("serve.errors").inc()
                self._finish(job, error=(500, f"internal error: {exc!r}"))
                continue
            compile_ms = (time.monotonic() - started) * 1e3
            registry.histogram("serve.compile_ms").observe(compile_ms)
            registry.counter("serve.compiles").inc()
            payload["wall_ms"] = round(compile_ms, 3)
            self._finish(job, payload=payload)

    def _run_job(self, fn, job: _Job) -> dict:
        with obs.span("serve.request", category="serve",
                      kind=job.kind, fingerprint=job.fingerprint[:12]):
            return fn(job.request)

    def _finish(self, job: _Job, payload: dict | None = None,
                error: tuple[int, str] | None = None) -> None:
        """Resolve the job's future (always called on the event loop).

        The in-flight entry is removed first, so a request arriving
        after resolution starts a fresh job (and, for compiles, hits
        the cache) instead of receiving a stale future.
        """
        self._inflight.pop(job.fingerprint, None)
        for tenant in job.tenants:
            pending = self._tenant_pending.get(tenant, 0) - 1
            if pending > 0:
                self._tenant_pending[tenant] = pending
            else:
                self._tenant_pending.pop(tenant, None)
        job.tenants.clear()
        obs.metrics().gauge("serve.in_flight").set(len(self._inflight))
        if job.future.cancelled():
            return
        if error is not None:
            status, message = error
            job.future.set_result({
                "status": status,
                "body": {"error": message, "fingerprint": job.fingerprint},
            })
            return
        payload["fingerprint"] = job.fingerprint
        payload["waiters"] = job.waiters
        job.future.set_result({"status": 200, "body": payload})

    # -- the real work ------------------------------------------------------

    def _pipeline_compile(self, request: CompileRequest) -> dict:
        """One request through the standard pipeline via a SweepItem.

        The executor runs inline in the calling worker thread
        (``jobs=1``) against the service-wide shared cache, so the
        response is produced by exactly the machinery ``repro map``
        uses — byte-identical artifacts, same validation.
        """
        item = SweepItem(
            kernel=request.kernel, unroll=request.unroll,
            strategy=request.strategy, backend=request.backend,
            seed=request.seed,
        )
        executor = SweepExecutor(jobs=1, cache=self.cache)
        outcome = executor.run([item], self._fabric(request))[0]
        if outcome.error is not None:
            raise outcome.error
        result = outcome.result
        return {
            "schema": RESPONSE_SCHEMA,
            "request": request.to_dict(),
            "key": result.cache_key,
            "cache_hit": bool(result.cache_hit),
            "backend": result.backend,
            "ii": result.report.ii,
            "cost": result.cost,
            "optimal": bool(result.optimal),
            "mapping": result.mapping.to_dict(),
        }

    def _pipeline_stream(self, request: StreamRequest) -> dict:
        from repro.streaming.envelopes import scenario_envelope

        envelope = scenario_envelope(
            request.scenario, seed=request.seed, inputs=request.inputs,
            window=request.window, strategies=(request.strategy,),
        )
        return {
            "schema": RESPONSE_SCHEMA,
            "request": request.to_dict(),
            "envelope": envelope,
        }

    # -- reporting ----------------------------------------------------------

    def cache_stats(self) -> dict:
        stats = dict(self.cache.stats_dict())
        stats["tier"] = ("tiered" if isinstance(self.cache, TieredCache)
                         else "memory")
        if self.shard:
            stats["shard"] = self.shard
        if self.cache_dir:
            stats["cache_dir"] = str(self.cache_dir)
        return stats

    def tenants_pending(self) -> dict[str, int]:
        """Pending (queued or compiling) responses per tagged tenant."""
        return dict(sorted(self._tenant_pending.items()))

    def health(self) -> dict:
        return {
            "status": "draining" if self._closing else "ok",
            "uptime_s": round(self.uptime_s(), 3),
            "queue_depth": self.queue_depth(),
            "in_flight": self.in_flight(),
            "workers": self.workers,
            "max_queue": self.max_queue,
            "tenant_quota": self.tenant_quota,
            "tenants_pending": self.tenants_pending(),
        }
