"""`repro.serve` — the compile-as-a-service daemon.

A long-running asyncio HTTP/JSON front end over the compilation
pipeline: bounded-queue admission control with priority classes,
request coalescing on content-addressed fingerprints, a worker pool
sharing one tiered mapping cache (with per-server disk shards), and
per-request observability. See ``docs/serve.md``.
"""

from repro.serve.client import (
    DEFAULT_TIMEOUT_S,
    REPORT_SCHEMA,
    HTTPClient,
    LoadtestConfig,
    LoadtestError,
    build_request_mix,
    loadtest,
    run_loadtest,
    write_report,
)
from repro.serve.server import (
    MAX_BODY_BYTES,
    BackgroundServer,
    CompileServer,
)
from repro.serve.service import (
    DEFAULT_MAX_QUEUE,
    DEFAULT_WORKERS,
    PRIORITIES,
    RESPONSE_SCHEMA,
    CompileRequest,
    CompileService,
    QueueFullError,
    RequestError,
    ServiceClosedError,
    StreamRequest,
    canonical_json,
)

__all__ = [
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_TIMEOUT_S",
    "DEFAULT_WORKERS",
    "MAX_BODY_BYTES",
    "PRIORITIES",
    "REPORT_SCHEMA",
    "RESPONSE_SCHEMA",
    "BackgroundServer",
    "CompileRequest",
    "CompileServer",
    "CompileService",
    "HTTPClient",
    "LoadtestConfig",
    "LoadtestError",
    "QueueFullError",
    "RequestError",
    "ServiceClosedError",
    "StreamRequest",
    "build_request_mix",
    "canonical_json",
    "loadtest",
    "run_loadtest",
    "write_report",
]
