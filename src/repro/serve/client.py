"""HTTP client + load-test driver for ``repro serve``.

:class:`HTTPClient` is the mirror image of the server's HTTP layer: a
single keep-alive connection speaking ``Content-Length``-framed JSON.
:func:`run_loadtest` replays a deterministic request mix — kernels and
strategies drawn from the Table I suite and the backend registry's
strategy vocabulary, scenarios from the traffic-scenario registry —
across N concurrent connections and aggregates a canonical-JSON report
(throughput, p50/p99 latency, coalesce rate, cache-hit rate) that CI
gates against the committed ``BENCH_serve.json`` baseline.

Coalescing is invisible to an individual waiter by design (every
waiter receives the *same* payload bytes), so the coalesce rate is
measured authoritatively from the server's own ``serve.coalesced``
counter, scraped from ``GET /metrics`` before and after the run.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
import time
from dataclasses import dataclass, field

from repro.kernels.suite import kernel_names
from repro.mapper.backends import EXPERIMENT_STRATEGIES
from repro.serve.service import canonical_json

#: Report schema version.
REPORT_SCHEMA = 1

#: Default per-request timeout (a cold anneal compile can be slow).
DEFAULT_TIMEOUT_S = 300.0


class LoadtestError(RuntimeError):
    """The load test could not run to completion."""


def _parse_url(url: str) -> tuple[str, int]:
    if url.startswith("http://"):
        url = url[len("http://"):]
    elif "://" in url:
        raise LoadtestError(f"only http:// URLs are supported: {url!r}")
    host, _, rest = url.partition("/")
    host, _, port = host.partition(":")
    try:
        return host or "127.0.0.1", int(port or 80)
    except ValueError:
        raise LoadtestError(f"bad port in URL {url!r}") from None


class HTTPClient:
    """One keep-alive HTTP/1.1 connection to a ``repro serve`` daemon."""

    def __init__(self, url: str, timeout_s: float = DEFAULT_TIMEOUT_S):
        self.host, self.port = _parse_url(url)
        self.timeout_s = timeout_s
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "HTTPClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
            self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      body: dict | None = None) -> tuple[int, dict, dict]:
        """One round trip; returns ``(status, headers, payload)``.

        Reconnects transparently if the server closed the previous
        keep-alive exchange (e.g. after answering with
        ``Connection: close``).
        """
        if self._writer is None:
            await self.connect()
        try:
            return await asyncio.wait_for(
                self._round_trip(method, path, body), self.timeout_s
            )
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            # One retry on a fresh connection: the server may have
            # dropped the idle keep-alive socket between requests.
            await self.close()
            await self.connect()
            return await asyncio.wait_for(
                self._round_trip(method, path, body), self.timeout_s
            )

    async def _round_trip(self, method: str, path: str,
                          body: dict | None) -> tuple[int, dict, dict]:
        encoded = (canonical_json(body).encode("utf-8")
                   if body is not None else b"")
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Accept: application/json",
        ]
        if body is not None:
            head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(encoded)}")
        self._writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + encoded
        )
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2:
            raise LoadtestError(f"bad status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        raw = await self._reader.readexactly(length) if length else b""
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, payload

    async def get(self, path: str) -> tuple[int, dict, dict]:
        return await self.request("GET", path)

    async def post(self, path: str, body: dict) -> tuple[int, dict, dict]:
        return await self.request("POST", path, body)


# -- request mix -------------------------------------------------------------


@dataclass(frozen=True)
class LoadtestConfig:
    """A deterministic load-test campaign (same seed -> same mix)."""

    url: str
    requests: int = 1000
    concurrency: int = 50
    seed: int = 0
    kernels: tuple[str, ...] = ()
    strategies: tuple[str, ...] = EXPERIMENT_STRATEGIES
    backends: tuple[str, ...] = ("engine",)
    stream_fraction: float = 0.0
    scenarios: tuple[str, ...] = ()
    interactive_fraction: float = 0.25
    timeout_s: float = DEFAULT_TIMEOUT_S

    def to_dict(self) -> dict:
        return {
            "url": self.url, "requests": self.requests,
            "concurrency": self.concurrency, "seed": self.seed,
            "kernels": list(self.kernels or kernel_names()),
            "strategies": list(self.strategies),
            "backends": list(self.backends),
            "stream_fraction": self.stream_fraction,
            "scenarios": list(self.scenarios),
            "interactive_fraction": self.interactive_fraction,
        }


def build_request_mix(config: LoadtestConfig) -> list[tuple[str, dict]]:
    """The campaign's ``(path, body)`` list, reproducible by seed."""
    rng = random.Random(config.seed)
    kernels = tuple(config.kernels) or tuple(kernel_names())
    scenarios = tuple(config.scenarios)
    if config.stream_fraction > 0 and not scenarios:
        from repro.streaming.scenarios import scenario_names

        scenarios = tuple(scenario_names())
    mix: list[tuple[str, dict]] = []
    for _ in range(config.requests):
        priority = ("interactive"
                    if rng.random() < config.interactive_fraction
                    else "batch")
        if scenarios and rng.random() < config.stream_fraction:
            mix.append(("/stream", {
                "scenario": rng.choice(scenarios),
                "strategy": "iced",
                "inputs": rng.choice((60, 120)),
                "window": 10,
                "priority": priority,
            }))
        else:
            mix.append(("/compile", {
                "kernel": rng.choice(kernels),
                "strategy": rng.choice(tuple(config.strategies)),
                "backend": rng.choice(tuple(config.backends)),
                "priority": priority,
            }))
    return mix


# -- the driver --------------------------------------------------------------


def _percentile(sorted_values: list[float], q: float) -> float:
    """Weighted nearest-rank percentile (matches the envelope math)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class _Tally:
    latencies_ms: list[float] = field(default_factory=list)
    status_counts: dict[str, int] = field(default_factory=dict)
    fingerprints: set = field(default_factory=set)
    cache_hits: int = 0
    ok: int = 0

    def record(self, status: int, latency_ms: float, payload: dict) -> None:
        self.latencies_ms.append(latency_ms)
        key = str(status)
        self.status_counts[key] = self.status_counts.get(key, 0) + 1
        if status == 200:
            self.ok += 1
            if payload.get("fingerprint"):
                self.fingerprints.add(payload["fingerprint"])
            if payload.get("cache_hit"):
                self.cache_hits += 1


def _counter_value(snapshot: dict, name: str) -> float:
    entry = snapshot.get(name) or {}
    return float(entry.get("value", 0.0))


async def run_loadtest(config: LoadtestConfig) -> dict:
    """Replay the campaign against a live daemon; returns the report."""
    mix = build_request_mix(config)
    queue: asyncio.Queue = asyncio.Queue()
    for spec in mix:
        queue.put_nowait(spec)
    tally = _Tally()

    probe = HTTPClient(config.url, config.timeout_s)
    async with probe:
        status, _, health = await probe.get("/healthz")
        if status != 200:
            raise LoadtestError(
                f"server at {config.url} is not healthy: {health}"
            )
        _, _, before = await probe.get("/metrics")

        async def worker() -> None:
            async with HTTPClient(config.url, config.timeout_s) as client:
                while True:
                    try:
                        path, body = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    t0 = time.perf_counter()
                    status, _, payload = await client.post(path, body)
                    latency_ms = (time.perf_counter() - t0) * 1e3
                    tally.record(status, latency_ms, payload)

        started = time.perf_counter()
        workers = [asyncio.create_task(worker())
                   for _ in range(max(1, config.concurrency))]
        await asyncio.gather(*workers)
        duration_s = time.perf_counter() - started

        _, _, after = await probe.get("/metrics")
        _, _, cache_stats = await probe.get("/cache/stats")

    coalesced = (_counter_value(after, "serve.coalesced")
                 - _counter_value(before, "serve.coalesced"))
    compiles = (_counter_value(after, "serve.compiles")
                - _counter_value(before, "serve.compiles"))
    rejected = (_counter_value(after, "serve.rejected")
                - _counter_value(before, "serve.rejected"))
    latencies = sorted(tally.latencies_ms)
    sent = len(tally.latencies_ms)
    return {
        "schema": REPORT_SCHEMA,
        "config": config.to_dict(),
        "requests_sent": sent,
        "duration_s": round(duration_s, 4),
        "throughput_rps": round(sent / duration_s, 2) if duration_s else 0.0,
        "latency_ms": {
            "mean": round(sum(latencies) / sent, 3) if sent else 0.0,
            "p50": round(_percentile(latencies, 0.50), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
        "status_counts": dict(sorted(tally.status_counts.items())),
        "ok": tally.ok,
        "rejected_429": int(rejected),
        "coalesced": int(coalesced),
        "coalesce_rate": round(coalesced / sent, 4) if sent else 0.0,
        "jobs_executed": int(compiles),
        "cache_hit_rate": (round(tally.cache_hits / tally.ok, 4)
                           if tally.ok else 0.0),
        "unique_fingerprints": len(tally.fingerprints),
        "server": {
            "health": health,
            "cache": cache_stats,
        },
    }


def loadtest(config: LoadtestConfig) -> dict:
    """Synchronous wrapper: run the campaign on a fresh event loop."""
    return asyncio.run(run_loadtest(config))


def write_report(report: dict, path: str) -> None:
    """Canonical-JSON report file (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(report, sort_keys=True, indent=2))
        fh.write("\n")
