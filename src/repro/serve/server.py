"""The asyncio HTTP/1.1 face of :class:`CompileService`.

A deliberately small, dependency-free HTTP layer: request line +
headers + ``Content-Length`` body in, canonical-JSON response out,
keep-alive by default. It exists to put ``POST /compile`` on a socket,
not to be a general web server — chunked bodies, pipelining beyond
keep-alive and TLS are all out of scope (and rejected cleanly).

Routes::

    POST /compile      -> compile one kernel request (coalesced)
    POST /stream       -> run one traffic-scenario request (coalesced)
    GET  /cache/stats  -> the shared TieredCache's counters
    GET  /healthz      -> liveness + queue/in-flight depths
    GET  /metrics      -> the obs metrics registry snapshot (JSON)

Status mapping: 400 malformed request, 404 unknown path, 405 wrong
method, 413 oversized body, 422 unmappable kernel, 429 queue full
(with ``Retry-After``), 503 draining.

:class:`BackgroundServer` runs the whole stack — event loop, service,
listener — on a daemon thread, which is how the tests, the load-test
self-host mode and the CI smoke boot a real daemon over real sockets
inside one process.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http import HTTPStatus

from repro import obs
from repro.serve.service import (
    CompileRequest,
    CompileService,
    QueueFullError,
    RequestError,
    ServiceClosedError,
    StreamRequest,
    canonical_json,
)

#: Largest accepted request body, bytes (a compile request is ~200 B).
MAX_BODY_BYTES = 1 << 20

#: Server identity header.
SERVER_NAME = "repro-serve/1"


def _reason(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:
        return "Unknown"


class CompileServer:
    """One listening socket in front of one :class:`CompileService`."""

    def __init__(self, service: CompileService,
                 host: str = "127.0.0.1", port: int = 8763):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Start the service workers and bind the listener.

        ``port=0`` binds an ephemeral port; ``self.port`` is updated to
        the actual one so callers can address the server.
        """
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Stop accepting connections, then drain the service.

        Connections still writing a drained response get a short grace
        period; idle keep-alive connections (parked in ``readline``)
        are then cancelled.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.shutdown()
        if self._connections:
            _, pending = await asyncio.wait(set(self._connections),
                                            timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _handle_one(self, reader, writer) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, path, version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._respond(writer, 400,
                               {"error": "malformed request line"},
                               close=True)
            return False
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                length = int(length)
            except ValueError:
                await self._respond(writer, 400,
                                   {"error": "bad Content-Length"},
                                   close=True)
                return False
            if length > MAX_BODY_BYTES:
                await self._respond(writer, 413,
                                   {"error": "request body too large"},
                                   close=True)
                return False
            body = await reader.readexactly(length)
        elif method == "POST":
            await self._respond(
                writer, 411,
                {"error": "POST requires Content-Length"}, close=True)
            return False
        keep_alive = (headers.get("connection", "").lower() != "close"
                      and version != "HTTP/1.0")
        status, payload, extra = await self._route(method, path, body)
        await self._respond(writer, status, payload, extra_headers=extra,
                           close=not keep_alive)
        return keep_alive

    async def _respond(self, writer, status: int, payload: dict, *,
                       extra_headers: dict | None = None,
                       close: bool = False) -> None:
        body = (canonical_json(payload) + "\n").encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_reason(status)}",
            f"Server: {SERVER_NAME}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # -- routing ------------------------------------------------------------

    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, dict, dict]:
        path = path.split("?", 1)[0]
        if path in ("/compile", "/stream"):
            if method != "POST":
                return 405, {"error": f"{path} requires POST"}, {}
            return await self._handle_work(path, body)
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "/healthz requires GET"}, {}
            health = self.service.health()
            return (200 if health["status"] == "ok" else 503), health, {}
        if path == "/cache/stats":
            if method != "GET":
                return 405, {"error": "/cache/stats requires GET"}, {}
            return 200, self.service.cache_stats(), {}
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "/metrics requires GET"}, {}
            return 200, obs.metrics().snapshot(), {}
        return 404, {"error": f"no route for {path}"}, {}

    async def _handle_work(self, path: str,
                           body: bytes) -> tuple[int, dict, dict]:
        try:
            decoded = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "request body is not valid JSON"}, {}
        try:
            request = (CompileRequest.from_dict(decoded)
                       if path == "/compile"
                       else StreamRequest.from_dict(decoded))
            future = self.service.submit(request)
        except RequestError as exc:
            return 400, {"error": str(exc)}, {}
        except QueueFullError as exc:
            return (429, {"error": str(exc)},
                    {"Retry-After": f"{exc.retry_after_s:g}"})
        except ServiceClosedError as exc:
            return 503, {"error": str(exc)}, {}
        outcome = await asyncio.shield(future)
        return outcome["status"], outcome["body"], {}


class BackgroundServer:
    """A real daemon on a daemon thread, for in-process callers.

    Spins up an event loop + :class:`CompileServer` on its own thread
    and blocks until the socket is bound; :meth:`stop` drains the
    service and joins the thread. Tests, ``repro loadtest --self-host``
    and the CI smoke all go through this.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 **service_kwargs):
        self.service = CompileService(**service_kwargs)
        self.server = CompileServer(self.service, host=host, port=port)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_requested: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def url(self) -> str:
        return self.server.url

    def start(self, timeout_s: float = 30.0) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise RuntimeError("BackgroundServer failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                "BackgroundServer startup failed"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def _main():
            self._stop_requested = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            # The listener accepts in the background; the main task
            # just waits for stop() and then drains gracefully, so the
            # loop only exits once every accepted request is resolved.
            await self._stop_requested.wait()
            await self.server.shutdown()
            # Idle keep-alive connections park in readline(); cancel
            # their handler tasks so the loop can close quietly.
            others = [t for t in asyncio.all_tasks()
                      if t is not asyncio.current_task()]
            for task in others:
                task.cancel()
            if others:
                await asyncio.gather(*others, return_exceptions=True)

        try:
            self._loop.run_until_complete(_main())
        finally:
            self._loop.close()

    def stop(self, timeout_s: float = 60.0) -> None:
        """Graceful shutdown: drain in-flight work, then join."""
        if self._loop is None or self._thread is None:
            return
        if self._startup_error is None:
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        self._thread.join(timeout_s)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
