"""Tile utilization and average-DVFS-level metrics.

Definitions (DESIGN.md section 5, matching the paper's):

* A tile's utilization is its distinct busy base cycles (FU issue or
  crossbar traffic, with DVFS-stretched occupancy counted in full)
  divided by the II. Lowering an underused tile's frequency stretches
  its busy slots across the II, which is exactly the paper's framing of
  "slowing idle tiles is equivalent to higher utilization".
* The fabric average for a no-DVFS configuration counts every tile
  (idle tiles drag the average down — Fig 2). For DVFS configurations,
  power-gated tiles are excluded: they consume no energy, so they no
  longer dilute the utilization of the active fabric (Fig 9).
* The average DVFS level weights normal = 100 %, relax = 50 %,
  rest = 25 %, power-gated = 0 % (Fig 10's caption).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapper.mapping import Mapping
from repro.mapper.timing import TimingReport, compute_timing


def tile_utilization(mapping: Mapping,
                     report: TimingReport | None = None) -> dict[int, float]:
    """Busy fraction of every non-gated tile (gated tiles are omitted)."""
    report = report or compute_timing(mapping)
    result = {}
    for tile in mapping.cgra.tiles:
        if mapping.tile_levels[tile.id].is_gated:
            continue
        result[tile.id] = min(1.0, report.busy_fraction(tile.id))
    return result


@dataclass(frozen=True)
class UtilizationStats:
    """Fabric-level utilization summary for one mapping."""

    kernel: str
    strategy: str
    ii: int
    average: float
    active_tiles: int
    gated_tiles: int
    per_tile: dict[int, float]

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "strategy": self.strategy,
            "ii": self.ii,
            "average": self.average,
            "active_tiles": self.active_tiles,
            "gated_tiles": self.gated_tiles,
        }


def utilization_stats(mapping: Mapping,
                      report: TimingReport | None = None,
                      include_gated: bool | None = None) -> UtilizationStats:
    """Average utilization for a mapping.

    ``include_gated`` controls whether power-gated tiles count as 0 %
    in the average; it defaults to False (DVFS framing). Baseline
    mappings have no gated tiles, so the flag is moot there and the
    all-tile average of Fig 2 falls out naturally.
    """
    report = report or compute_timing(mapping)
    include_gated = False if include_gated is None else include_gated
    per_tile = tile_utilization(mapping, report)
    num_gated = len(mapping.gated_tiles())
    if include_gated:
        total = sum(per_tile.values())
        denominator = mapping.cgra.num_tiles
    else:
        total = sum(per_tile.values())
        denominator = max(1, len(per_tile))
    return UtilizationStats(
        kernel=mapping.dfg.name,
        strategy=mapping.strategy,
        ii=mapping.ii,
        average=total / denominator,
        active_tiles=len(per_tile),
        gated_tiles=num_gated,
        per_tile=per_tile,
    )


def average_dvfs_fraction(mapping: Mapping) -> float:
    """Fig 10's metric: mean frequency fraction across *all* tiles."""
    config = mapping.cgra.dvfs
    total = sum(
        config.fraction(mapping.tile_levels[tile.id])
        for tile in mapping.cgra.tiles
    )
    return total / mapping.cgra.num_tiles
