"""Value-accurate co-simulation of a mapped kernel.

``run_lowered_dfg`` executes a kernel's dataflow semantics;
``compute_timing`` proves a mapping's resource/timing consistency. This
module closes the remaining gap: it executes the *mapped machine* —
nodes fire at their scheduled issue times, operand values travel along
their committed routes and are picked up at the consumer's read time —
and produces final memory contents that must equal the reference
interpreter's. A mapper bug that produced a timing-consistent but
semantically wrong schedule (say, an operand read one iteration early)
would surface here and nowhere else.

The key observation making this cheap: within one iteration, every
same-iteration dependence implies a strictly later issue time, so
sorting nodes by issue time yields a valid evaluation order; values
crossing iterations are read from the history of iteration ``k - dist``
through exactly the route the mapper committed, with the operational
re-check that each value's arrival precedes its consumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.dfg.ops import Opcode
from repro.errors import SimulationError
from repro.frontend.interp import Memory, _check_arrays, _eval_node
from repro.frontend.lower import LoweredKernel
from repro.mapper.mapping import Mapping
from repro.mapper.timing import compute_timing


@dataclass
class CosimResult:
    """The outcome of co-simulating a mapped kernel.

    Attributes:
        memory: Final array contents (must match the interpreter's).
        iterations: Loop iterations executed.
        values_checked: Operand deliveries whose arrival-before-use was
            operationally re-verified.
        total_cycles: Execution length in base cycles.
        memory_accesses: Scratchpad accesses observed.
        bank_conflicts: Accesses that collided on a bank port in the
            same base cycle (the hardware would stall; the model counts).
    """

    memory: Memory
    iterations: int
    values_checked: int
    total_cycles: int
    memory_accesses: int = 0
    bank_conflicts: int = 0
    node_values: dict[int, float] = field(default_factory=dict)

    @property
    def bank_conflict_rate(self) -> float:
        if not self.memory_accesses:
            return 0.0
        return self.bank_conflicts / self.memory_accesses


def cosimulate(lowered: LoweredKernel, mapping: Mapping, memory: Memory,
               externals: dict[str, float] | None = None,
               iterations: int | None = None) -> CosimResult:
    """Execute ``lowered`` through ``mapping``; raise on any divergence."""
    if mapping.dfg is not lowered.dfg and mapping.dfg.name != lowered.dfg.name:
        raise SimulationError(
            "mapping and lowered kernel disagree on the DFG "
            f"({mapping.dfg.name!r} vs {lowered.dfg.name!r})"
        )
    report = compute_timing(mapping)  # inconsistent mappings stop here
    dfg, meta = lowered.dfg, lowered.meta
    externals = dict(externals or {})
    iterations = lowered.trip_count if iterations is None else iterations
    mem = _check_arrays(lowered.kernel, memory)
    ii = mapping.ii

    # Evaluation order: immediates first (they live in config words),
    # then placed nodes by issue time (ties broken by id).
    immediates = [
        n.id for n in dfg.nodes() if n.opcode is Opcode.CONST
    ]
    placed = sorted(
        mapping.placements,
        key=lambda n: (mapping.placements[n].time, n),
    )
    order = immediates + placed
    if set(order) != set(dfg.node_ids()):
        raise SimulationError("mapping does not cover the whole DFG")

    back_source: dict[int, tuple[int, int]] = {}
    for node_id in dfg.node_ids():
        carried = [e for e in dfg.in_edges(node_id) if e.dist >= 1]
        if carried:
            back_source[node_id] = (carried[0].src, carried[0].dist)

    edges = dfg.edges()
    max_dist = max((e.dist for e in edges), default=1)
    history: list[dict[int, float]] = []
    values: dict[int, float] = {}
    values_checked = 0

    # Scratchpad layout: arrays packed contiguously in declaration
    # order, word-interleaved across banks (the SPM model's scheme).
    base_addr: dict[str, int] = {}
    offset = 0
    for array, size in lowered.kernel.arrays.items():
        base_addr[array] = offset
        offset += size
    spm = mapping.cgra.spm
    accesses_by_cycle: dict[int, list[tuple[int, bool]]] = {}
    MAX_TRACKED_CYCLES = 1 << 16

    for k in range(iterations):
        values = {}
        for node_id in order:
            # Operational arrival-before-use re-check for every routed
            # operand of this node in this iteration.
            if node_id in mapping.placements:
                consume_at = mapping.placements[node_id].time + k * ii
                for idx, edge in enumerate(edges):
                    if edge.dst != node_id or idx not in mapping.routes:
                        continue
                    if k - edge.dist < 0:
                        continue  # pipeline fill: PHI takes its init
                    timing = report.edge_timings[idx]
                    arrival = timing.arrival + (k - edge.dist) * ii
                    if arrival > consume_at:
                        raise SimulationError(
                            f"iteration {k}: operand of node {node_id} "
                            f"arrives at {arrival}, after its use at "
                            f"{consume_at}"
                        )
                    values_checked += 1
            values[node_id] = _eval_node(
                dfg, meta, node_id, k, values, history, back_source,
                externals, mem,
            )
            opcode = dfg.node(node_id).opcode
            if (opcode in (Opcode.LOAD, Opcode.STORE)
                    and node_id in mapping.placements
                    and node_id in meta):
                info = meta[node_id]
                if info.get("index") is not None:
                    index = int(values[info["index"]])
                else:
                    index = int(info.get("index_const", 0))
                address = base_addr[info["array"]] + index
                cycle = mapping.placements[node_id].time + k * ii
                if 0 <= address < spm.num_words and \
                        cycle < MAX_TRACKED_CYCLES:
                    accesses_by_cycle.setdefault(cycle, []).append(
                        (spm.bank_of(address), opcode is Opcode.STORE)
                    )
        history.append(values)
        if len(history) > max(max_dist, 1):
            history.pop(0)

    total_cycles = (
        (iterations - 1) * ii + mapping.schedule_depth()
        if iterations else 0
    )
    memory_accesses = sum(len(v) for v in accesses_by_cycle.values())
    bank_conflicts = 0
    for cycle_accesses in accesses_by_cycle.values():
        per_port: dict[tuple[int, bool], int] = {}
        for bank, is_write in cycle_accesses:
            per_port[(bank, is_write)] = per_port.get((bank, is_write), 0) + 1
        bank_conflicts += sum(n - 1 for n in per_port.values() if n > 1)
    tracer = obs.current_tracer()
    if tracer is not None:
        tracer.add_span(
            "cosim",
            category="sim",
            start_ns=0,
            dur_ns=total_cycles * 1000,
            track=obs.SIM_TRACK,
            kernel=mapping.dfg.name,
            iterations=iterations,
            values_checked=values_checked,
            memory_accesses=memory_accesses,
            spm_bank_conflicts=bank_conflicts,
        )
    registry = obs.metrics()
    registry.counter("sim.cosim_runs").inc()
    registry.counter("sim.memory_accesses").inc(memory_accesses)
    registry.counter("sim.spm_bank_conflicts").inc(bank_conflicts)
    return CosimResult(
        memory=mem,
        iterations=iterations,
        values_checked=values_checked,
        total_cycles=total_cycles,
        memory_accesses=memory_accesses,
        bank_conflicts=bank_conflicts,
        node_values=values,
    )
