"""Cycle-accurate execution of a mapped kernel.

The steady-state schedule repeats every II base cycles; execution of N
loop iterations takes ``(N - 1) * II + depth`` base cycles, where depth
is the pipeline-fill latency of one iteration (last event's end time).
The simulator replays the schedule event by event over an explicit
window, counts per-tile activity, and cross-checks that the observed
busy pattern matches the static timing reconstruction — a defense in
depth against schedule/validator divergence.

For long runs, only a representative window (fill + a few steady-state
periods + drain) is simulated explicitly and activity is extrapolated;
the cycle count itself is exact either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import SimulationError
from repro.mapper.mapping import Mapping
from repro.mapper.timing import TimingReport, compute_timing

#: Simulate at most this many iterations explicitly; beyond it the
#: steady-state activity is extrapolated (the schedule is periodic, so
#: this is exact, not an approximation — the cross-check enforces it).
MAX_EXPLICIT_ITERATIONS = 64


@dataclass
class ExecutionStats:
    """The outcome of simulating ``iterations`` of a mapped kernel."""

    kernel: str
    strategy: str
    ii: int
    iterations: int
    total_cycles: int
    tile_busy_cycles: dict[int, int]
    frequency_mhz: float

    @property
    def execution_time_us(self) -> float:
        """Wall-clock execution time at the base (normal) clock."""
        return self.total_cycles / self.frequency_mhz

    @property
    def throughput_iters_per_us(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.iterations / self.execution_time_us

    def busy_fraction(self, tile: int) -> float:
        if self.total_cycles == 0:
            return 0.0
        return min(1.0, self.tile_busy_cycles.get(tile, 0) / self.total_cycles)


@dataclass
class _Event:
    """One per-iteration activity interval on a tile."""

    tile: int
    start: int
    length: int


def _iteration_events(mapping: Mapping, report: TimingReport) -> list[_Event]:
    """Activity intervals of a single iteration (relative times)."""
    events: list[_Event] = []
    for node, placement in mapping.placements.items():
        duration = mapping.cgra.op_latency(
            placement.tile, mapping.dfg.node(node).opcode
        ) * mapping.slowdown(placement.tile)
        events.append(_Event(placement.tile, placement.time, duration))
    for idx, route in mapping.routes.items():
        timing = report.edge_timings[idx]
        t = timing.depart
        for dst in route.path[1:]:
            s = mapping.slowdown(dst)
            events.append(_Event(dst, t, s))
            t += s
    return events


#: Explicit-replay iterations batched per ``replay_batch`` trace span.
REPLAY_BATCH_ITERATIONS = 16


def simulate_execution(mapping: Mapping, iterations: int,
                       report: TimingReport | None = None) -> ExecutionStats:
    """Replay ``iterations`` of the modulo schedule and count activity.

    With a tracer installed, the run records one ``simulate`` span
    (category ``sim``, wall clock) plus one logical ``replay_batch``
    span per :data:`REPLAY_BATCH_ITERATIONS` explicit iterations on the
    simulated-cycles track, so the explicit window renders as a
    timeline in cycle time.
    """
    if iterations < 0:
        raise SimulationError("iterations must be non-negative")
    with obs.span("simulate", category="sim", kernel=mapping.dfg.name,
                  strategy=mapping.strategy, iterations=iterations) as span:
        stats = _simulate(mapping, iterations, report)
        span.set(ii=stats.ii, total_cycles=stats.total_cycles)
    return stats


def _simulate(mapping: Mapping, iterations: int,
              report: TimingReport | None) -> ExecutionStats:
    report = report or compute_timing(mapping)
    ii = mapping.ii
    normal_mhz = mapping.cgra.dvfs.normal.frequency_mhz
    events = _iteration_events(mapping, report)
    depth = max((e.start + e.length for e in events), default=0)

    if iterations == 0:
        return ExecutionStats(mapping.dfg.name, mapping.strategy, ii, 0, 0,
                              {}, normal_mhz)

    total_cycles = (iterations - 1) * ii + depth

    tracer = obs.current_tracer()
    explicit = min(iterations, MAX_EXPLICIT_ITERATIONS)
    busy_sets: dict[int, set[int]] = {}
    for batch_start in range(0, explicit, REPLAY_BATCH_ITERATIONS):
        batch = range(batch_start,
                      min(batch_start + REPLAY_BATCH_ITERATIONS, explicit))
        for k in batch:
            base = k * ii
            for event in events:
                cycles = busy_sets.setdefault(event.tile, set())
                for c in range(event.start + base,
                               event.start + base + event.length):
                    cycles.add(c)
        if tracer is not None:
            # Logical span: 1 trace microsecond == 1 base cycle.
            tracer.add_span(
                f"replay_batch[{batch.start}:{batch.stop}]",
                category="sim",
                start_ns=batch.start * ii * 1000,
                dur_ns=len(batch) * ii * 1000,
                track=obs.SIM_TRACK,
                kernel=mapping.dfg.name,
                iterations=len(batch),
                busy_slots=sum(len(c) for c in busy_sets.values()),
            )
    busy_counts = {tile: len(cycles) for tile, cycles in busy_sets.items()}

    if iterations > explicit:
        # Steady state: each extra iteration adds exactly the per-period
        # busy-slot count of the timing reconstruction.
        for tile, per_period in (
            (t, report.tile_busy.get(t, 0)) for t in busy_counts
        ):
            busy_counts[tile] += per_period * (iterations - explicit)

    # Cross-check: in steady state the distinct busy slots per period
    # must match the static reconstruction. Steady state begins once
    # the pipeline has filled (after ceil(depth / ii) periods) and needs
    # enough explicit iterations behind it to be fully populated.
    fill_periods = -(-depth // ii) if ii else 0
    if explicit >= fill_periods + 2:
        mid_lo = fill_periods * ii
        mid_hi = mid_lo + ii
        for tile, cycles in busy_sets.items():
            observed = sum(1 for c in cycles if mid_lo <= c < mid_hi)
            expected = report.tile_busy.get(tile, 0)
            if observed != expected:
                raise SimulationError(
                    f"tile {tile}: observed {observed} busy slots per II in "
                    f"steady state, static timing says {expected}"
                )

    return ExecutionStats(
        kernel=mapping.dfg.name,
        strategy=mapping.strategy,
        ii=ii,
        iterations=iterations,
        total_cycles=total_cycles,
        tile_busy_cycles=busy_counts,
        frequency_mhz=normal_mhz,
    )
