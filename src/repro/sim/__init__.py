"""Cycle-accurate execution simulation and utilization metrics.

The evaluation of the paper is "based on a cycle-accurate simulation
according to the kernel mapping" (section V-B): this package executes a
mapping's modulo schedule at base-clock granularity over many loop
iterations, producing execution cycles, per-tile activity and the
utilization / average-DVFS-level metrics of Figures 2, 9, 10 and 12.
"""

from repro.sim.simulator import ExecutionStats, simulate_execution
from repro.sim.cosim import CosimResult, cosimulate
from repro.sim.utilization import (
    UtilizationStats,
    tile_utilization,
    utilization_stats,
    average_dvfs_fraction,
)

__all__ = [
    "ExecutionStats",
    "simulate_execution",
    "CosimResult",
    "cosimulate",
    "UtilizationStats",
    "tile_utilization",
    "utilization_stats",
    "average_dvfs_fraction",
]
