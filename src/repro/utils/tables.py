"""Plain-text table and series rendering for experiment reports.

The experiment harnesses print their results in the same row/series shape
the paper's tables and figures use; this module owns the formatting so
every report looks consistent.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class TextTable:
    """A minimal monospace table builder.

    >>> t = TextTable(["kernel", "II"])
    >>> t.add_row(["fir", 4])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    kernel | II
    -------+---
    fir    | 4
    """

    def __init__(self, headers: Sequence[str]):
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [_format_cell(cell) for cell in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)).rstrip()
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        def esc(cell: str) -> str:
            if "," in cell or '"' in cell:
                return '"' + cell.replace('"', '""') + '"'
            return cell

        lines = [",".join(esc(h) for h in self.headers)]
        lines.extend(",".join(esc(c) for c in row) for row in self.rows)
        return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_series(name: str, values: Iterable[float], width: int = 40) -> str:
    """Render a numeric series as a labeled ASCII bar chart.

    Used by experiment harnesses to give a quick visual read of the
    figure-shaped results directly in the terminal.
    """
    values = list(values)
    if not values:
        return f"{name}: (empty)"
    peak = max(values) or 1.0
    lines = [f"{name}:"]
    for i, v in enumerate(values):
        bar = "#" * max(0, round(width * v / peak))
        lines.append(f"  [{i:3d}] {v:10.3f} {bar}")
    return "\n".join(lines)
