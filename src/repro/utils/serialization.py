"""JSON-friendly serialization helpers.

Mappings, reports and experiment results expose ``to_dict``-style views;
:func:`to_jsonable` normalizes the remaining value types (enums, numpy
scalars, dataclasses) so ``json.dumps`` works on any report object.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any

import numpy as np


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable builtins."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {_key(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    raise TypeError(f"cannot serialize {type(value).__name__}")


def _key(key: Any) -> str:
    if isinstance(key, enum.Enum):
        return key.name
    if isinstance(key, tuple):
        return ",".join(str(part) for part in key)
    return str(key)
