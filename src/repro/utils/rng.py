"""Deterministic random number generation helpers.

Every stochastic component in this library (workload generators, random
streams) receives its randomness through :func:`make_rng` so that all
experiments are reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy ``Generator`` for ``seed``.

    Accepts an integer seed, an existing generator (returned unchanged so
    callers can thread one generator through a pipeline), or ``None`` for
    a fixed default seed. Unlike ``np.random.default_rng``, ``None`` maps
    to a *deterministic* default because reproducibility is the point.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0x1CED
    return np.random.default_rng(seed)


def derive_worker_seed(parent_seed: int, index: int) -> int:
    """Deterministic per-work-item seed for process-pool fan-out.

    A pure function of (parent seed, work-item index) — never of worker
    identity, pool size or completion order — so a ``--jobs N`` sweep
    consumes exactly the same per-item randomness as a serial one and
    produces bit-identical results. Built on ``np.random.SeedSequence``
    spawn keys, which are designed for exactly this: statistically
    independent child streams addressed by index.

    >>> derive_worker_seed(0, 0) == derive_worker_seed(0, 0)
    True
    >>> derive_worker_seed(0, 0) != derive_worker_seed(0, 1)
    True
    """
    if index < 0:
        raise ValueError("work-item index must be non-negative")
    entropy = parent_seed & 0xFFFF_FFFF_FFFF_FFFF
    seq = np.random.SeedSequence(entropy=entropy, spawn_key=(index,))
    return int(seq.generate_state(1, np.uint64)[0])


def worker_rng(parent_seed: int, index: int) -> np.random.Generator:
    """A generator seeded by :func:`derive_worker_seed` — the one-liner
    pool workers use to get their independent, reproducible stream."""
    return make_rng(derive_worker_seed(parent_seed, index))


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for sub-stream ``stream``.

    Used when one seed must fan out to several independent workload
    streams (e.g. the GCN graph stream and the LU matrix stream) without
    the order of consumption in one stream perturbing the other.
    """
    child_seed = int(rng.integers(0, 2**31 - 1)) ^ (stream * 0x9E3779B1 & 0x7FFFFFFF)
    return np.random.default_rng(child_seed)
