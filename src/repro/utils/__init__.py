"""Small shared utilities: deterministic RNG, text tables, serialization."""

from repro.utils.rng import make_rng
from repro.utils.tables import TextTable, format_series
from repro.utils.serialization import to_jsonable

__all__ = ["make_rng", "TextTable", "format_series", "to_jsonable"]
