"""CGRA architecture model: tiles, mesh fabric, DVFS islands, scratchpad.

This package is the hardware half of ICED. A :class:`~repro.arch.cgra.CGRA`
is a parametric n-by-m grid of tiles connected by a mesh; contiguous
rectangular groups of tiles form DVFS *islands*, each of which can run at
one of several voltage/frequency operating points (or be power gated).
"""

from repro.arch.dvfs import (
    DVFSLevel,
    DVFSConfig,
    DEFAULT_DVFS_CONFIG,
    NORMAL,
    RELAX,
    REST,
    POWER_GATED,
)
from repro.arch.fu import FunctionalUnit, universal_fu, memory_fu
from repro.arch.tile import Tile
from repro.arch.islands import Island, partition_islands
from repro.arch.spm import ScratchpadMemory
from repro.arch.cgra import CGRA, Link

__all__ = [
    "DVFSLevel",
    "DVFSConfig",
    "DEFAULT_DVFS_CONFIG",
    "NORMAL",
    "RELAX",
    "REST",
    "POWER_GATED",
    "FunctionalUnit",
    "universal_fu",
    "memory_fu",
    "Tile",
    "Island",
    "partition_islands",
    "ScratchpadMemory",
    "CGRA",
    "Link",
]
