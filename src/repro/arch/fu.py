"""Functional unit capability descriptions.

A tile contains one FU complex; its capability is the set of opcodes it
can execute and their latencies in cycles of the tile's own clock.
ICED's prototype targets single-cycle FUs (latency 1 for everything);
the paper notes that multi-cycle pipelined FUs (APEX-style) integrate
naturally — pass ``latencies`` to model, e.g., a 4-cycle divider. An
operation's base-clock duration is then ``latency * slowdown``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfg.ops import Opcode, COMPUTE_OPS, MEMORY_OPS
from repro.errors import ArchitectureError


@dataclass(frozen=True)
class FunctionalUnit:
    """The opcode capability of one tile's functional-unit complex.

    ``latencies`` holds only the multi-cycle exceptions; everything else
    executes in one own-clock cycle.
    """

    name: str
    supported: frozenset[Opcode]
    latencies: tuple[tuple[Opcode, int], ...] = ()

    def __post_init__(self) -> None:
        for opcode, cycles in self.latencies:
            if cycles < 1:
                raise ArchitectureError(
                    f"latency of {opcode.name} must be >= 1, got {cycles}"
                )

    def supports(self, opcode: Opcode) -> bool:
        return opcode in self.supported

    def latency(self, opcode: Opcode) -> int:
        """Own-clock cycles ``opcode`` takes on this FU."""
        for candidate, cycles in self.latencies:
            if candidate is opcode:
                return cycles
        return 1

    def __repr__(self) -> str:
        return f"FunctionalUnit({self.name}, {len(self.supported)} ops)"


def _latency_table(latencies: dict[Opcode, int] | None,
                   ) -> tuple[tuple[Opcode, int], ...]:
    if not latencies:
        return ()
    return tuple(sorted(latencies.items(), key=lambda kv: kv[0].name))


def universal_fu(latencies: dict[Opcode, int] | None = None) -> FunctionalUnit:
    """A compute-only FU (every opcode except LOAD/STORE)."""
    return FunctionalUnit("compute", frozenset(COMPUTE_OPS),
                          _latency_table(latencies))


def memory_fu(latencies: dict[Opcode, int] | None = None) -> FunctionalUnit:
    """An FU with compute plus scratchpad access (left-column tiles)."""
    return FunctionalUnit("compute+mem", frozenset(COMPUTE_OPS | MEMORY_OPS),
                          _latency_table(latencies))


#: Opcodes only full compute tiles implement; ALU-only tiles (the
#: heterogeneous-fabric option) drop them to save area.
EXPENSIVE_OPS = frozenset({
    Opcode.MUL, Opcode.DIV, Opcode.REM, Opcode.MAC, Opcode.SQRT,
})


def alu_fu(latencies: dict[Opcode, int] | None = None) -> FunctionalUnit:
    """A reduced FU without multiplier/divider (heterogeneous fabrics)."""
    return FunctionalUnit("alu", frozenset(COMPUTE_OPS - EXPENSIVE_OPS),
                          _latency_table(latencies))
