"""DVFS island partitioning.

An island is a contiguous group of tiles sharing one LDO + ADPLL + DVFS
control unit, so all of its tiles always run at the same level. ICED
supports islands of arbitrary rectangular size; when the island shape
does not divide the fabric evenly the remainder forms smaller irregular
islands at the right/bottom edges (the paper's note about 3x3 islands on
an 8x8 CGRA).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IslandConfigError


@dataclass(frozen=True)
class Island:
    """One DVFS island: a set of tile ids sharing a V/F domain."""

    id: int
    tile_ids: tuple[int, ...]
    width: int
    height: int

    @property
    def num_tiles(self) -> int:
        return len(self.tile_ids)

    @property
    def is_regular(self) -> bool:
        """True when the island is the full requested rectangle."""
        return self.num_tiles == self.width * self.height

    def __repr__(self) -> str:
        return f"Island({self.id}, {self.num_tiles} tiles)"


def partition_islands(rows: int, cols: int,
                      island_rows: int, island_cols: int) -> list[Island]:
    """Tile an ``rows x cols`` grid with ``island_rows x island_cols`` islands.

    Tiles are numbered row-major (id = y * cols + x). Islands are laid
    out row-major as well; edge islands are clipped to the fabric, so
    every tile belongs to exactly one island.
    """
    if rows < 1 or cols < 1:
        raise IslandConfigError("fabric must have at least one tile")
    if island_rows < 1 or island_cols < 1:
        raise IslandConfigError("island shape must be at least 1x1")
    if island_rows > rows or island_cols > cols:
        raise IslandConfigError(
            f"{island_rows}x{island_cols} island does not fit in a "
            f"{rows}x{cols} fabric"
        )

    islands: list[Island] = []
    for y0 in range(0, rows, island_rows):
        for x0 in range(0, cols, island_cols):
            tile_ids = tuple(
                y * cols + x
                for y in range(y0, min(y0 + island_rows, rows))
                for x in range(x0, min(x0 + island_cols, cols))
            )
            islands.append(
                Island(len(islands), tile_ids, island_cols, island_rows)
            )
    return islands


def island_lookup(islands: list[Island]) -> dict[int, int]:
    """Map tile id -> island id; validates the partition is disjoint."""
    lookup: dict[int, int] = {}
    for island in islands:
        for tile_id in island.tile_ids:
            if tile_id in lookup:
                raise IslandConfigError(
                    f"tile {tile_id} appears in islands "
                    f"{lookup[tile_id]} and {island.id}"
                )
            lookup[tile_id] = island.id
    return lookup
