"""The data scratchpad memory (SPM).

ICED's prototype attaches a 32 KB, 8-bank SPM to the left column of the
fabric through a 6x8 crossbar; each bank has one read and one write
port. The compiler must tile working sets to fit, and the simulator
charges bank conflicts when two accesses hit the same bank in the same
base cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ArchitectureError


@dataclass(frozen=True)
class ScratchpadMemory:
    """A banked scratchpad with per-bank 1R/1W ports.

    Attributes:
        size_bytes: Total capacity (default 32 KB, the prototype's).
        num_banks: Interleaved banks (default 8).
        word_bytes: Access granularity (default 4, i.e. 32-bit words).
    """

    size_bytes: int = 32 * 1024
    num_banks: int = 8
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.num_banks <= 0 or self.word_bytes <= 0:
            raise ArchitectureError("SPM parameters must be positive")
        if self.size_bytes % (self.num_banks * self.word_bytes):
            raise ArchitectureError(
                "SPM size must be a whole number of words per bank"
            )

    @property
    def num_words(self) -> int:
        return self.size_bytes // self.word_bytes

    @property
    def words_per_bank(self) -> int:
        return self.num_words // self.num_banks

    def bank_of(self, word_address: int) -> int:
        """Bank holding ``word_address`` (word-interleaved)."""
        if not 0 <= word_address < self.num_words:
            raise ArchitectureError(
                f"word address {word_address} outside SPM "
                f"(capacity {self.num_words} words)"
            )
        return word_address % self.num_banks

    def fits(self, footprint_bytes: int) -> bool:
        """True when a working set of ``footprint_bytes`` fits on chip."""
        return 0 <= footprint_bytes <= self.size_bytes


@dataclass
class BankConflictTracker:
    """Counts per-cycle bank conflicts for the functional simulator.

    Each bank accepts one read and one write per base cycle; extra
    accesses in the same cycle are recorded as conflicts (the hardware
    would stall, the model charges a statistic).
    """

    spm: ScratchpadMemory
    conflicts: int = 0
    accesses: int = 0
    _cycle_reads: dict[int, int] = field(default_factory=dict)
    _cycle_writes: dict[int, int] = field(default_factory=dict)

    def begin_cycle(self) -> None:
        self._cycle_reads.clear()
        self._cycle_writes.clear()

    def access(self, word_address: int, is_write: bool) -> bool:
        """Record an access; returns True when it conflicts."""
        bank = self.spm.bank_of(word_address)
        counts = self._cycle_writes if is_write else self._cycle_reads
        counts[bank] = counts.get(bank, 0) + 1
        self.accesses += 1
        if counts[bank] > 1:
            self.conflicts += 1
            return True
        return False

    @property
    def conflict_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.conflicts / self.accesses
