"""The CGRA tile.

A tile bundles a functional-unit complex, a register file / bypass
buffers for holding in-flight data, a configuration memory holding one
control word per II cycle, and a crossbar that routes data between the
four mesh neighbours, the local FU and the registers (the paper's 6x7
crossbar on a mesh tile).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.fu import FunctionalUnit
from repro.dfg.ops import Opcode


@dataclass(frozen=True)
class Tile:
    """One tile of the fabric.

    Attributes:
        id: Dense index, row-major from the top-left tile.
        x: Column (0 = leftmost, SPM-connected).
        y: Row.
        fu: Functional-unit capability.
        num_registers: Bypass/register slots available per cycle for
            holding data in place during routing.
        config_depth: Control-memory words (bounds the largest II the
            tile can hold a modulo schedule for).
    """

    id: int
    x: int
    y: int
    fu: FunctionalUnit
    num_registers: int = 8
    config_depth: int = 32

    @property
    def has_memory_access(self) -> bool:
        """True when this tile can host LOAD/STORE (SPM-connected)."""
        return self.fu.supports(Opcode.LOAD)

    def supports(self, opcode: Opcode) -> bool:
        return self.fu.supports(opcode)

    def __repr__(self) -> str:
        mem = ",mem" if self.has_memory_access else ""
        return f"Tile({self.id}@{self.x},{self.y}{mem})"
