"""The CGRA fabric: a mesh of tiles partitioned into DVFS islands.

This is the hardware object every other subsystem consumes: the MRRG is
built from it, the mappers place DFG nodes onto its tiles, the power
model charges its components, and the streaming partitioner hands its
islands out to pipeline stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.dvfs import DVFSConfig, DEFAULT_DVFS_CONFIG
from repro.arch.fu import alu_fu, memory_fu, universal_fu
from repro.arch.islands import Island, island_lookup, partition_islands
from repro.arch.spm import ScratchpadMemory
from repro.arch.tile import Tile
from repro.dfg.ops import Opcode
from repro.errors import ArchitectureError


@dataclass(frozen=True)
class Link:
    """A directed mesh link between two neighbouring tiles."""

    src: int
    dst: int

    def __repr__(self) -> str:
        return f"Link({self.src}->{self.dst})"


#: Neighbour offsets per interconnect topology.
_TOPOLOGY_OFFSETS = {
    "mesh": ((0, -1), (-1, 0), (1, 0), (0, 1)),
    "torus": ((0, -1), (-1, 0), (1, 0), (0, 1)),
    # King mesh: mesh plus diagonals (HyCUBE-class richer crossbars).
    "king": ((0, -1), (-1, 0), (1, 0), (0, 1),
             (-1, -1), (1, -1), (-1, 1), (1, 1)),
}


class CGRA:
    """An ``rows x cols`` spatio-temporal CGRA.

    Tiles are numbered row-major; tiles in ``memory_columns`` (by default
    the leftmost column) can execute LOAD/STORE because they are wired to
    the scratchpad. Islands partition the fabric into DVFS domains. The
    interconnect is a mesh by default; ``topology`` selects a torus
    (wrap-around links) or a king mesh (diagonals) instead.

    Build one with :meth:`CGRA.build`:

    >>> from repro.arch import CGRA
    >>> cgra = CGRA.build(4, 4, island_shape=(2, 2))
    >>> cgra.num_tiles, len(cgra.islands)
    (16, 4)
    """

    def __init__(self, rows: int, cols: int, tiles: list[Tile],
                 islands: list[Island], dvfs: DVFSConfig,
                 spm: ScratchpadMemory, name: str = "",
                 topology: str = "mesh"):
        if len(tiles) != rows * cols:
            raise ArchitectureError(
                f"expected {rows * cols} tiles, got {len(tiles)}"
            )
        if topology not in _TOPOLOGY_OFFSETS:
            raise ArchitectureError(
                f"unknown topology {topology!r}; "
                f"known: {sorted(_TOPOLOGY_OFFSETS)}"
            )
        self.rows = rows
        self.cols = cols
        self.tiles = tuple(tiles)
        self.islands = tuple(islands)
        self.dvfs = dvfs
        self.spm = spm
        self.topology = topology
        self.name = name or f"cgra{rows}x{cols}"
        self._island_of = island_lookup(list(islands))
        if set(self._island_of) != set(range(rows * cols)):
            raise ArchitectureError("islands must cover every tile exactly once")
        self._neighbors: dict[int, tuple[int, ...]] = {}
        wrap = topology == "torus"
        for tile in self.tiles:
            near = []
            for dx, dy in _TOPOLOGY_OFFSETS[topology]:
                x, y = tile.x + dx, tile.y + dy
                if wrap:
                    x, y = x % cols, y % rows
                if 0 <= x < cols and 0 <= y < rows:
                    candidate = y * cols + x
                    if candidate != tile.id and candidate not in near:
                        near.append(candidate)
            self._neighbors[tile.id] = tuple(near)
        self._distance = self._all_pairs_hops()

    def _all_pairs_hops(self) -> list[list[int]]:
        """BFS all-pairs hop distances (exact for any topology)."""
        n = self.num_tiles
        table = [[-1] * n for _ in range(n)]
        for source in range(n):
            row = table[source]
            row[source] = 0
            frontier = [source]
            depth = 0
            while frontier:
                depth += 1
                nxt = []
                for tile in frontier:
                    for neighbor in self._neighbors[tile]:
                        if row[neighbor] < 0:
                            row[neighbor] = depth
                            nxt.append(neighbor)
                frontier = nxt
        return table

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, rows: int, cols: int, island_shape: tuple[int, int] = (2, 2),
              dvfs: DVFSConfig = DEFAULT_DVFS_CONFIG,
              spm: ScratchpadMemory | None = None,
              memory_columns: tuple[int, ...] = (0,),
              op_latencies: dict | None = None,
              topology: str = "mesh",
              alu_only_tiles: tuple[int, ...] = (),
              name: str = "") -> "CGRA":
        """Build a CGRA with rectangular DVFS islands.

        ``island_shape`` is (rows, cols) of each island; ``(1, 1)`` gives
        the per-tile DVFS configuration used as the UE-CGRA-style
        comparison point. ``op_latencies`` models multi-cycle FUs
        (opcode -> own-clock cycles); the default is single-cycle
        everything, the prototype's setting. ``topology`` selects the
        interconnect: ``"mesh"`` (the prototype), ``"torus"`` or
        ``"king"``. ``alu_only_tiles`` marks tiles whose FU drops the
        multiplier/divider (heterogeneous fabrics); memory-column tiles
        keep their full capability.
        """
        if rows < 1 or cols < 1:
            raise ArchitectureError("fabric must be at least 1x1")
        for col in memory_columns:
            if not 0 <= col < cols:
                raise ArchitectureError(f"memory column {col} out of range")
        reduced = set(alu_only_tiles)
        for tile_id in reduced:
            if not 0 <= tile_id < rows * cols:
                raise ArchitectureError(
                    f"alu_only tile {tile_id} out of range"
                )
        tiles = []
        for y in range(rows):
            for x in range(cols):
                tile_id = y * cols + x
                if x in memory_columns:
                    fu = memory_fu(op_latencies)
                elif tile_id in reduced:
                    fu = alu_fu(op_latencies)
                else:
                    fu = universal_fu(op_latencies)
                tiles.append(Tile(id=tile_id, x=x, y=y, fu=fu))
        islands = partition_islands(rows, cols, island_shape[0], island_shape[1])
        return cls(rows, cols, tiles, islands, dvfs,
                   spm or ScratchpadMemory(), name, topology=topology)

    def with_islands(self, island_shape: tuple[int, int]) -> "CGRA":
        """The same fabric re-partitioned into a different island shape."""
        islands = partition_islands(self.rows, self.cols,
                                    island_shape[0], island_shape[1])
        return CGRA(self.rows, self.cols, list(self.tiles), islands,
                    self.dvfs, self.spm, name=self.name,
                    topology=self.topology)

    # -- topology ---------------------------------------------------------

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    def tile(self, tile_id: int) -> Tile:
        try:
            return self.tiles[tile_id]
        except IndexError:
            raise ArchitectureError(f"no tile {tile_id}") from None

    def tile_at(self, x: int, y: int) -> Tile:
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise ArchitectureError(f"no tile at ({x}, {y})")
        return self.tiles[y * self.cols + x]

    def neighbors(self, tile_id: int) -> tuple[int, ...]:
        """Mesh neighbours of a tile, in (N, W, E, S) scan order."""
        return self._neighbors[tile_id]

    def links(self) -> list[Link]:
        """All directed mesh links."""
        return [
            Link(tile.id, n) for tile in self.tiles
            for n in self._neighbors[tile.id]
        ]

    def distance(self, a: int, b: int) -> int:
        """Exact hop distance between two tiles (BFS, any topology)."""
        try:
            hops = self._distance[a][b]
        except IndexError:
            raise ArchitectureError(f"no tile {a} or {b}") from None
        if hops < 0:
            raise ArchitectureError(f"tiles {a} and {b} are disconnected")
        return hops

    # -- islands ----------------------------------------------------------

    def island_of(self, tile_id: int) -> Island:
        return self.islands[self._island_of[tile_id]]

    def island(self, island_id: int) -> Island:
        try:
            return self.islands[island_id]
        except IndexError:
            raise ArchitectureError(f"no island {island_id}") from None

    @property
    def island_shape_name(self) -> str:
        first = self.islands[0]
        return f"{first.height}x{first.width}"

    # -- capability -------------------------------------------------------

    def memory_tile_ids(self) -> list[int]:
        """Tiles that can host LOAD/STORE operations."""
        return [t.id for t in self.tiles if t.has_memory_access]

    def can_execute(self, tile_id: int, opcode: Opcode) -> bool:
        return self.tile(tile_id).supports(opcode)

    def op_latency(self, tile_id: int, opcode: Opcode) -> int:
        """Own-clock cycles ``opcode`` takes on ``tile_id``'s FU."""
        return self.tile(tile_id).fu.latency(opcode)

    def __repr__(self) -> str:
        return (
            f"CGRA({self.rows}x{self.cols}, islands={self.island_shape_name}, "
            f"levels={[lv.name for lv in self.dvfs.levels]})"
        )
