"""DVFS operating points and level configuration.

ICED's prototype exposes three active levels plus power gating
(paper section V-A):

========  =======  ==========  =========
level     voltage  frequency   slowdown
========  =======  ==========  =========
normal    0.70 V   434.0 MHz   1
relax     0.50 V   217.0 MHz   2
rest      0.42 V   108.5 MHz   4
gated     0.00 V     0.0 MHz   (inactive)
========  =======  ==========  =========

``slowdown`` is the number of *base* clock cycles one own-clock cycle of
the level spans (equation 1 of the paper: f_normal = 2 f_relax =
4 f_rest). The framework is parameterizable in the number of levels, so
levels are value objects grouped by a :class:`DVFSConfig` rather than a
closed enum.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ArchitectureError


@dataclass(frozen=True)
class DVFSLevel:
    """One voltage/frequency operating point of a DVFS island.

    Attributes:
        name: Human-readable level name ("normal", "relax", ...).
        voltage: Supply voltage in volts (0 when power gated).
        frequency_mhz: Clock frequency in MHz (0 when power gated).
        slowdown: Base cycles per own-clock cycle; 0 marks power gating.
    """

    name: str
    voltage: float
    frequency_mhz: float
    slowdown: int

    def __post_init__(self) -> None:
        if self.slowdown < 0:
            raise ArchitectureError(f"negative slowdown on level {self.name!r}")
        if self.slowdown == 0 and (self.voltage or self.frequency_mhz):
            raise ArchitectureError(
                f"power-gated level {self.name!r} must have zero V and f"
            )

    @property
    def is_gated(self) -> bool:
        """True for the power-gated pseudo-level."""
        return self.slowdown == 0

    @property
    def speed_fraction(self) -> float:
        """Frequency relative to a slowdown-1 level (gated counts as 0)."""
        if self.is_gated:
            return 0.0
        return 1.0 / self.slowdown

    def at_least_as_fast_as(self, other: "DVFSLevel") -> bool:
        """True if this level's clock is no slower than ``other``'s.

        This is the feasibility rule of Algorithm 2 (line 17): a node
        *labeled* with some level may only map onto an island whose
        *assigned* level is at least as fast as the label.
        """
        if self.is_gated:
            return other.is_gated
        if other.is_gated:
            return True
        return self.slowdown <= other.slowdown

    def __repr__(self) -> str:
        return f"DVFSLevel({self.name}, {self.voltage}V, {self.frequency_mhz}MHz)"


NORMAL = DVFSLevel("normal", voltage=0.70, frequency_mhz=434.0, slowdown=1)
RELAX = DVFSLevel("relax", voltage=0.50, frequency_mhz=217.0, slowdown=2)
REST = DVFSLevel("rest", voltage=0.42, frequency_mhz=108.5, slowdown=4)
POWER_GATED = DVFSLevel("power_gated", voltage=0.0, frequency_mhz=0.0, slowdown=0)


@dataclass(frozen=True)
class DVFSConfig:
    """An ordered set of active DVFS levels plus the power-gated state.

    ``levels`` is ordered fastest first; ``levels[0]`` is the *normal*
    (nominal) level every performance-critical operation targets.
    """

    levels: tuple[DVFSLevel, ...]
    power_gated: DVFSLevel = POWER_GATED

    def __post_init__(self) -> None:
        if not self.levels:
            raise ArchitectureError("a DVFSConfig needs at least one active level")
        slowdowns = [level.slowdown for level in self.levels]
        if any(s <= 0 for s in slowdowns):
            raise ArchitectureError("active levels must have positive slowdown")
        if slowdowns != sorted(slowdowns):
            raise ArchitectureError("levels must be ordered fastest first")
        if len(set(level.name for level in self.levels)) != len(self.levels):
            raise ArchitectureError("level names must be unique")
        if not self.power_gated.is_gated:
            raise ArchitectureError("power_gated must be a gated level")
        # Neighbor lookup tables (value-keyed, same semantics as
        # ``levels.index``): the streaming DVFS controller asks for
        # slower/faster once per kernel per window, which adds up over
        # million-input streams.
        last = len(self.levels) - 1
        object.__setattr__(self, "_slower_map", {
            level: self.levels[min(i + 1, last)]
            for i, level in enumerate(self.levels)
        })
        object.__setattr__(self, "_faster_map", {
            level: self.levels[max(i - 1, 0)]
            for i, level in enumerate(self.levels)
        })

    @property
    def normal(self) -> DVFSLevel:
        """The nominal (fastest) level."""
        return self.levels[0]

    @property
    def slowest(self) -> DVFSLevel:
        """The slowest active (non-gated) level."""
        return self.levels[-1]

    @property
    def all_levels(self) -> tuple[DVFSLevel, ...]:
        """Active levels plus the power-gated state."""
        return self.levels + (self.power_gated,)

    def level_named(self, name: str) -> DVFSLevel:
        for level in self.all_levels:
            if level.name == name:
                return level
        raise ArchitectureError(f"no DVFS level named {name!r}")

    def index_of(self, level: DVFSLevel) -> int:
        """Position of an active level (0 = normal). Gated is not indexed."""
        try:
            return self.levels.index(level)
        except ValueError:
            raise ArchitectureError(f"{level!r} is not an active level") from None

    def slower(self, level: DVFSLevel) -> DVFSLevel:
        """The next slower active level, clamped at the slowest."""
        nxt = self._slower_map.get(level)
        if nxt is None:
            self.index_of(level)  # raises ArchitectureError
        return nxt

    def faster(self, level: DVFSLevel) -> DVFSLevel:
        """The next faster active level, clamped at normal."""
        nxt = self._faster_map.get(level)
        if nxt is None:
            self.index_of(level)  # raises ArchitectureError
        return nxt

    def fraction(self, level: DVFSLevel) -> float:
        """Fig 10's metric: normal 1.0, relax 0.5, rest 0.25, gated 0.0."""
        if level.is_gated:
            return 0.0
        return level.frequency_mhz / self.normal.frequency_mhz

    def level_for_slowdown(self, slowdown: int) -> DVFSLevel:
        """The fastest active level whose slowdown is >= ``slowdown``.

        Used by the per-tile DVFS assigner: given how much slack an
        operation has, pick the slowest level that still fits.
        """
        chosen = self.normal
        for level in self.levels:
            if level.slowdown <= slowdown:
                chosen = level
            else:
                break
        return chosen


DEFAULT_DVFS_CONFIG = DVFSConfig(levels=(NORMAL, RELAX, REST))


@lru_cache(maxsize=None)
def scaled_config(num_levels: int, base: DVFSLevel = NORMAL) -> DVFSConfig:
    """Build a config with ``num_levels`` active levels halving f each step.

    Voltage is scaled with a simple alpha-power-law fit through the
    paper's three published points (0.7 V @ 1x, 0.5 V @ 1/2, 0.42 V @ 1/4),
    supporting the paper's claim that ICED is parameterizable in the
    number of DVFS levels.

    The whole V/F table is interpolated in one vectorized pass and the
    resulting (frozen, immutable) config is memoized on its fingerprint
    ``(num_levels, base)`` — a DSE sweep re-deriving the table for every
    point of a fabric×table cross product gets the same object back
    instead of rebuilding it per compile.
    """
    if num_levels < 1:
        raise ArchitectureError("need at least one active level")
    slowdowns = np.left_shift(1, np.arange(num_levels))
    frequencies = base.frequency_mhz / slowdowns
    # Same arithmetic as _voltage_for_slowdown, whole table at once
    # (IEEE-754 doubles either way, so the values match the scalar
    # helper bit for bit).
    voltages = np.round(
        base.voltage
        * np.maximum(np.power(slowdowns.astype(np.float64), -0.37), 0.55),
        4,
    )
    levels = tuple(
        DVFSLevel(
            "normal" if i == 0 else f"level_{int(slowdowns[i])}x",
            float(voltages[i]),
            float(frequencies[i]),
            int(slowdowns[i]),
        )
        for i in range(num_levels)
    )
    return DVFSConfig(levels=levels)


def _voltage_for_slowdown(v_nominal: float, slowdown: int) -> float:
    """Interpolated V(f) curve through the paper's operating points.

    The published pairs give V ratios of 1.0, 0.714, 0.6 for slowdowns
    1, 2, 4; a power law V = v_nominal * slowdown**-0.37 fits them to
    within ~2% and extrapolates sanely, with a floor at 55% of nominal
    (near-threshold limit).
    """
    ratio = slowdown**-0.37
    return round(v_nominal * max(ratio, 0.55), 4)
