"""Transactional modulo-II resource accounting.

Resources are identified by small tuples:

* ``("fu", tile)`` — the tile's FU issue slot, capacity 1;
* ``("link", src, dst)`` — a directed mesh link, capacity 1;
* ``("xbar", tile)`` — concurrent crossbar connections, capacity
  ``xbar_capacity``;
* ``("reg", tile)`` — register/bypass slots holding data in place,
  capacity ``tile.num_registers``.

A claim covers ``length`` consecutive base cycles starting at ``start``;
slot indices are taken modulo II. A claim longer than II legitimately
occupies multiple units of a capacity resource in the same slot (a value
waiting 2*II cycles needs two registers), which is why usage is counted,
not boolean.

The pool is transactional: :meth:`checkpoint` / :meth:`rollback` undo
claims, which the placement engine uses to back out of failed candidate
placements.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.errors import MappingError

ResourceKey = tuple

#: Longest single claim we accept; a claim this long is a mapper bug.
MAX_CLAIM_LENGTH = 4096


def fu_key(tile: int) -> ResourceKey:
    return ("fu", tile)


def link_key(src: int, dst: int) -> ResourceKey:
    return ("link", src, dst)


def xbar_key(tile: int) -> ResourceKey:
    return ("xbar", tile)


def reg_key(tile: int) -> ResourceKey:
    return ("reg", tile)


class ModuloResourcePool:
    """Usage counts for every (resource, slot) pair of an II-cycle MRRG."""

    def __init__(self, cgra: CGRA, ii: int, xbar_capacity: int = 4):
        if ii < 1:
            raise MappingError("II must be at least 1")
        self.cgra = cgra
        self.ii = ii
        self.xbar_capacity = xbar_capacity
        self._usage: dict[tuple[ResourceKey, int], int] = {}
        self._log: list[tuple[ResourceKey, int]] = []

    # -- capacities ---------------------------------------------------------

    def capacity(self, key: ResourceKey) -> int:
        kind = key[0]
        if kind == "fu" or kind == "link":
            return 1
        if kind == "xbar":
            return self.xbar_capacity
        if kind == "reg":
            return self.cgra.tile(key[1]).num_registers
        raise MappingError(f"unknown resource kind {kind!r}")

    # -- queries ------------------------------------------------------------

    def used(self, key: ResourceKey, slot: int) -> int:
        return self._usage.get((key, slot % self.ii), 0)

    def is_free(self, key: ResourceKey, start: int, length: int,
                amount: int = 1) -> bool:
        """Can ``amount`` more units be claimed for the whole interval?

        The check accounts for wrap-around: a length >= II interval hits
        every slot at least once, some slots multiple times.
        """
        if length <= 0:
            return True
        self._check_length(length)
        cap = self.capacity(key)
        per_slot = self._slot_counts(start, length)
        for slot, times in per_slot.items():
            if self.used(key, slot) + amount * times > cap:
                return False
        return True

    # -- mutation -------------------------------------------------------------

    def claim(self, key: ResourceKey, start: int, length: int) -> None:
        """Claim the interval; raises :class:`MappingError` if it overflows."""
        if length <= 0:
            return
        self._check_length(length)
        if not self.is_free(key, start, length):
            raise MappingError(
                f"resource {key} oversubscribed at slots "
                f"[{start}, {start + length}) mod {self.ii}"
            )
        for t in range(start, start + length):
            slot = t % self.ii
            self._usage[(key, slot)] = self._usage.get((key, slot), 0) + 1
            self._log.append((key, slot))

    def checkpoint(self) -> int:
        """A token for :meth:`rollback`."""
        return len(self._log)

    def rollback(self, token: int) -> None:
        """Undo every claim made after ``token`` was taken."""
        while len(self._log) > token:
            key, slot = self._log.pop()
            remaining = self._usage[(key, slot)] - 1
            if remaining:
                self._usage[(key, slot)] = remaining
            else:
                del self._usage[(key, slot)]

    # -- statistics -------------------------------------------------------------

    def busy_slots(self, key: ResourceKey) -> int:
        """Distinct busy slots of one resource (<= II)."""
        return sum(
            1 for (k, _slot), used in self._usage.items()
            if k == key and used > 0
        )

    def tile_busy_slots(self, tile: int, kinds: tuple[str, ...] = ("fu", "xbar")) -> int:
        """Distinct slots in which the tile's FU or crossbar is active."""
        slots = set()
        for (key, slot), used in self._usage.items():
            if used > 0 and key[0] in kinds and key[1] == tile:
                slots.add(slot)
        return len(slots)

    # -- internals ------------------------------------------------------------

    def _slot_counts(self, start: int, length: int) -> dict[int, int]:
        counts: dict[int, int] = {}
        for t in range(start, start + length):
            slot = t % self.ii
            counts[slot] = counts.get(slot, 0) + 1
        return counts

    def _check_length(self, length: int) -> None:
        if length > MAX_CLAIM_LENGTH:
            raise MappingError(
                f"claim of {length} cycles exceeds the sanity cap "
                f"({MAX_CLAIM_LENGTH}); this indicates a mapper bug"
            )
