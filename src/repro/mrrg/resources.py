"""Transactional modulo-II resource accounting.

Resources are identified by small tuples:

* ``("fu", tile)`` — the tile's FU issue slot, capacity 1;
* ``("link", src, dst)`` — a directed mesh link, capacity 1;
* ``("xbar", tile)`` — concurrent crossbar connections, capacity
  ``xbar_capacity``;
* ``("reg", tile)`` — register/bypass slots holding data in place,
  capacity ``tile.num_registers``.

A claim covers ``length`` consecutive base cycles starting at ``start``;
slot indices are taken modulo II. A claim longer than II legitimately
occupies multiple units of a capacity resource in the same slot (a value
waiting 2*II cycles needs two registers), which is why usage is counted,
not boolean.

Storage is a flat array: every resource gets a dense integer id (FUs,
then crossbars, then register files, then links, in tile order), and
usage lives at ``rid * II + slot`` in one list of ints. The router reads
that list directly on its hot path; the undo log is a list of flat
indices. The id layout is a function of the fabric alone, so it is
computed once and cached on the :class:`CGRA` instance, shared by every
pool (any II, any crossbar capacity) built over that fabric.

The pool is transactional: :meth:`checkpoint` / :meth:`rollback` undo
claims, which the placement engine uses to back out of failed candidate
placements.

Every mutation also maintains :attr:`epoch`, an order-independent
Zobrist hash over the usage counts of *routing-visible* resources
(links, crossbars, registers — FU occupancy is never read by the
router). Two pools over the same fabric and II whose routing-visible
counts are equal have equal epochs regardless of claim order or
intervening rollbacks, which is what makes the epoch a sound route-memo
invalidation key.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.errors import MappingError

ResourceKey = tuple

#: Longest single claim we accept; a claim this long is a mapper bug.
MAX_CLAIM_LENGTH = 4096


def fu_key(tile: int) -> ResourceKey:
    return ("fu", tile)


def link_key(src: int, dst: int) -> ResourceKey:
    return ("link", src, dst)


def xbar_key(tile: int) -> ResourceKey:
    return ("xbar", tile)


def reg_key(tile: int) -> ResourceKey:
    return ("reg", tile)


_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def _zvalue(index: int, count: int) -> int:
    """Zobrist value of "flat cell ``index`` holds ``count`` units"."""
    return _mix64((index + 1) * 0x9E3779B97F4A7C15 ^ count * 0xD1B54A32D192ED03)


#: Cache of XOR deltas for the count transition c -> c+1 of one cell,
#: keyed ``index << 4 | count`` (counts never exceed the largest
#: capacity, 8, so 4 bits suffice; int keys hash much faster than
#: tuples on the claim/rollback hot path).
_WTAB: dict[int, int] = {}


def _wdelta(index: int, count: int) -> int:
    key = (index << 4) | count
    w = _WTAB.get(key)
    if w is None:
        w = _zvalue(index, count) ^ _zvalue(index, count + 1)
        _WTAB[key] = w
    return w


def _fabric_layout(cgra: CGRA):
    """The fabric's dense resource-id layout (cached on the CGRA).

    Returns ``(rids, keys, link_rows, reg_caps)`` where ``rids`` maps
    every resource key to its dense id, ``keys`` is the inverse, and
    ``link_rows[tile][k]`` is the id of the link to the k-th entry of
    ``cgra._neighbors[tile]`` (the router walks neighbours in exactly
    that order).
    """
    layout = getattr(cgra, "_mrrg_layout", None)
    if layout is not None:
        return layout
    num = cgra.num_tiles
    rids: dict[ResourceKey, int] = {}
    keys: list[ResourceKey] = []
    for kind in ("fu", "xbar", "reg"):
        for tile in range(num):
            rids[(kind, tile)] = len(keys)
            keys.append((kind, tile))
    link_rows = []
    for tile in range(num):
        row = []
        for neighbor in cgra._neighbors[tile]:
            key = ("link", tile, neighbor)
            rids[key] = len(keys)
            row.append(len(keys))
            keys.append(key)
        link_rows.append(tuple(row))
    reg_caps = tuple(cgra.tile(t).num_registers for t in range(num))
    layout = (rids, tuple(keys), tuple(link_rows), reg_caps)
    cgra._mrrg_layout = layout
    return layout


class ModuloResourcePool:
    """Usage counts for every (resource, slot) pair of an II-cycle MRRG."""

    def __init__(self, cgra: CGRA, ii: int, xbar_capacity: int = 4):
        if ii < 1:
            raise MappingError("II must be at least 1")
        self.cgra = cgra
        self.ii = ii
        self.xbar_capacity = xbar_capacity
        rids, keys, link_rows, reg_caps = _fabric_layout(cgra)
        num = cgra.num_tiles
        self.num_tiles = num
        self._rids = rids
        self._keys = keys
        self.link_rows = link_rows
        self._caps: list[int] = (
            [1] * num + [xbar_capacity] * num + list(reg_caps)
            + [1] * (len(keys) - 3 * num)
        )
        #: Flat usage counts, indexed ``rid * ii + slot``. The router
        #: reads this directly (read-only) on its hot path.
        self._use: list[int] = [0] * (len(keys) * ii)
        #: Router adjacency: per tile, ``(link_base, neighbor,
        #: xbar_base)`` triples with the ``* ii`` offsets pre-applied,
        #: in ``cgra._neighbors`` order.
        self.adj: tuple[tuple[tuple[int, int, int], ...], ...] = tuple(
            tuple(
                (lrid * ii, nbr, (num + nbr) * ii)
                for lrid, nbr in zip(link_rows[t], cgra._neighbors[t])
            )
            for t in range(num)
        )
        self._log: list[int] = []
        # Flat indices below this belong to FU resources; only cells at
        # or above it feed the routing-visibility epoch.
        self._fu_end = num * ii
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Zobrist hash of the routing-visible usage counts.

        Equal epochs mean (up to hash collision) equal link/xbar/reg
        occupancy, hence identical router outcomes for identical
        queries — the route memo's invalidation key.
        """
        return self._epoch

    # -- capacities ---------------------------------------------------------

    def capacity(self, key: ResourceKey) -> int:
        kind = key[0]
        if kind == "fu" or kind == "link":
            return 1
        if kind == "xbar":
            return self.xbar_capacity
        if kind == "reg":
            return self.cgra.tile(key[1]).num_registers
        raise MappingError(f"unknown resource kind {kind!r}")

    # -- queries ------------------------------------------------------------

    def used(self, key: ResourceKey, slot: int) -> int:
        rid = self._rids.get(key)
        if rid is None:
            return 0
        return self._use[rid * self.ii + slot % self.ii]

    def is_free(self, key: ResourceKey, start: int, length: int,
                amount: int = 1) -> bool:
        """Can ``amount`` more units be claimed for the whole interval?

        The check accounts for wrap-around: a length >= II interval hits
        every slot at least once, some slots multiple times.
        """
        if length <= 0:
            return True
        self._check_length(length)
        cap = self.capacity(key)
        rid = self._rids.get(key)
        ii = self.ii
        use = self._use
        base = None if rid is None else rid * ii
        start %= ii
        if length >= ii:
            full, rem = divmod(length, ii)
            for slot in range(ii):
                times = full + (1 if (slot - start) % ii < rem else 0)
                held = 0 if base is None else use[base + slot]
                if held + amount * times > cap:
                    return False
            return True
        for k in range(length):
            held = 0 if base is None else use[base + (start + k) % ii]
            if held + amount > cap:
                return False
        return True

    def interval_free(self, rid: int, start: int, length: int) -> bool:
        """Fast-path :meth:`is_free` for one more unit of a known rid."""
        if length <= 0:
            return True
        if length > MAX_CLAIM_LENGTH:
            return False
        ii = self.ii
        use = self._use
        cap = self._caps[rid]
        base = rid * ii
        start %= ii
        if length >= ii:
            full, rem = divmod(length, ii)
            for slot in range(ii):
                if use[base + slot] + full + (
                    1 if (slot - start) % ii < rem else 0
                ) > cap:
                    return False
            return True
        for k in range(length):
            if use[base + (start + k) % ii] >= cap:
                return False
        return True

    # -- mutation -------------------------------------------------------------

    def claim(self, key: ResourceKey, start: int, length: int) -> None:
        """Claim the interval; raises :class:`MappingError` if it overflows."""
        if length <= 0:
            return
        rid = self._rids.get(key)
        if rid is None:
            self.capacity(key)  # raises on unknown kinds
            raise MappingError(f"unknown resource {key!r} on {self.cgra.name}")
        self.claim_rid(rid, start, length)

    def claim_rid(self, rid: int, start: int, length: int) -> None:
        """:meth:`claim` for a known flat resource id (skips the key
        lookup; FU rids equal their tile ids). ``length`` must be > 0."""
        ii = self.ii
        base = rid * ii
        cap = self._caps[rid]
        use = self._use
        if length == 1:
            # Single-cycle claims (every hop on an un-slowed tile)
            # dominate; skip the loop machinery.
            index = base + start % ii
            count = use[index]
            if count >= cap:
                raise MappingError(
                    f"resource {self._keys[rid]} oversubscribed at slots "
                    f"[{start}, {start + 1}) mod {ii}"
                )
            use[index] = count + 1
            self._log.append(index)
            if index >= self._fu_end:
                w = _WTAB.get((index << 4) | count)
                self._epoch ^= _wdelta(index, count) if w is None else w
            return
        self._check_length(length)
        log = self._log
        mark = len(log)
        fu_end = self._fu_end
        epoch = self._epoch
        wtab_get = _WTAB.get
        overflow = False
        slot = start % ii
        for _ in range(length):
            index = base + slot
            slot += 1
            if slot == ii:
                slot = 0
            count = use[index]
            if count >= cap:
                overflow = True
                break
            use[index] = count + 1
            log.append(index)
            if index >= fu_end:
                w = wtab_get((index << 4) | count)
                epoch ^= _wdelta(index, count) if w is None else w
        if overflow:
            # Undo the partial write so a failed claim is a no-op.
            while len(log) > mark:
                index = log.pop()
                count = use[index] = use[index] - 1
                if index >= fu_end:
                    epoch ^= _wdelta(index, count)
            self._epoch = epoch
            raise MappingError(
                f"resource {self._keys[rid]} oversubscribed at slots "
                f"[{start}, {start + length}) mod {self.ii}"
            )
        self._epoch = epoch

    def claim_route(self, path: tuple[int, ...], ready: int, depart: int,
                    deadline: int, slow) -> None:
        """Fused, rid-direct equivalent of ``claim_all(route_claims(...))``.

        Claims exactly what :func:`repro.mapper.routing.route_claims`
        enumerates, in the same order, atomically (everything is rolled
        back before the :class:`MappingError` propagates). ``slow`` is
        an indexable per-tile slowdown vector.
        """
        token = len(self._log)
        try:
            reg0 = 2 * self.num_tiles
            if len(path) == 1:
                if deadline > ready:
                    self.claim_rid(reg0 + path[0], ready, deadline - ready)
                return
            if depart > ready:
                self.claim_rid(reg0 + path[0], ready, depart - ready)
            ii = self.ii
            adj = self.adj
            t = depart
            prev = path[0]
            for nxt in path[1:]:
                s = slow[nxt]
                for link_base, neighbor, xbar_base in adj[prev]:
                    if neighbor == nxt:
                        self.claim_rid(link_base // ii, t, s)
                        self.claim_rid(xbar_base // ii, t, s)
                        break
                else:
                    raise MappingError(
                        f"unknown resource {('link', prev, nxt)!r} on "
                        f"{self.cgra.name}"
                    )
                t += s
                prev = nxt
            if deadline > t:
                self.claim_rid(reg0 + prev, t, deadline - t)
        except Exception:
            self.rollback(token)
            raise

    def checkpoint(self) -> int:
        """A token for :meth:`rollback`."""
        return len(self._log)

    def rollback(self, token: int) -> None:
        """Undo every claim made after ``token`` was taken."""
        log = self._log
        use = self._use
        fu_end = self._fu_end
        epoch = self._epoch
        wtab_get = _WTAB.get
        while len(log) > token:
            index = log.pop()
            count = use[index] = use[index] - 1
            if index >= fu_end:
                w = wtab_get((index << 4) | count)
                epoch ^= _wdelta(index, count) if w is None else w
        self._epoch = epoch

    # -- statistics -------------------------------------------------------------

    def busy_slots(self, key: ResourceKey) -> int:
        """Distinct busy slots of one resource (<= II)."""
        rid = self._rids.get(key)
        if rid is None:
            return 0
        base = rid * self.ii
        use = self._use
        return sum(1 for slot in range(self.ii) if use[base + slot] > 0)

    def tile_busy_slots(self, tile: int, kinds: tuple[str, ...] = ("fu", "xbar")) -> int:
        """Distinct slots in which the tile's FU or crossbar is active."""
        num = self.num_tiles
        ii = self.ii
        if kinds == ("fu", "xbar"):
            # The default (the engine's pressure metric) is hot.
            use = self._use
            fu_base = tile * ii
            xbar_base = (num + tile) * ii
            return sum(
                1 for slot in range(ii)
                if use[fu_base + slot] or use[xbar_base + slot]
            )
        rids: list[int] = []
        for kind in kinds:
            if kind == "fu":
                rids.append(tile)
            elif kind == "xbar":
                rids.append(num + tile)
            elif kind == "reg":
                rids.append(2 * num + tile)
            elif kind == "link":
                rids.extend(self.link_rows[tile])
        ii = self.ii
        use = self._use
        busy = 0
        for slot in range(ii):
            if any(use[rid * ii + slot] for rid in rids):
                busy += 1
        return busy

    def usage_snapshot(self) -> dict[tuple[ResourceKey, int], int]:
        """Nonzero usage counts as ``{(key, slot): count}`` (for tests)."""
        ii = self.ii
        use = self._use
        snapshot: dict[tuple[ResourceKey, int], int] = {}
        for rid, key in enumerate(self._keys):
            base = rid * ii
            for slot in range(ii):
                count = use[base + slot]
                if count:
                    snapshot[(key, slot)] = count
        return snapshot

    # -- internals ------------------------------------------------------------

    def _check_length(self, length: int) -> None:
        if length > MAX_CLAIM_LENGTH:
            raise MappingError(
                f"claim of {length} cycles exceeds the sanity cap "
                f"({MAX_CLAIM_LENGTH}); this indicates a mapper bug"
            )
