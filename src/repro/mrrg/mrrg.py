"""The MRRG façade: claim vocabulary plus a transactional pool.

The three claim builders below are the *single* definition of what an
operation, a routing hop and a register wait occupy. The placement
engine, the Dijkstra router and the independent timing validator all go
through them, so the mapper cannot "believe" a different resource model
than the one the validator checks.

Semantics (DESIGN.md section 5):

* an op issued at base cycle ``t`` on a tile with slowdown ``s`` holds
  the FU for ``[t, t+s)``;
* a hop ``a -> b`` departing at ``t`` is paced by the receiving tile's
  clock: it holds the directed link and ``b``'s crossbar for
  ``[t, t+s_b)`` and delivers at ``t + s_b``;
* data waiting at a tile holds one register slot for the wait interval.
"""

from __future__ import annotations

import networkx as nx

from repro.arch.cgra import CGRA
from repro.mrrg.resources import (
    ModuloResourcePool,
    ResourceKey,
    fu_key,
    link_key,
    reg_key,
    xbar_key,
)

#: A claim: (resource key, start cycle, length in base cycles).
Claim = tuple[ResourceKey, int, int]


def op_claims(tile: int, t: int, slowdown: int) -> list[Claim]:
    """Resources an operation occupies."""
    return [(fu_key(tile), t, slowdown)]


def hop_claims(src: int, dst: int, depart: int, s_dst: int) -> list[Claim]:
    """Resources one mesh hop occupies (paced by the receiver's clock)."""
    return [
        (link_key(src, dst), depart, s_dst),
        (xbar_key(dst), depart, s_dst),
    ]


def wait_claims(tile: int, arrival: int, until: int) -> list[Claim]:
    """Register slots held while data waits at ``tile`` for its consumer."""
    length = until - arrival
    if length <= 0:
        return []
    return [(reg_key(tile), arrival, length)]


class MRRG:
    """A modulo routing resource graph for one (CGRA, II) pair."""

    def __init__(self, cgra: CGRA, ii: int, xbar_capacity: int = 4):
        self.cgra = cgra
        self.ii = ii
        self.pool = ModuloResourcePool(cgra, ii, xbar_capacity)

    def is_free(self, claims: list[Claim]) -> bool:
        """Would all ``claims`` fit, including their mutual overlap?

        Claims in the list may overlap each other (a long wait wrapping
        the II), so the check is performed on a scratch transaction, not
        claim-by-claim.
        """
        token = self.pool.checkpoint()
        try:
            for key, start, length in claims:
                self.pool.claim(key, start, length)
        except Exception:
            self.pool.rollback(token)
            return False
        self.pool.rollback(token)
        return True

    def claim_all(self, claims: list[Claim]) -> None:
        """Claim everything; atomic (rolls back on failure) and raising."""
        token = self.pool.checkpoint()
        try:
            for key, start, length in claims:
                self.pool.claim(key, start, length)
        except Exception:
            self.pool.rollback(token)
            raise

    def checkpoint(self) -> int:
        return self.pool.checkpoint()

    def rollback(self, token: int) -> None:
        self.pool.rollback(token)

    # -- introspection -----------------------------------------------------

    def tile_busy_slots(self, tile: int) -> int:
        """Distinct base cycles (of II) the tile's FU or crossbar works."""
        return self.pool.tile_busy_slots(tile)

    def to_networkx(self) -> nx.DiGraph:
        """An explicit time-extended graph (for documentation and tests).

        Nodes are ``("tile", id, slot)``; edges connect each tile-slot to
        its mesh neighbours (and itself) at the next slot, wrapping
        modulo II — the classic textbook MRRG picture.
        """
        graph = nx.DiGraph()
        for tile in self.cgra.tiles:
            for slot in range(self.ii):
                graph.add_node(("tile", tile.id, slot))
        for tile in self.cgra.tiles:
            for slot in range(self.ii):
                nxt = (slot + 1) % self.ii
                graph.add_edge(("tile", tile.id, slot), ("tile", tile.id, nxt),
                               kind="register")
                for neighbor in self.cgra.neighbors(tile.id):
                    graph.add_edge(("tile", tile.id, slot),
                                   ("tile", neighbor, nxt), kind="link")
        return graph
