"""Modulo routing resource graph (MRRG).

The MRRG is the time-extended view of the CGRA used by modulo-scheduling
mappers: every hardware resource (FU, mesh link, crossbar port, register
slot) is replicated for each of the II cycles of the steady-state
schedule, and all claims are made modulo II.
"""

from repro.mrrg.resources import ModuloResourcePool, ResourceKey, fu_key, link_key, xbar_key, reg_key
from repro.mrrg.mrrg import MRRG

__all__ = [
    "ModuloResourcePool",
    "ResourceKey",
    "fu_key",
    "link_key",
    "xbar_key",
    "reg_key",
    "MRRG",
]
