"""The ICED command-line toolchain.

Usage::

    python -m repro kernels                       # list Table I
    python -m repro fabric --cgra 8x8 --island 2x2
    python -m repro map fir --strategy iced --show schedule,levels
    python -m repro stream gcn --inputs 80 --jobs 4
    python -m repro stream --scenario bursty --inputs 500
    python -m repro scenarios list                # traffic regimes
    python -m repro scenarios table               # iced/drips/static table
    python -m repro trace fir -o trace.json       # Chrome/Perfetto trace
    python -m repro experiments fig9 --jobs 4     # same as -m repro.experiments
    python -m repro profile fir --strategy iced   # cProfile one cold compile
    python -m repro cache stats                   # on-disk mapping cache
    python -m repro backends list                 # registered mapper backends
    python -m repro dse --fabrics 4x4,6x6 --vf 3,4  # Pareto design sweep
    python -m repro map fir --backend exact       # provably optimal II
    python -m repro map fir --portfolio --jobs 3  # race the backends
    python -m repro serve --port 8763             # compile-as-a-service
    python -m repro loadtest --requests 500       # hammer a daemon
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager

from repro import obs
from repro.arch.cgra import CGRA
from repro.compile import (
    Instrumentation,
    MappingCache,
    compile_kernel,
    compile_portfolio,
    get_cache,
    render_per_ii,
    render_report,
)
from repro.kernels.suite import kernel_names
from repro.mapper.backends import (
    DEFAULT_PORTFOLIO,
    EXPERIMENT_STRATEGIES,
    backend_names,
    describe_backends,
    strategy_choices,
)
from repro.kernels.table1 import TABLE1_SPECS
from repro.power.model import mapping_power
from repro.sim.utilization import average_dvfs_fraction, utilization_stats
from repro import viz


def _parse_shape(text: str) -> tuple[int, int]:
    rows, _, cols = text.partition("x")
    return int(rows), int(cols)


def _build_fabric(args) -> CGRA:
    rows, cols = _parse_shape(args.cgra)
    island = _parse_shape(args.island)
    return CGRA.build(rows, cols, island_shape=island)


@contextmanager
def _tracing(out: str | None):
    """Install a tracer + fresh registry; write ``out`` on the way out.

    With ``out`` falsy this is a no-op, so command handlers can wrap
    their whole body unconditionally.
    """
    if not out:
        yield None
        return
    tracer = obs.install_tracer()
    previous = obs.set_metrics(obs.MetricsRegistry())
    try:
        yield tracer
    finally:
        registry = obs.set_metrics(previous)
        obs.uninstall_tracer()
        events = obs.write_trace(out, tracer, registry)
        kinds = ", ".join(sorted(c for c in tracer.categories() if c))
        print(f"trace: {events} events ({len(tracer)} spans; {kinds}) "
              f"-> {out}")


def cmd_kernels(_args) -> int:
    print(f"{'kernel':<12}{'domain':<10}{'u1 (n/e/RecMII)':<18}"
          f"{'u2 (n/e/RecMII)':<18}")
    for name in kernel_names():
        spec = TABLE1_SPECS[name]
        print(f"{name:<12}{spec.domain:<10}"
              f"{'/'.join(map(str, spec.u1)):<18}"
              f"{'/'.join(map(str, spec.u2)):<18}")
    return 0


def cmd_fabric(args) -> int:
    print(viz.render_fabric(_build_fabric(args)))
    return 0


def _single_backend_options(args) -> dict:
    options: dict = {}
    if args.budget_s is not None and args.backend == "exact":
        options["budget_s"] = args.budget_s
    return options


def cmd_map(args) -> int:
    cgra = _build_fabric(args)
    shows = set(args.show.split(",")) if args.show else set()
    instrument = Instrumentation()
    with _tracing(args.trace):
        if args.portfolio:
            members = tuple(m for m in args.members.split(",") if m)
            portfolio = compile_portfolio(
                args.kernel, cgra, args.strategy, unroll=args.unroll,
                members=members, budget_s=args.budget_s, jobs=args.jobs,
                cache=MappingCache() if args.no_cache else None,
                instrument=instrument,
            )
            result = portfolio.winner
            print(f"portfolio: winner={portfolio.winner_backend}"
                  f" proven_optimal={portfolio.proven_optimal}"
                  + (f" gap={portfolio.optimality_gap}"
                     if portfolio.optimality_gap is not None else ""))
            for entry in portfolio.entries:
                if entry.cancelled:
                    line = "cancelled"
                elif entry.error:
                    line = f"failed: {entry.error}"
                else:
                    line = (f"II={entry.ii} cost={entry.cost:.0f}"
                            + (" (proved optimal)" if entry.optimal
                               else ""))
                print(f"  {entry.backend:<12}{line}")
        else:
            result = compile_kernel(
                args.kernel, cgra, args.strategy, unroll=args.unroll,
                backend=args.backend,
                backend_options=_single_backend_options(args),
                use_cache=not args.no_cache, instrument=instrument,
                want_bitstream="bitstream" in shows,
            )
            if args.backend != "engine":
                print(f"backend: {args.backend}"
                      + (" (proved optimal)" if result.optimal else ""))
    mapping, report = result.mapping, result.report
    print(mapping.summary())

    if "levels" in shows:
        print()
        print(viz.render_level_map(mapping))
    if "schedule" in shows:
        print()
        print(viz.render_schedule(mapping))
    if "heatmap" in shows:
        print()
        print(viz.render_utilization_heatmap(mapping, report))
    if "dfg" in shows:
        print()
        print(viz.render_dfg(mapping.dfg, mapping.labels or None))
    if "power" in shows or not shows:
        stats = utilization_stats(
            mapping, report,
            include_gated=(mapping.strategy == "baseline"),
        )
        power = mapping_power(mapping, report=report)
        print(f"utilization {stats.average:.2f}, avg DVFS level "
              f"{average_dvfs_fraction(mapping):.2f}, power "
              f"{power.total_mw:.1f} mW")
    if "bitstream" in shows:
        from repro.mapper import generate_bitstream

        print()
        bitstream = result.bitstream or generate_bitstream(mapping)
        print(bitstream.to_json(indent=2))
    if args.stats:
        print()
        print(render_report(instrument.events, get_cache().stats_dict()))
        if result.engine_stats is not None and result.engine_stats.per_ii:
            print()
            print("engine effort per II attempt:")
            print(render_per_ii(result.engine_stats.per_ii))
    return 0


def cmd_stream(args) -> int:
    import time

    from repro.streaming.app import gcn_app, lu_app
    from repro.streaming.controller import DVFSController
    from repro.streaming.drips import fast_simulate_drips, simulate_drips
    from repro.streaming.engine import fast_simulate_stream, simulate_stream
    from repro.streaming.partitioner import partition_app, streaming_cgra
    from repro.streaming.scenarios import make_scenario
    from repro.streaming.stage import inputs_of
    from repro.streaming.workloads import (
        EnzymeGraphStream,
        SparseMatrixStream,
        skip_blocks,
        take_inputs,
    )

    if args.scenario:
        from repro.errors import ScenarioError

        try:
            scenario = make_scenario(args.scenario, seed=args.seed,
                                     n=args.inputs)
        except ScenarioError as exc:
            print(f"stream: {exc}", file=sys.stderr)
            return 2
        app, workload = scenario.app, scenario.stream
        print(f"scenario: {scenario.name} (seed {scenario.seed}, "
              f"app {app.name})")
    elif args.app == "gcn":
        app = gcn_app()
        workload = EnzymeGraphStream(num_graphs=args.inputs)
    elif args.app == "lu":
        app = lu_app()
        workload = SparseMatrixStream(num_matrices=args.inputs)
    else:
        print("stream: pass an app (gcn/lu) or --scenario NAME",
              file=sys.stderr)
        return 2
    fabric = streaming_cgra()
    # The partitioner profiles the first inputs (the paper uses 50);
    # cap the prefix so a million-input run doesn't profile a third of
    # the stream. The rest of the stream is only ever touched block by
    # block on the fast engine.
    profile_n = min(50, max(5, args.inputs // 3))
    profile = take_inputs(workload.feature_blocks(), profile_n)
    instrument = Instrumentation()
    partition = None

    def run_streaming():
        if args.engine == "fast":
            controller = DVFSController(
                dvfs=fabric.dvfs,
                kernel_names=[p.kernel.name for p in partition.placements],
                window=args.window,
                record_decisions=False,
            )
            iced = fast_simulate_stream(
                partition,
                skip_blocks(workload.feature_blocks(), profile_n),
                window=args.window, controller=controller,
                keep_windows=False,
            )
            drips = fast_simulate_drips(
                partition,
                skip_blocks(workload.feature_blocks(), profile_n),
                window=args.window, keep_windows=False,
            )
        else:
            run = inputs_of(skip_blocks(workload.feature_blocks(),
                                        profile_n))
            iced = simulate_stream(partition, run, window=args.window)
            drips = simulate_drips(partition, run, window=args.window)
        return iced, drips

    with _tracing(args.trace):
        partition = partition_app(app, fabric, profile,
                                  use_cache=not args.no_cache,
                                  instrument=instrument,
                                  jobs=args.jobs,
                                  cache_dir=args.cache_dir)
        print(partition.summary())
        wall_start = time.perf_counter()
        if args.profile:
            import cProfile
            import io
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            iced, drips = run_streaming()
            profiler.disable()
            buffer = io.StringIO()
            stats = pstats.Stats(profiler, stream=buffer)
            stats.strip_dirs().sort_stats("cumulative").print_stats(15)
            print(buffer.getvalue())
        else:
            iced, drips = run_streaming()
        elapsed = time.perf_counter() - wall_start
    print(f"iced : {iced.makespan_cycles:.0f} cycles, "
          f"{iced.average_power_mw:.1f} mW")
    print(f"drips: {drips.makespan_cycles:.0f} cycles, "
          f"{drips.average_power_mw:.1f} mW")
    ratio = iced.perf_per_watt() / drips.perf_per_watt()
    print(f"perf/W ratio (ICED / DRIPS): {ratio:.3f}")
    streamed = iced.inputs + drips.inputs
    if elapsed > 0:
        print(f"engine: {args.engine}, {streamed} inputs streamed in "
              f"{elapsed:.2f}s ({streamed / elapsed:,.0f} inputs/sec)")
    if args.stats:
        print()
        print(render_report(instrument.events, get_cache().stats_dict()))
    return 0


def cmd_scenarios(args) -> int:
    """List the traffic-scenario registry, or print the cross-scenario
    strategy table (iced/drips/static energy + p99 latency)."""
    import json as _json

    from repro.streaming.envelopes import STRATEGIES, scenario_envelope
    from repro.streaming.scenarios import describe_scenarios

    if args.action == "list":
        rows = describe_scenarios()
        width = max(len(r["name"]) for r in rows)
        print(f"{'scenario':<{width + 2}}{'app':<9}description")
        for row in rows:
            print(f"{row['name']:<{width + 2}}{row['app']:<9}"
                  f"{row['description']}")
        return 0

    from repro.errors import ScenarioError

    names = (args.only.split(",") if args.only
             else [r["name"] for r in describe_scenarios()])
    envelopes = {}
    for name in names:
        try:
            envelopes[name] = scenario_envelope(
                name, seed=args.seed, inputs=args.inputs,
                window=args.window, use_cache=not args.no_cache,
                jobs=args.jobs,
            )
        except ScenarioError as exc:
            print(f"scenarios: {exc}", file=sys.stderr)
            return 2
    if args.json:
        print(_json.dumps(envelopes, indent=2, sort_keys=True))
        return 0
    width = max(len(n) for n in names)
    print(f"{'scenario':<{width + 2}}{'strategy':<9}"
          f"{'energy (uJ)':>12}{'p99 lat (cyc)':>15}"
          f"{'p50 lat (cyc)':>15}{'thr (in/kcyc)':>15}")
    for name in names:
        for strategy in STRATEGIES:
            entry = envelopes[name]["strategies"][strategy]
            print(f"{name:<{width + 2}}{strategy:<9}"
                  f"{entry['energy_uj']:>12.1f}"
                  f"{entry['p99_latency_cycles']:>15.1f}"
                  f"{entry['p50_latency_cycles']:>15.1f}"
                  f"{entry['throughput_inputs_per_kcycle']:>15.4f}")
    return 0


def cmd_fleet(args) -> int:
    """Simulate a multi-tenant fleet (``run``) or compare every
    registered placement strategy over the same fleet (``table``)."""
    import json as _json

    from repro.errors import FleetError
    from repro.fleet import (
        FleetSim,
        TenantSLO,
        canonical_report,
        placement_names,
        render_fleet_summary,
        synthesize_fleet,
        write_report,
    )
    from repro.utils.tables import TextTable

    slo = None
    if args.slo_p99 is not None or args.slo_energy is not None:
        slo = TenantSLO(p99_latency_cycles=args.slo_p99,
                        energy_budget_uj=args.slo_energy)
    failed = tuple(int(f) for f in args.failed.split(",") if f)

    def run_fleet(placement: str) -> dict:
        spec = synthesize_fleet(
            args.tenants, args.fabrics,
            scenarios=tuple(s for s in args.scenarios.split(",") if s),
            strategies=tuple(s for s in args.strategies.split(",") if s),
            inputs=args.inputs, window=args.window,
            placement=placement, seed=args.seed,
            failed_fabrics=failed, slo=slo,
        )
        return FleetSim(spec).run(
            jobs=args.jobs, use_cache=not args.no_cache,
            cache_dir=args.cache_dir, batched=not args.reference,
        )

    try:
        with _tracing(args.trace):
            if args.action == "run":
                report = run_fleet(args.placement)
                if args.json:
                    print(_json.dumps(report, indent=2, sort_keys=True))
                else:
                    print(render_fleet_summary(report))
                if args.out:
                    write_report(canonical_report(report), args.out)
                    print(f"wrote {args.out}")
                return 0
            # table: the same fleet under every placement strategy.
            table = TextTable(["placement", "max load cyc", "mean util",
                               "energy mJ", "SLO viol", "sim s"])
            for name in placement_names():
                report = run_fleet(name)
                rollup = report["rollup"]
                table.add_row([
                    name,
                    f"{rollup['max_fabric_load_cycles']:,.0f}",
                    f"{rollup['mean_utilization']:.3f}",
                    f"{rollup['total_energy_uj'] / 1e3:.1f}",
                    rollup["slo_violations"],
                    f"{report['stats']['simulate_s']:.2f}",
                ])
            print(f"fleet table: {args.tenants} tenants on "
                  f"{args.fabrics} fabrics, every placement strategy")
            print(table.render())
            return 0
    except FleetError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2


def cmd_trace(args) -> int:
    """One end-to-end traced run: compile, simulate, stream.

    Compiles the kernel cold (so mapper attempts actually happen),
    simulates it, then streams it as a one-kernel pipeline so the DVFS
    controller makes window decisions — the written trace carries all
    four span categories (pipeline, mapper, sim, streaming).
    """
    from repro.kernels.suite import load_kernel
    from repro.sim.simulator import simulate_execution
    from repro.streaming.app import StreamingApp
    from repro.streaming.engine import simulate_stream
    from repro.streaming.partitioner import partition_app, streaming_cgra
    from repro.streaming.stage import KernelStage, StreamInput

    with _tracing(args.out):
        cgra = _build_fabric(args)
        result = compile_kernel(args.kernel, cgra, args.strategy,
                                unroll=args.unroll, use_cache=False)
        simulate_execution(result.mapping, args.iterations, result.report)

        # Stream the same kernel as a one-stage pipeline: the DVFS
        # controller still watches windows, so streaming spans appear.
        dfg = load_kernel(args.kernel, args.unroll)
        stage = KernelStage(
            name=dfg.name, dfg=dfg,
            iteration_model=lambda item: int(item.get("work")),
        )
        app = StreamingApp(name=f"{args.kernel}-stream", stages=[[stage]])
        inputs = [
            StreamInput(index=i, features={"work": 6.0 + 3.0 * (i % 5)})
            for i in range(args.inputs)
        ]
        partition = partition_app(app, streaming_cgra(), inputs[:4],
                                  max_islands_per_kernel=2,
                                  use_cache=False)
        stream = simulate_stream(partition, inputs, window=args.window)
        print(f"{args.kernel}: II={result.mapping.ii}, "
              f"{len(stream.windows)} stream windows")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as experiments_main

    argv = [args.experiment] + (["--json"] if args.json else [])
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    return experiments_main(argv)


def cmd_cache(args) -> int:
    import os

    from repro.compile import DiskCache, default_cache_root

    root = args.dir or default_cache_root()
    if not os.path.isdir(root):
        print(f"{root}: no cache here yet — compile something with "
              f"--cache-dir (or $REPRO_CACHE_DIR) to create one")
        return 0
    cache = DiskCache(root)
    if args.action == "clear":
        removed = cache.clear()
        print(f"{root}: removed {removed} artifacts")
    elif args.action == "gc":
        max_age_s = (args.max_age_days * 86400.0
                     if args.max_age_days is not None else None)
        removed = cache.gc(max_entries=args.max_entries,
                           max_age_s=max_age_s)
        print(f"{root}: evicted {removed} artifacts")
    stats = cache.stats_dict()
    width = max(len(k) for k in stats)
    for key, value in stats.items():
        print(f"{key:<{width}}  {value}")
    if args.action in ("stats", "gc"):
        footprint = cache.sweep_footprint()
        tagged = {k: v for k, v in footprint.items() if k != "(untagged)"}
        if tagged:
            print("per-sweep footprint:")
            for label in sorted(footprint):
                row = footprint[label]
                print(f"  {label:<18}  {row['artifacts']:>6} artifacts  "
                      f"{row['bytes']:>10} bytes")
    if args.action == "stats":
        effort = cache.engine_effort()
        if effort.get("artifacts_with_stats"):
            print("engine effort across cached artifacts:")
            ewidth = max(len(k) for k in effort)
            for key in sorted(effort):
                print(f"  {key:<{ewidth}}  {effort[key]}")
    return 0


def cmd_dse(args) -> int:
    """Sweep a declarative design space and print its Pareto frontier."""
    import json

    from repro.dse import DesignSpace, render_summary, run_dse, write_result

    if args.space:
        with open(args.space, encoding="utf-8") as fh:
            space = DesignSpace.from_dict(json.load(fh))
    else:
        def shapes(text):
            return tuple(_parse_shape(s) for s in text.split(","))

        space = DesignSpace(
            name=args.name,
            fabrics=shapes(args.fabrics),
            islands=shapes(args.islands),
            topologies=tuple(args.topologies.split(",")),
            vf_levels=tuple(int(v) for v in args.vf.split(",")),
            strategies=tuple(args.strategies.split(",")),
            kernels=tuple(args.kernels.split(",")),
            unroll=args.unroll,
            iterations=args.iterations,
        )
    from repro.errors import DSEError

    try:
        with _tracing(args.trace):
            result = run_dse(space, jobs=args.jobs,
                             cache_dir=args.cache_dir, seed=args.seed,
                             naive=args.naive, resume=args.resume)
    except DSEError as exc:
        print(f"dse: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result, sort_keys=True, indent=2))
    else:
        print(render_summary(result, top=args.top))
    if args.out:
        write_result(result, args.out)
        print(f"wrote {args.out}")
    return 0


def cmd_backends(args) -> int:
    """List the registered mapper backends."""
    rows = describe_backends()
    width = max(len(row["name"]) for row in rows)
    print(f"{'backend':<{width + 2}}{'optimal?':<10}description")
    for row in rows:
        proves = "proves" if row["proves_optimality"] else "-"
        print(f"{row['name']:<{width + 2}}{proves:<10}"
              f"{row['summary']}")
    return 0


def cmd_profile(args) -> int:
    """One compile under cProfile: where does the time go?

    Accepts the same ``--backend``/``--strategy`` flags as ``map``;
    by default the compile is cold (``--no-cache`` implied) since a
    warm hit profiles only deserialization — pass ``--cached`` to
    profile the warm path instead.
    """
    import cProfile
    import io
    import pstats

    cgra = _build_fabric(args)
    use_cache = args.cached and not args.no_cache
    profiler = cProfile.Profile()
    profiler.enable()
    result = compile_kernel(args.kernel, cgra, strategy=args.strategy,
                            backend=args.backend,
                            backend_options=_single_backend_options(args),
                            unroll=args.unroll, use_cache=use_cache)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(f"{args.kernel} ({args.strategy}, backend={args.backend}) "
          f"on {cgra.name}: II={result.mapping.ii}")
    print(stream.getvalue())
    if result.engine_stats is not None and result.engine_stats.per_ii:
        print("engine effort per II attempt:")
        print(render_per_ii(result.engine_stats.per_ii))
    return 0


def cmd_serve(args) -> int:
    """Run the compile-as-a-service daemon until SIGINT/SIGTERM, then
    drain gracefully (every admitted request is answered)."""
    import asyncio
    import signal

    from repro.serve import CompileServer, CompileService

    service = CompileService(
        workers=args.workers, max_queue=args.max_queue,
        cache_dir=args.cache_dir, shard=args.shard,
        retry_after_s=args.retry_after,
        tenant_quota=args.tenant_quota,
    )
    server = CompileServer(service, host=args.host, port=args.port)

    async def _amain():
        await server.start()
        shard = f", shard={args.shard}" if args.shard else ""
        print(f"repro serve: listening on {server.url} "
              f"(workers={service.workers}, "
              f"max_queue={service.max_queue}{shard})")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop.wait()
        except asyncio.CancelledError:
            pass
        print("repro serve: draining in-flight requests...")
        await server.shutdown()
        print("repro serve: drained, bye")

    with _tracing(args.trace):
        try:
            asyncio.run(_amain())
        except KeyboardInterrupt:
            pass
    return 0


def cmd_loadtest(args) -> int:
    """Replay a deterministic request mix against a running daemon (or
    a self-hosted one) and print/write the canonical report."""
    import json as _json
    import tempfile

    from repro.serve import (
        BackgroundServer,
        LoadtestConfig,
        LoadtestError,
        loadtest,
        write_report,
    )

    def build_config(url: str) -> LoadtestConfig:
        return LoadtestConfig(
            url=url, requests=args.requests,
            concurrency=args.concurrency, seed=args.seed,
            kernels=tuple(k for k in args.kernels.split(",") if k),
            strategies=tuple(s for s in args.strategies.split(",") if s),
            backends=tuple(b for b in args.backends.split(",") if b),
            stream_fraction=args.stream_fraction,
            interactive_fraction=args.interactive_fraction,
            timeout_s=args.timeout_s,
        )

    try:
        if args.url:
            report = loadtest(build_config(args.url))
        else:
            # Self-host: a real daemon over real sockets on an
            # ephemeral port, with a private disk-cache shard.
            with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
                server = BackgroundServer(
                    workers=args.workers, max_queue=args.max_queue,
                    cache_dir=tmp, shard="loadtest",
                ).start()
                try:
                    report = loadtest(build_config(server.url))
                finally:
                    server.stop()
    except LoadtestError as exc:
        print(f"loadtest: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(report, sort_keys=True, indent=2))
    else:
        latency = report["latency_ms"]
        print(f"loadtest: {report['requests_sent']} requests "
              f"({report['config']['concurrency']} connections) in "
              f"{report['duration_s']:.2f}s -> "
              f"{report['throughput_rps']:.1f} req/s")
        print(f"latency : p50 {latency['p50']:.1f} ms   "
              f"p99 {latency['p99']:.1f} ms   "
              f"max {latency['max']:.1f} ms")
        print(f"coalesce: rate {report['coalesce_rate']:.3f} "
              f"({report['coalesced']} coalesced, "
              f"{report['jobs_executed']} executed, "
              f"{report['unique_fingerprints']} unique)")
        print(f"cache   : hit rate {report['cache_hit_rate']:.3f}")
        print(f"status  : {report['status_counts']}"
              + (f"  ({report['rejected_429']} rejected)"
                 if report["rejected_429"] else ""))
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ICED: DVFS-aware CGRA toolchain (MICRO'24 repro).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the Table I kernel suite")

    fabric = sub.add_parser("fabric", help="show a fabric's island map")
    fabric.add_argument("--cgra", default="6x6")
    fabric.add_argument("--island", default="2x2")

    map_cmd = sub.add_parser("map", help="map a kernel onto a fabric")
    map_cmd.add_argument("kernel", choices=kernel_names())
    map_cmd.add_argument("--unroll", type=int, default=1)
    map_cmd.add_argument("--cgra", default="6x6")
    map_cmd.add_argument("--island", default="2x2")
    map_cmd.add_argument("--strategy", default="iced",
                         choices=strategy_choices())
    map_cmd.add_argument("--backend", default="engine",
                         choices=backend_names(),
                         help="mapper backend (see `repro backends "
                              "list`)")
    map_cmd.add_argument("--portfolio", action="store_true",
                         help="race several backends and keep the best "
                              "mapping (ignores --backend)")
    map_cmd.add_argument("--members",
                         default=",".join(DEFAULT_PORTFOLIO),
                         help="portfolio members, comma list in "
                              "precedence order")
    map_cmd.add_argument("--budget-s", type=float, default=None,
                         help="wall-clock budget for proof-capable "
                              "backends")
    map_cmd.add_argument("--jobs", type=int, default=1,
                         help="processes for the portfolio race")
    map_cmd.add_argument(
        "--show", default="",
        help="comma list: levels,schedule,heatmap,dfg,power,bitstream",
    )
    map_cmd.add_argument("--stats", action="store_true",
                         help="print per-pass compile timings")
    map_cmd.add_argument("--no-cache", action="store_true",
                         help="bypass the mapping cache")
    map_cmd.add_argument("--trace", default=None, metavar="FILE",
                         help="write a Chrome trace (.jsonl for JSONL) "
                              "of the compile")

    stream = sub.add_parser("stream", help="run a streaming application")
    stream.add_argument("app", nargs="?", choices=("gcn", "lu"),
                        help="built-in app (or pick a traffic regime "
                             "with --scenario)")
    stream.add_argument("--scenario", default=None,
                        help="run a registered traffic scenario instead "
                             "of a bare app (see `repro scenarios list`)")
    stream.add_argument("--seed", type=int, default=None,
                        help="scenario stream seed (default: the "
                             "scenario's registered seed)")
    stream.add_argument("--inputs", type=int, default=60,
                        help="synthetic stream length (scales to 10^6+ "
                             "on the fast engine)")
    stream.add_argument("--window", type=int, default=10)
    stream.add_argument("--engine", default="fast",
                        choices=("fast", "reference"),
                        help="vectorized window-batched engine (fast) or "
                             "the scalar reference (identical results)")
    stream.add_argument("--profile", action="store_true",
                        help="cProfile the streaming phase and print the "
                             "hottest functions")
    stream.add_argument("--stats", action="store_true",
                        help="print per-pass compile timings")
    stream.add_argument("--no-cache", action="store_true",
                        help="bypass the mapping cache")
    stream.add_argument("--jobs", type=int, default=1,
                        help="processes for the II-table probes")
    stream.add_argument("--cache-dir", default=None,
                        help="persistent on-disk mapping cache directory")
    stream.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace (.jsonl for JSONL) of "
                             "the partition + streaming run")

    scenarios = sub.add_parser(
        "scenarios", help="traffic-scenario registry and the "
                          "cross-scenario strategy table"
    )
    scenarios.add_argument("action", choices=("list", "table"))
    scenarios.add_argument("--inputs", type=int, default=240,
                           help="stream length per scenario (table)")
    scenarios.add_argument("--seed", type=int, default=None,
                           help="override every scenario's seed (table)")
    scenarios.add_argument("--window", type=int, default=10)
    scenarios.add_argument("--only", default="",
                           help="comma list of scenarios (default: all)")
    scenarios.add_argument("--json", action="store_true",
                           help="print raw envelopes instead of a table")
    scenarios.add_argument("--jobs", type=int, default=1,
                           help="processes for the II-table probes")
    scenarios.add_argument("--no-cache", action="store_true",
                           help="bypass the mapping cache")

    fleet = sub.add_parser(
        "fleet", help="multi-tenant fleet simulator: N scenario-bound "
                      "tenants across M fabrics (see docs/fleet.md)"
    )
    fleet.add_argument("action", choices=("run", "table"),
                       help="run one placement, or compare every "
                            "registered placement over the same fleet")
    fleet.add_argument("--tenants", type=int, default=100)
    fleet.add_argument("--fabrics", type=int, default=8)
    fleet.add_argument("--placement", default="load_balanced",
                       help="placement strategy for `run` "
                            "(see repro.fleet.placement_names)")
    fleet.add_argument("--scenarios",
                       default="enzyme,diurnal,bursty,trace_fleet",
                       help="comma list of scenarios tenants cycle")
    fleet.add_argument("--strategies", default="iced",
                       help="comma list of DVFS strategies tenants cycle "
                            "(iced, static, drips)")
    fleet.add_argument("--inputs", type=int, default=288,
                       help="stream length per tenant (288 = one "
                            "simulated day at 5-minute bins)")
    fleet.add_argument("--window", type=int, default=10)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--failed", default="",
                       help="comma list of failed fabric ids to exclude")
    fleet.add_argument("--slo-p99", type=float, default=None,
                       metavar="CYCLES",
                       help="per-tenant p99 latency SLO (cycles/input)")
    fleet.add_argument("--slo-energy", type=float, default=None,
                       metavar="UJ",
                       help="per-tenant energy budget SLO (uJ)")
    fleet.add_argument("--jobs", type=int, default=1,
                       help="processes for the compile phase (the fleet "
                            "report is bit-identical across jobs counts)")
    fleet.add_argument("--reference", action="store_true",
                       help="use the sequential per-tenant reference "
                            "loop instead of the batched engine")
    fleet.add_argument("--no-cache", action="store_true",
                       help="bypass the mapping cache")
    fleet.add_argument("--cache-dir", default=None,
                       help="persistent on-disk mapping cache directory")
    fleet.add_argument("--json", action="store_true",
                       help="print the full report as JSON (run)")
    fleet.add_argument("--out", default=None, metavar="FILE",
                       help="write the canonical report JSON (run)")
    fleet.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome trace (.jsonl for JSONL) of "
                            "the fleet phases")

    trace_cmd = sub.add_parser(
        "trace", help="trace one kernel end to end (compile, simulate, "
                      "stream) into a Chrome/Perfetto JSON file"
    )
    trace_cmd.add_argument("kernel", choices=kernel_names())
    trace_cmd.add_argument("-o", "--out", default="trace.json",
                           help="output path (.jsonl for JSONL)")
    trace_cmd.add_argument("--strategy", default="iced",
                           choices=strategy_choices())
    trace_cmd.add_argument("--unroll", type=int, default=1)
    trace_cmd.add_argument("--cgra", default="6x6")
    trace_cmd.add_argument("--island", default="2x2")
    trace_cmd.add_argument("--iterations", type=int, default=20,
                           help="simulator iterations")
    trace_cmd.add_argument("--inputs", type=int, default=30,
                           help="stream inputs for the DVFS windows")
    trace_cmd.add_argument("--window", type=int, default=5,
                           help="DVFS observation window (inputs)")

    experiments = sub.add_parser(
        "experiments", help="regenerate a table/figure"
    )
    experiments.add_argument("experiment")
    experiments.add_argument("--json", action="store_true")
    experiments.add_argument("--jobs", type=int, default=1,
                             help="processes for the strategy sweeps")
    experiments.add_argument("--cache-dir", default=None,
                             help="persistent on-disk mapping cache "
                                  "directory")

    profile = sub.add_parser(
        "profile", help="profile one cold compile (cProfile, top-N "
                        "cumulative functions)"
    )
    profile.add_argument("kernel", choices=kernel_names())
    profile.add_argument("--strategy", default="iced",
                         choices=strategy_choices())
    profile.add_argument("--backend", default="engine",
                         choices=backend_names(),
                         help="mapper backend to profile")
    profile.add_argument("--budget-s", type=float, default=None,
                         help="wall-clock budget for the exact backend")
    profile.add_argument("--unroll", type=int, default=1)
    profile.add_argument("--cgra", default="6x6")
    profile.add_argument("--island", default="2x2")
    profile.add_argument("--top", type=int, default=20,
                         help="functions to print (cumulative time)")
    profile.add_argument("--cached", action="store_true",
                         help="allow warm cache hits (default: cold "
                              "compile)")
    profile.add_argument("--no-cache", action="store_true",
                         help="force a cold compile even with --cached")

    backends = sub.add_parser(
        "backends", help="inspect the mapper-backend registry"
    )
    backends.add_argument("action", choices=("list",))

    dse = sub.add_parser(
        "dse",
        help="sweep a design space, emit energy/makespan/area Pareto "
             "frontiers (see docs/dse.md)",
    )
    dse.add_argument("--space", default=None, metavar="FILE",
                     help="design space as JSON (overrides axis flags)")
    dse.add_argument("--name", default="cli")
    dse.add_argument("--fabrics", default="4x4,6x6,8x8",
                     help="comma-separated fabric dims, e.g. 4x4,8x8")
    dse.add_argument("--islands", default="2x2",
                     help="comma-separated island shapes, e.g. 2x2,1x1")
    dse.add_argument("--topologies", default="mesh",
                     help="comma-separated: mesh, torus, king")
    dse.add_argument("--vf", default="3",
                     help="comma-separated V/F table depths, e.g. 3,4")
    dse.add_argument("--strategies", default="baseline,iced")
    dse.add_argument("--kernels", default="fir,latnrm,mvt,spmv")
    dse.add_argument("--unroll", type=int, default=1)
    dse.add_argument("--iterations", type=int, default=1024,
                     help="steady-state iterations the makespan models")
    dse.add_argument("--jobs", type=int, default=1,
                     help="compile points on a process pool "
                          "(deterministic: results match --jobs 1)")
    dse.add_argument("--seed", type=int, default=0)
    dse.add_argument("--cache-dir", default=None,
                     help="share an on-disk mapping cache across runs "
                          "and pool workers (default: in-memory only)")
    dse.add_argument("--resume", default=None, metavar="FILE",
                     help="point-row manifest checkpointed after every "
                          "fabric group; rerunning with the same space "
                          "replays completed points instead of "
                          "recompiling them")
    dse.add_argument("--naive", action="store_true",
                     help="disable all cross-point reuse (benchmark "
                          "baseline; results are identical, just slow)")
    dse.add_argument("--out", default=None, metavar="FILE",
                     help="write the canonical result JSON here")
    dse.add_argument("--top", type=int, default=10,
                     help="frontier rows to print")
    dse.add_argument("--json", action="store_true",
                     help="print the full result document as JSON")
    dse.add_argument("--trace", default=None, metavar="FILE",
                     help="write a Chrome/Perfetto trace of the sweep")

    serve = sub.add_parser(
        "serve",
        help="run the compile-as-a-service daemon (see docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8763,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="compile worker threads sharing one cache")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission bound; beyond this new requests "
                            "get 429 + Retry-After")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent on-disk mapping cache directory "
                            "(default: in-memory only)")
    serve.add_argument("--shard", default=None,
                       help="private disk-cache shard name for this "
                            "server (reads through peer shards)")
    serve.add_argument("--retry-after", type=float, default=1.0,
                       help="Retry-After seconds on 429 responses")
    serve.add_argument("--tenant-quota", type=int, default=None,
                       metavar="N",
                       help="max pending requests per tenant tag; beyond "
                            "this a tenant's new requests get 429 "
                            "(default: unlimited)")
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome trace (.jsonl for JSONL) of "
                            "the daemon's request spans")

    lt = sub.add_parser(
        "loadtest",
        help="replay a deterministic request mix against a daemon and "
             "report throughput/latency/coalescing",
    )
    lt.add_argument("--url", default=None,
                    help="target daemon (default: self-host one on an "
                         "ephemeral port for the duration of the run)")
    lt.add_argument("--requests", type=int, default=1000)
    lt.add_argument("--concurrency", type=int, default=50,
                    help="concurrent keep-alive connections")
    lt.add_argument("--seed", type=int, default=0,
                    help="request-mix seed (same seed -> same campaign)")
    lt.add_argument("--kernels", default="",
                    help="comma list (default: the whole Table I suite)")
    lt.add_argument("--strategies",
                    default=",".join(EXPERIMENT_STRATEGIES))
    lt.add_argument("--backends", default="engine",
                    help="comma list of mapper backends to mix in")
    lt.add_argument("--stream-fraction", type=float, default=0.0,
                    help="fraction of requests hitting POST /stream")
    lt.add_argument("--interactive-fraction", type=float, default=0.25,
                    help="fraction submitted at interactive priority")
    lt.add_argument("--timeout-s", type=float, default=300.0,
                    help="per-request client timeout")
    lt.add_argument("--workers", type=int, default=2,
                    help="self-host mode: daemon worker threads")
    lt.add_argument("--max-queue", type=int, default=64,
                    help="self-host mode: daemon admission bound")
    lt.add_argument("--json", action="store_true",
                    help="print the full canonical report as JSON")
    lt.add_argument("--out", default=None, metavar="FILE",
                    help="write the canonical report here")

    cache = sub.add_parser(
        "cache", help="inspect the persistent on-disk mapping cache"
    )
    cache.add_argument("action", choices=("stats", "clear", "gc"))
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: .repro-cache or "
                            "$REPRO_CACHE_DIR)")
    cache.add_argument("--max-entries", type=int, default=None,
                       help="gc: keep at most this many artifacts")
    cache.add_argument("--max-age-days", type=float, default=None,
                       help="gc: drop artifacts older than this")

    args = parser.parse_args(argv)
    handlers = {
        "kernels": cmd_kernels,
        "fabric": cmd_fabric,
        "map": cmd_map,
        "stream": cmd_stream,
        "scenarios": cmd_scenarios,
        "fleet": cmd_fleet,
        "trace": cmd_trace,
        "experiments": cmd_experiments,
        "profile": cmd_profile,
        "cache": cmd_cache,
        "backends": cmd_backends,
        "dse": cmd_dse,
        "serve": cmd_serve,
        "loadtest": cmd_loadtest,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
