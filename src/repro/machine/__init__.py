"""Machine-level execution of configuration bitstreams.

The most literal simulation tier of the stack: no access to the
mapping, the DFG or the routes — only the per-tile configuration words
of a :class:`~repro.mapper.bitstream.Bitstream`, executed with
tile-local rules (tagged FIFO queues, link delay lines, FU issue).
Running a frontend kernel's bitstream here and matching the reference
interpreter's memory validates the *generator*, closing the last gap
between "the mapping is consistent" and "the configured hardware
computes the right answer".
"""

from repro.machine.machine import MachineResult, run_bitstream

__all__ = ["MachineResult", "run_bitstream"]
