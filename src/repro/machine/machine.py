"""The bitstream interpreter (machine model).

State per tile: one FIFO queue per edge tag (the elastic buffers),
plus the in-flight completions of its FU. State per fabric: link
deliveries in flight. Each base cycle, every powered tile:

1. receives link deliveries that complete this cycle (push to the
   matching edge queue);
2. finishes FU issues whose latency elapsed (fan the result out into
   the word's ``out_edges`` queues, or commit a STORE);
3. executes its current slot's configuration word: issue the FU
   (popping operand queues / reading immediates) and perform sends
   (pop an edge queue, inject into a link with the receiver's
   clock-domain delay).

Nothing here consults the mapping: if the generator forgot a send,
mis-directed a port or wired an operand to the wrong queue, the machine
computes garbage and the tests catch it against the AST interpreter.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.dfg.ops import Opcode
from repro.errors import SimulationError
from repro.mapper.bitstream import Bitstream, ConfigWord

Memory = dict[str, list[float]]


@dataclass
class MachineResult:
    """The outcome of running a bitstream."""

    memory: Memory
    cycles: int
    issues: int
    sends: int
    skipped_sends: int
    stores_committed: int
    stores_predicated_off: int = 0
    queue_high_water: int = 0


@dataclass
class _Pending:
    """An FU issue in flight."""

    finish_cycle: int
    word: ConfigWord
    operands: list[float]


class _Tile:
    """Per-tile machine state."""

    def __init__(self, tile_id: int):
        self.id = tile_id
        self.queues: dict[int, deque[float]] = {}
        self.pending: list[_Pending] = []
        self.issues_done: dict[int, int] = {}  # node -> issue count

    def push(self, edge: int, value: float) -> None:
        self.queues.setdefault(edge, deque()).append(value)

    def pop(self, edge: int) -> float | None:
        queue = self.queues.get(edge)
        if not queue:
            return None
        return queue.popleft()

    def depth(self) -> int:
        return sum(len(q) for q in self.queues.values())


def run_bitstream(bitstream: Bitstream, memory: Memory,
                  iterations: int,
                  max_cycles: int | None = None) -> MachineResult:
    """Execute ``iterations`` of the configured schedule.

    ``memory`` maps array names (per the bitstream's memory layout) to
    word lists; it is copied, mutated by STOREs, and returned.
    """
    if iterations < 0:
        raise SimulationError("iterations must be non-negative")
    mem: Memory = {name: list(vals) for name, vals in memory.items()}
    for array in bitstream.memory_layout:
        if array not in mem:
            raise SimulationError(f"memory for array {array!r} missing")

    ii = bitstream.ii
    tiles = {t: _Tile(t) for t in bitstream.words}
    # Link delay lines: arrival cycle -> [(tile, edge, value)].
    in_flight: dict[int, list[tuple[int, int, float]]] = {}
    stats = MachineResult(
        memory=mem, cycles=0, issues=0, sends=0, skipped_sends=0,
        stores_committed=0,
    )

    if iterations == 0:
        return stats
    # Generous horizon: every issue slot of every iteration plus drain.
    horizon = max_cycles if max_cycles is not None else (
        iterations * ii + 64 * ii + 64
    )

    total_issues_needed = sum(
        1 for slots in bitstream.words.values()
        for word in slots if word.opcode is not None
    ) * iterations

    cycle = 0
    while cycle < horizon:
        # 1. link deliveries
        for tile_id, edge, value in in_flight.pop(cycle, ()):
            tiles[tile_id].push(edge, value)

        # 2. FU completions
        for tile in tiles.values():
            still = []
            for pending in tile.pending:
                if pending.finish_cycle == cycle:
                    _complete(pending, tile, mem, bitstream, stats)
                else:
                    still.append(pending)
            tile.pending = still

        # 3. execute configuration words
        slot = cycle % ii
        for tile_id, tile in tiles.items():
            word = bitstream.words[tile_id][slot]
            if word.opcode is not None:
                node = word.node if word.node is not None else -1
                done = tile.issues_done.get(node, 0)
                if done < iterations:
                    operands = _gather_operands(word, tile, done)
                    if operands is not None:
                        tile.issues_done[node] = done + 1
                        tile.pending.append(_Pending(
                            finish_cycle=cycle + word.latency,
                            word=word,
                            operands=operands,
                        ))
                        stats.issues += 1
            for send in word.sends:
                value = tile.pop(send.edge)
                if value is None:
                    stats.skipped_sends += 1  # pipeline fill / drain
                    continue
                in_flight.setdefault(cycle + send.delay, []).append(
                    (send.to_tile, send.edge, value)
                )
                stats.sends += 1

        stats.queue_high_water = max(
            stats.queue_high_water,
            max((t.depth() for t in tiles.values()), default=0),
        )

        cycle += 1
        if (stats.issues >= total_issues_needed
                and not _pending_count(tiles)
                and not in_flight):
            break

    stats.cycles = cycle
    if stats.issues < total_issues_needed:
        raise SimulationError(
            f"machine stalled: {stats.issues}/{total_issues_needed} "
            f"issues after {cycle} cycles (a generator or schedule bug)"
        )
    return stats


def _pending_count(tiles: dict[int, _Tile]) -> int:
    return sum(len(t.pending) for t in tiles.values())


def _gather_operands(word: ConfigWord, tile: _Tile,
                     issues_done: int) -> list[float] | None:
    """Pop the word's operands; None = not all available yet (bubble).

    A ``phi`` selector consumes its initialization immediate for the
    first ``dist`` firings (pipeline fill) and the back-edge queue
    afterwards — an empty queue past the fill means the value simply
    has not arrived yet, so the issue bubbles like any other.
    """
    # Peek first: either all operands are consumable or none are popped.
    for sel in word.operands:
        if sel.kind == "edge" and not tile.queues.get(sel.edge):
            return None
        if (sel.kind == "phi" and issues_done >= sel.dist
                and not tile.queues.get(sel.edge)):
            return None
    values: list[float] = []
    for sel in word.operands:
        if sel.kind == "imm":
            values.append(float(sel.value or 0.0))
        elif sel.kind == "phi":
            if issues_done < sel.dist:
                values.append(float(sel.value or 0.0))
            else:
                popped = tile.pop(sel.edge)
                if popped is None:  # unreachable after the peek
                    raise SimulationError("phi queue drained mid-issue")
                values.append(popped)
        else:
            popped = tile.pop(sel.edge)
            if popped is None:  # unreachable after the peek
                raise SimulationError("operand queue drained mid-issue")
            values.append(popped)
    return values


def _complete(pending: _Pending, tile: _Tile, mem: Memory,
              bitstream: Bitstream, stats: MachineResult) -> None:
    word = pending.word
    value = _evaluate(word, pending.operands, mem, stats)
    for edge in word.out_edges:
        tile.push(edge, value)


def _evaluate(word: ConfigWord, args: list[float], mem: Memory,
              stats: MachineResult) -> float:
    op = word.opcode
    if op is Opcode.LOAD:
        if word.mem_index_const is not None:
            index = word.mem_index_const
        else:
            index = int(args[0]) if args else 0
        return _mem_ref(word, mem)[index]
    if op is Opcode.STORE:
        index = int(args[0])
        value = args[1] if len(args) > 1 else 0.0
        pred = args[2] if len(args) > 2 else 1.0
        if pred:
            _mem_ref(word, mem)[index] = value
            stats.stores_committed += 1
        else:
            stats.stores_predicated_off += 1
        return value
    if op is Opcode.CMP:
        a, b = args[0], args[1]
        result = {
            "<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
            "==": a == b, "!=": a != b,
        }[word.cmp_op or "<"]
        return 1.0 if result else 0.0
    if op is Opcode.SELECT:
        return args[1] if args[0] else args[2]
    if op is Opcode.PHI:
        return args[0] if args else 0.0
    if op is Opcode.NOT:
        return 0.0 if args[0] else 1.0
    if op is Opcode.ABS:
        return abs(args[0])
    if op is Opcode.SQRT:
        return math.sqrt(args[0]) if args[0] >= 0 else 0.0
    if op is Opcode.MOV:
        return args[0]
    if op is Opcode.MAC:
        return args[0] * args[1] + args[2]
    if len(args) < 2:
        raise SimulationError(f"{op} expects 2 operands, got {len(args)}")
    a, b = args[0], args[1]
    if op is Opcode.ADD:
        return a + b
    if op is Opcode.SUB:
        return a - b
    if op is Opcode.MUL:
        return a * b
    if op is Opcode.DIV:
        return a / b if b else 0.0
    if op is Opcode.REM:
        return float(int(a) % int(b)) if b else 0.0
    if op is Opcode.AND:
        return float(int(a) & int(b))
    if op is Opcode.OR:
        return float(int(a) | int(b))
    if op is Opcode.XOR:
        return float(int(a) ^ int(b))
    if op is Opcode.SHL:
        return float(int(a) << int(b))
    if op is Opcode.SHR:
        return float(int(a) >> int(b))
    if op is Opcode.MIN:
        return min(a, b)
    if op is Opcode.MAX:
        return max(a, b)
    raise SimulationError(f"machine cannot evaluate opcode {op}")


def _mem_ref(word: ConfigWord, mem: Memory) -> list[float]:
    if word.array is None:
        raise SimulationError(
            f"memory op at node {word.node} lacks an array annotation "
            "(generate the bitstream with node_meta/bitstream_for_lowered)"
        )
    return mem[word.array]
