"""Differential testing across the three execution models.

Every executable suite kernel runs through three independent
implementations of the same semantics:

1. the frontend AST reference interpreter (``run_kernel_ast``),
2. the lowered-DFG interpreter (``run_lowered_dfg``),
3. value-accurate co-simulation of the *mapped* kernel
   (``sim.cosim.cosimulate``), under both a baseline and a DVFS-aware
   (iced) mapping produced by the unified compile pipeline.

All three must agree on every output array, and the cosim's cycle
count must agree with the analytic execution model
(``sim.simulator.simulate_execution``). A disagreement localizes a bug
to whichever layer diverges — the point of differential testing.
"""

from functools import lru_cache

import pytest

from repro.arch.cgra import CGRA
from repro.compile import MappingCache, compile_dfg
from repro.errors import DFGError
from repro.frontend import lower_kernel, run_kernel_ast, run_lowered_dfg
from repro.kernels.programs import ALL_PROGRAMS
from repro.kernels.suite import executable_kernel_names, load_program
from repro.sim.cosim import cosimulate
from repro.sim.simulator import simulate_execution
from repro.utils.rng import make_rng

#: Simulation-friendly instance sizes (small trip counts, same shapes).
SIZES = {
    "fir": dict(n=10, taps=3),
    "relu": dict(n=12),
    "mvt": dict(n=4),
    "conv1d": dict(n=8, k=2),
    "histogram": dict(n=16, bins=4),
    "dotprod": dict(n=12),
    "spmv": dict(rows=4, nnz_per_row=2),
    "dtw_band": dict(n=8),
}

STRATEGIES = ("baseline", "iced")

#: One pipeline cache across the whole module: the mapping of a kernel
#: is compiled once per strategy no matter how many tests probe it.
_CACHE = MappingCache()


@lru_cache(maxsize=None)
def _cgra() -> CGRA:
    return CGRA.build(6, 6)


@lru_cache(maxsize=None)
def _prepared(name: str):
    kernel = load_program(name, **SIZES[name])
    return kernel, lower_kernel(kernel, flatten=True)


def _memory(name: str, kernel, seed: int = 0):
    rng = make_rng(seed)
    mem = {
        arr: rng.normal(size=size).tolist()
        for arr, size in kernel.arrays.items()
    }
    # Integer-valued index arrays need sane contents.
    if name == "histogram":
        mem["data"] = [float(abs(int(v * 10))) for v in mem["data"]]
        mem["hist"] = [0.0] * len(mem["hist"])
    if name == "spmv":
        rows = len(mem["x"])
        mem["col"] = [float(abs(int(v * 100)) % rows) for v in mem["col"]]
    return mem


@lru_cache(maxsize=None)
def _mapped(name: str, strategy: str):
    _, lowered = _prepared(name)
    return compile_dfg(lowered.dfg, _cgra(), strategy,
                       cache=_CACHE).mapping


class TestRegistry:
    def test_executable_names_match_programs(self):
        assert executable_kernel_names() == sorted(ALL_PROGRAMS)

    def test_load_program_resizes(self):
        kernel = load_program("fir", n=10, taps=3)
        assert kernel.arrays == {"x": 13, "h": 3, "y": 10}

    def test_unknown_program_rejected(self):
        with pytest.raises(DFGError, match="no executable program"):
            load_program("nonesuch")


class TestThreeWayAgreement:
    """Reference interp == DFG interp == mapped cosimulation."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("name", sorted(SIZES))
    def test_outputs_agree(self, name, strategy):
        kernel, lowered = _prepared(name)
        memory = _memory(name, kernel)
        reference = run_kernel_ast(kernel, memory)
        interp = run_lowered_dfg(lowered, memory)
        mapping = _mapped(name, strategy)
        cosim = cosimulate(lowered, mapping, memory)
        for array in kernel.arrays:
            assert interp.memory[array] == pytest.approx(
                reference[array]
            ), f"DFG interp diverges from reference on {array!r}"
            assert cosim.memory[array] == pytest.approx(
                reference[array]
            ), (f"{strategy} cosim diverges from reference on "
                f"{array!r}")

    @pytest.mark.parametrize("name", sorted(SIZES))
    def test_baseline_and_iced_compute_identically(self, name):
        """DVFS awareness may change timing, never values."""
        kernel, lowered = _prepared(name)
        memory = _memory(name, kernel, seed=7)
        runs = {
            strategy: cosimulate(lowered, _mapped(name, strategy),
                                 memory).memory
            for strategy in STRATEGIES
        }
        for array in kernel.arrays:
            assert runs["iced"][array] == pytest.approx(
                runs["baseline"][array]
            )


class TestCycleModelConsistency:
    """Cosim cycle accounting == the analytic execution model."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("name", sorted(SIZES))
    def test_total_cycles_agree(self, name, strategy):
        _, lowered = _prepared(name)
        mapping = _mapped(name, strategy)
        kernel, _ = _prepared(name)
        cosim = cosimulate(lowered, mapping, _memory(name, kernel))
        stats = simulate_execution(mapping, lowered.trip_count)
        assert stats.ii == mapping.ii
        assert stats.iterations == lowered.trip_count
        assert stats.total_cycles == cosim.total_cycles
        assert stats.total_cycles >= (lowered.trip_count - 1) * mapping.ii
