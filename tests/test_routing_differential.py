"""Differential property tests: optimized router vs. reference Dijkstra.

The optimized ``find_route`` (distance-oracle pruning, deadline-tight
first pass, packed-int states, route memo) must return exactly what the
plain reference Dijkstra in :mod:`tests.reference_routing` returns, on
random fabrics under random congestion — same path, same depart, same
arrival, and the same earliest-arrival probe the engine's issue-time
jump relies on. Same-tile queries are the one deliberate divergence
(the optimized probe is strictly more informative); their contract is
pinned down separately.
"""

from hypothesis import given, settings, strategies as st

from repro.arch import CGRA
from repro.errors import MappingError
from repro.mapper.routing import RouteMemo, find_route
from repro.mrrg.mrrg import MRRG, wait_claims
from tests.reference_routing import reference_find_route

FABRICS = {
    "mesh33": CGRA.build(3, 3, island_shape=(1, 1)),
    "mesh42": CGRA.build(4, 2, island_shape=(2, 2)),
    "torus33": CGRA.build(3, 3, island_shape=(1, 1), topology="torus"),
}


@st.composite
def routing_scenario(draw):
    """A congested MRRG plus one routing query."""
    cgra = FABRICS[draw(st.sampled_from(sorted(FABRICS)))]
    num = cgra.num_tiles
    ii = draw(st.integers(min_value=1, max_value=5))
    mrrg = MRRG(cgra, ii, xbar_capacity=draw(st.integers(1, 3)))

    # Random congestion: claims against every resource kind, applied
    # best-effort (overflows are simply skipped).
    links = [
        (src, dst) for src in range(num) for dst in cgra._neighbors[src]
    ]
    for _ in range(draw(st.integers(min_value=0, max_value=25))):
        kind = draw(st.sampled_from(["fu", "xbar", "reg", "link"]))
        if kind == "link":
            key = ("link", *draw(st.sampled_from(links)))
        else:
            key = (kind, draw(st.integers(0, num - 1)))
        start = draw(st.integers(min_value=0, max_value=2 * ii))
        length = draw(st.integers(min_value=1, max_value=ii + 2))
        try:
            mrrg.pool.claim(key, start, length)
        except MappingError:
            pass

    slow = tuple(
        draw(st.sampled_from([1, 1, 2, 4])) for _ in range(num)
    )
    src = draw(st.integers(0, num - 1))
    dst = draw(st.integers(0, num - 1))
    ready = draw(st.integers(min_value=0, max_value=8))
    deadline = ready + draw(st.integers(min_value=-3, max_value=12))
    horizon = deadline + draw(st.sampled_from([0, 0, ii, 2 * ii]))
    max_wait = draw(st.sampled_from([None, 0, 1, 2 * ii]))
    return mrrg, slow, src, ready, dst, deadline, horizon, max_wait


def _run_both(scenario, memo=None):
    mrrg, slow, src, ready, dst, deadline, horizon, max_wait = scenario
    slowdown_of = slow.__getitem__
    ref = reference_find_route(mrrg, slowdown_of, src, ready, dst,
                               deadline, max_wait=max_wait, horizon=horizon)
    new = find_route(mrrg, slowdown_of, src, ready, dst, deadline,
                     max_wait=max_wait, horizon=horizon, memo=memo)
    return ref, new


class TestRouterEquivalence:
    @given(scenario=routing_scenario())
    @settings(max_examples=120, deadline=None)
    def test_cross_tile_results_identical(self, scenario):
        """src != dst: the full (route, probe) pair must match."""
        mrrg, slow, src, ready, dst, deadline, horizon, max_wait = scenario
        if src == dst:
            return
        (ref_route, ref_probe), (new_route, new_probe) = _run_both(scenario)
        assert (ref_route is None) == (new_route is None)
        if ref_route is not None:
            assert new_route.path == ref_route.path
            assert new_route.depart == ref_route.depart
            assert new_route.arrival == ref_route.arrival
        assert new_probe == ref_probe

    @given(scenario=routing_scenario())
    @settings(max_examples=80, deadline=None)
    def test_same_tile_contract(self, scenario):
        """src == dst: same feasibility; the optimized probe is the
        latest deadline the registers can hold the value for."""
        mrrg, slow, src, ready, dst, deadline, horizon, max_wait = scenario
        if src != dst:
            return
        (ref_route, ref_probe), (new_route, new_probe) = _run_both(scenario)
        if deadline < ready:
            # Reference gives no hint; the optimized router reports
            # ``ready`` so the engine can jump the issue time.
            assert ref_route is None and ref_probe is None
            assert new_route is None and new_probe == ready
            return
        assert (ref_route is None) == (new_route is None)
        if ref_route is not None:
            assert (new_route.path, new_route.depart, new_route.arrival) \
                == (ref_route.path, ref_route.depart, ref_route.arrival)
            assert new_probe == ref_probe == ready
            return
        # Blocked wait: the reference only says ``ready``; the optimized
        # probe must be the exact feasibility frontier.
        assert ref_probe == ready
        assert ready <= new_probe < deadline
        assert mrrg.is_free(wait_claims(src, ready, new_probe))
        assert not mrrg.is_free(wait_claims(src, ready, new_probe + 1))

    @given(scenario=routing_scenario())
    @settings(max_examples=60, deadline=None)
    def test_memoized_result_identical(self, scenario):
        """A memo hit must reproduce the fresh search exactly, and a
        pool mutation (new congestion epoch) must not serve stale hits."""
        mrrg, slow, src, ready, dst, deadline, horizon, max_wait = scenario
        memo = RouteMemo()
        first = _run_both(scenario, memo=memo)[1]
        again = _run_both(scenario, memo=memo)[1]
        assert again == first
        if src != dst and memo.misses:
            assert memo.hits >= 1
        # Mutate routing-visible occupancy, then compare the memoized
        # router against the reference on the new state.
        try:
            mrrg.pool.claim(("xbar", dst), 0, 1)
        except MappingError:
            return
        ref, new = _run_both(scenario, memo=memo)
        if src != dst:
            assert (ref[0] is None) == (new[0] is None)
            assert ref[1] == new[1]
            if ref[0] is not None:
                assert (new[0].path, new[0].depart, new[0].arrival) == \
                    (ref[0].path, ref[0].depart, ref[0].arrival)
